// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Crash-safe snapshot envelope (index/snapshot.h): round-trips must
// preserve query answers exactly, and any corruption — bit flips,
// truncation, a wrong kind — must be detected before the tree structure
// is trusted, falling back to a rebuild when the raw data is available.

#include "index/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "index/vp_tree.h"
#include "query/index_knn.h"
#include "query/knn.h"

namespace hyperdom {
namespace {

std::vector<Hypersphere> TestData(uint64_t seed, size_t n = 600) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 3;
  spec.radius_mean = 8.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "hyperdom_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::set<uint64_t> Ids(const KnnResult& result) {
  std::set<uint64_t> ids;
  for (const auto& e : result.answers) ids.insert(e.id);
  return ids;
}

TEST(Crc32Test, MatchesIeeeCheckVector) {
  // The canonical CRC-32/IEEE check: crc("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32Of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32Of("", 0), 0x00000000u);
  // Streaming in pieces must match one-shot.
  Crc32 crc;
  crc.Update("1234", 4);
  crc.Update("56789", 5);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(SnapshotTest, SsTreeRoundTripPreservesQueryAnswers) {
  const auto data = TestData(901);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const std::string path = TestPath("ss_roundtrip.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());

  SsTree loaded(1);
  ASSERT_TRUE(LoadSnapshot(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.dim(), tree.dim());

  HyperbolaCriterion exact;
  KnnSearcher searcher(&exact, KnnOptions{});
  for (const auto& sq : MakeKnnQueries(data, 8, 902)) {
    EXPECT_EQ(Ids(searcher.Search(loaded, sq)), Ids(searcher.Search(tree, sq)));
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, VpTreeRoundTripPreservesQueryAnswers) {
  const auto data = TestData(903);
  VpTree tree;
  ASSERT_TRUE(tree.Build(data).ok());
  const std::string path = TestPath("vp_roundtrip.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());

  VpTree loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.dim(), tree.dim());

  HyperbolaCriterion exact;
  for (const auto& sq : MakeKnnQueries(data, 8, 904)) {
    EXPECT_EQ(Ids(VpTreeKnnSearch(loaded, sq, exact, KnnOptions{})),
              Ids(VpTreeKnnSearch(tree, sq, exact, KnnOptions{})));
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, VerifyReportsEnvelopeFacts) {
  const auto data = TestData(905, 200);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const std::string path = TestPath("verify.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());

  auto info = VerifySnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->kind, SnapshotKind::kSsTree);
  EXPECT_EQ(info->version, 2u);
  EXPECT_TRUE(info->crc_ok);
  EXPECT_GT(info->payload_size, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveLeavesNoTempFile) {
  const auto data = TestData(906, 100);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const std::string path = TestPath("atomic.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SnapshotTest, BitFlipsAreRejectedNotTrusted) {
  const auto data = TestData(907, 150);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const std::string path = TestPath("bitflip.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());
  const std::string pristine = ReadFile(path);
  ASSERT_FALSE(pristine.empty());

  // Flip one bit at every header byte and at a stride through the payload;
  // every variant must fail with a clean Status and leave `loaded` alone.
  std::vector<size_t> positions;
  for (size_t i = 0; i < 24 && i < pristine.size(); ++i) positions.push_back(i);
  for (size_t i = 24; i < pristine.size(); i += 37) positions.push_back(i);
  for (size_t pos : positions) {
    std::string corrupt = pristine;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteFile(path, corrupt);
    SsTree loaded(1);
    const Status status = LoadSnapshot(path, &loaded);
    EXPECT_FALSE(status.ok()) << "flip at byte " << pos;
    EXPECT_EQ(loaded.size(), 0u) << "failed load must not mutate the tree";
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncationIsRejected) {
  const auto data = TestData(908, 150);
  VpTree tree;
  ASSERT_TRUE(tree.Build(data).ok());
  const std::string path = TestPath("truncate.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());
  const std::string pristine = ReadFile(path);

  for (size_t keep : {size_t{0}, size_t{3}, size_t{12}, size_t{23},
                      pristine.size() / 2, pristine.size() - 1}) {
    WriteFile(path, pristine.substr(0, keep));
    VpTree loaded;
    EXPECT_FALSE(LoadSnapshot(path, &loaded).ok()) << "kept " << keep;
    EXPECT_EQ(loaded.size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, KindMismatchIsRejected) {
  const auto data = TestData(909, 100);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const std::string path = TestPath("kind.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());

  VpTree wrong;
  const Status status = LoadSnapshot(path, &wrong);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  EXPECT_EQ(wrong.size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadOrRebuildFallsBackOnCorruption) {
  const auto data = TestData(910, 200);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const std::string path = TestPath("rebuild.snap");
  ASSERT_TRUE(SaveSnapshot(tree, path).ok());

  // Corrupt a payload byte: checksum catches it, rebuild takes over.
  std::string corrupt = ReadFile(path);
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);
  WriteFile(path, corrupt);

  SsTree recovered(1);
  SnapshotLoadOutcome outcome = SnapshotLoadOutcome::kLoaded;
  Status load_error;
  ASSERT_TRUE(
      LoadSnapshotOrRebuild(path, data, &recovered, &outcome, &load_error)
          .ok());
  EXPECT_EQ(outcome, SnapshotLoadOutcome::kRebuilt);
  EXPECT_FALSE(load_error.ok());
  EXPECT_EQ(recovered.size(), data.size());

  HyperbolaCriterion exact;
  KnnSearcher searcher(&exact, KnnOptions{});
  for (const auto& sq : MakeKnnQueries(data, 5, 911)) {
    EXPECT_EQ(Ids(searcher.Search(recovered, sq)),
              Ids(searcher.Search(tree, sq)));
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadOrRebuildFallsBackOnMissingFile) {
  const auto data = TestData(912, 120);
  const std::string path = TestPath("missing.snap");
  std::remove(path.c_str());

  VpTree recovered;
  SnapshotLoadOutcome outcome = SnapshotLoadOutcome::kLoaded;
  ASSERT_TRUE(LoadSnapshotOrRebuild(path, data, &recovered, &outcome).ok());
  EXPECT_EQ(outcome, SnapshotLoadOutcome::kRebuilt);
  EXPECT_EQ(recovered.size(), data.size());
}

// ---------------------------------------------------------------------------
// v1 -> v2 migration. The writers below emit the exact pre-store formats:
// HDSP v1 envelopes wrapping AoS tree payloads (HDSS v2 node records with
// inline spheres; HDVP v1 likewise). The current loader must migrate them
// into a SphereStore transparently, and the corruption checks must hold on
// the legacy byte layout too.
// ---------------------------------------------------------------------------

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// One AoS leaf entry: center coordinates, radius, id.
void AppendLegacyEntry(std::string* out, const Hypersphere& s, uint64_t id) {
  for (size_t d = 0; d < s.dim(); ++d) AppendPod(out, s.center()[d]);
  AppendPod(out, s.radius());
  AppendPod(out, id);
}

// HDSS v2: header + single-leaf root with inline entries.
std::string LegacySsPayload(const std::vector<Hypersphere>& data) {
  std::string out;
  out.append("HDSS", 4);
  AppendPod(&out, uint32_t{2});                           // version
  AppendPod(&out, static_cast<uint64_t>(data[0].dim()));  // dim
  AppendPod(&out, static_cast<uint64_t>(data.size()));    // size
  AppendPod(&out, uint64_t{16});                          // max_entries
  AppendPod(&out, 0.4);                                   // min_fill_ratio
  AppendPod(&out, uint32_t{0});                           // split_policy
  AppendPod(&out, uint32_t{0});                           // bounding_policy
  AppendPod(&out, uint8_t{1});                            // leaf root
  AppendPod(&out, static_cast<uint64_t>(data.size()));
  for (size_t i = 0; i < data.size(); ++i) {
    AppendLegacyEntry(&out, data[i], static_cast<uint64_t>(i));
  }
  return out;
}

// HDVP v1: header + single-leaf root with an inline bucket.
std::string LegacyVpPayload(const std::vector<Hypersphere>& data) {
  std::string out;
  out.append("HDVP", 4);
  AppendPod(&out, uint32_t{1});                           // version
  AppendPod(&out, static_cast<uint64_t>(data[0].dim()));  // dim
  AppendPod(&out, static_cast<uint64_t>(data.size()));    // size
  AppendPod(&out, uint64_t{32});                          // leaf_size
  AppendPod(&out, uint8_t{1});                            // leaf root
  AppendPod(&out, static_cast<uint64_t>(data.size()));
  for (size_t i = 0; i < data.size(); ++i) {
    AppendLegacyEntry(&out, data[i], static_cast<uint64_t>(i));
  }
  return out;
}

// HDSP v1 envelope around a payload.
std::string LegacyEnvelope(SnapshotKind kind, const std::string& payload) {
  std::string out;
  out.append("HDSP", 4);
  AppendPod(&out, uint32_t{1});  // legacy envelope version
  AppendPod(&out, static_cast<uint32_t>(kind));
  AppendPod(&out, static_cast<uint64_t>(payload.size()));
  AppendPod(&out, Crc32Of(payload.data(), payload.size()));
  out += payload;
  return out;
}

TEST(SnapshotMigrationTest, LegacySsSnapshotLoadsIntoStore) {
  const auto data = TestData(913, 14);
  const std::string path = TestPath("legacy_ss.snap");
  WriteFile(path, LegacyEnvelope(SnapshotKind::kSsTree,
                                 LegacySsPayload(data)));

  auto info = VerifySnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1u);
  EXPECT_TRUE(info->crc_ok);

  SsTree loaded(1);
  ASSERT_TRUE(LoadSnapshot(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), data.size());
  EXPECT_EQ(loaded.dim(), 3u);
  EXPECT_TRUE(loaded.CheckInvariants().ok());
  // Every migrated sphere is bit-identical to the source.
  ASSERT_EQ(loaded.store().size(), data.size());

  // Migrated trees answer queries exactly like a fresh build over the
  // same data inserted in the same (leaf) order.
  SsTree fresh(3);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(fresh.Insert(data[i], static_cast<uint64_t>(i)).ok());
  }
  HyperbolaCriterion exact;
  KnnSearcher searcher(&exact, KnnOptions{});
  for (const auto& sq : MakeKnnQueries(data, 6, 914)) {
    EXPECT_EQ(Ids(searcher.Search(loaded, sq)),
              Ids(searcher.Search(fresh, sq)));
  }

  // Re-saving writes the current store-backed format.
  const std::string resaved = TestPath("legacy_ss_resave.snap");
  ASSERT_TRUE(SaveSnapshot(loaded, resaved).ok());
  auto info2 = VerifySnapshot(resaved);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info2->version, 2u);
  SsTree round(1);
  ASSERT_TRUE(LoadSnapshot(resaved, &round).ok());
  EXPECT_EQ(round.size(), data.size());
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(SnapshotMigrationTest, LegacyVpSnapshotLoadsIntoStore) {
  const auto data = TestData(915, 12);
  const std::string path = TestPath("legacy_vp.snap");
  WriteFile(path, LegacyEnvelope(SnapshotKind::kVpTree,
                                 LegacyVpPayload(data)));

  VpTree loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), data.size());
  EXPECT_EQ(loaded.dim(), 3u);
  ASSERT_EQ(loaded.store().size(), data.size());

  // The migrated store holds the source spheres bit-for-bit.
  HyperbolaCriterion exact;
  for (const auto& sq : MakeKnnQueries(data, 6, 916)) {
    const auto got = VpTreeKnnSearch(loaded, sq, exact, KnnOptions{});
    const auto want = KnnLinearScan(data, sq, KnnOptions{}.k, exact);
    EXPECT_EQ(Ids(got), Ids(want));
  }
  std::remove(path.c_str());
}

TEST(SnapshotMigrationTest, LegacyBitFlipsAreStillRejected) {
  const auto data = TestData(917, 10);
  const std::string path = TestPath("legacy_bitflip.snap");
  const std::string pristine =
      LegacyEnvelope(SnapshotKind::kSsTree, LegacySsPayload(data));

  std::vector<size_t> positions;
  for (size_t i = 0; i < 24 && i < pristine.size(); ++i) positions.push_back(i);
  for (size_t i = 24; i < pristine.size(); i += 31) positions.push_back(i);
  for (size_t pos : positions) {
    std::string corrupt = pristine;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteFile(path, corrupt);
    SsTree loaded(1);
    const Status status = LoadSnapshot(path, &loaded);
    EXPECT_FALSE(status.ok()) << "flip at byte " << pos;
    EXPECT_EQ(loaded.size(), 0u) << "failed load must not mutate the tree";
  }
  std::remove(path.c_str());
}

TEST(SnapshotMigrationTest, FutureEnvelopeVersionIsNotSupported) {
  const auto data = TestData(918, 8);
  std::string bytes =
      LegacyEnvelope(SnapshotKind::kSsTree, LegacySsPayload(data));
  const uint32_t future = 3;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  const std::string path = TestPath("future.snap");
  WriteFile(path, bytes);
  SsTree loaded(1);
  EXPECT_EQ(LoadSnapshot(path, &loaded).code(), StatusCode::kNotSupported);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyperdom
