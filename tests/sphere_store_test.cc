// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The columnar sphere arena (storage/sphere_store.h): slot stability,
// alignment, bit-exact round-trips between owned Hyperspheres and store
// rows, and the serialized blob format the index snapshots embed.

#include "storage/sphere_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(SphereStoreTest, AddResolveRoundTripsBitExactly) {
  SphereStore store(3);
  Rng rng(2500);
  std::vector<Hypersphere> originals;
  std::vector<uint32_t> slots;
  for (int i = 0; i < 200; ++i) {
    originals.push_back(test::RandomSphere(&rng, 3, 5.0));
    slots.push_back(store.Add(originals.back()));
  }
  ASSERT_EQ(store.size(), 200u);
  for (size_t i = 0; i < slots.size(); ++i) {
    const SphereView v = store.view(slots[i]);
    ASSERT_EQ(v.dim, 3u);
    EXPECT_EQ(v.radius, originals[i].radius());
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(v.center[d], originals[i].center()[d]) << "slot " << i;
    }
    // Materialize copies the row back into an owned sphere, bit-for-bit.
    EXPECT_TRUE(store.Materialize(slots[i]) == originals[i]);
  }
}

TEST(SphereStoreTest, ArenaIs64ByteAligned) {
  for (size_t dim : {size_t{1}, size_t{2}, size_t{7}, size_t{50}}) {
    SphereStore store(dim);
    Rng rng(2501);
    for (int i = 0; i < 33; ++i) store.Add(test::RandomSphere(&rng, dim, 1.0));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(store.center(0)) % 64, 0u)
        << "dim " << dim;
    // Rows are d-strided off the aligned base: consecutive slots are
    // contiguous.
    EXPECT_EQ(store.center(1), store.center(0) + dim);
  }
}

TEST(SphereStoreTest, SlotsStableAcrossGrowth) {
  SphereStore store(2);
  const uint32_t first = store.Add(Hypersphere({1.0, 2.0}, 0.5));
  // Force many reallocation cycles.
  Rng rng(2502);
  for (int i = 0; i < 5000; ++i) store.Add(test::RandomSphere(&rng, 2, 1.0));
  EXPECT_EQ(store.center(first)[0], 1.0);
  EXPECT_EQ(store.center(first)[1], 2.0);
  EXPECT_EQ(store.radius(first), 0.5);
}

TEST(SphereStoreTest, ReservePreventsViewInvalidation) {
  SphereStore store(2);
  store.Reserve(100);
  const uint32_t slot = store.Add(Hypersphere({3.0, 4.0}, 1.0));
  const double* base = store.center(slot);
  Rng rng(2503);
  for (int i = 0; i < 99; ++i) store.Add(test::RandomSphere(&rng, 2, 1.0));
  // No reallocation happened within the reserved capacity.
  EXPECT_EQ(store.center(slot), base);
}

TEST(SphereStoreTest, DefaultConstructedAdoptsFirstDim) {
  SphereStore store;
  EXPECT_EQ(store.dim(), 0u);
  store.Add(Hypersphere({1.0, 2.0, 3.0, 4.0}, 0.1));
  EXPECT_EQ(store.dim(), 4u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SphereStoreTest, ResolveCarriesIdAndSlot) {
  SphereStore store(2);
  const uint32_t slot = store.Add(Hypersphere({1.0, 1.0}, 2.0));
  const EntryView e = store.Resolve(StoredEntry{slot, 77});
  EXPECT_EQ(e.id, 77u);
  EXPECT_EQ(e.slot, slot);
  EXPECT_EQ(e.sphere.radius, 2.0);
}

TEST(SphereStoreTest, CopyIsDeepMoveIsCheap) {
  SphereStore store(2);
  store.Add(Hypersphere({5.0, 6.0}, 1.0));
  SphereStore copy = store;
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_NE(copy.center(0), store.center(0));  // distinct arenas
  EXPECT_EQ(copy.center(0)[0], 5.0);

  const double* arena = store.center(0);
  SphereStore moved = std::move(store);
  EXPECT_EQ(moved.center(0), arena);  // arena adopted, not copied
  EXPECT_EQ(moved.size(), 1u);
}

TEST(SphereStoreTest, SerializationRoundTrip) {
  SphereStore store(3);
  Rng rng(2504);
  for (int i = 0; i < 50; ++i) store.Add(test::RandomSphere(&rng, 3, 4.0));

  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(store.SerializeTo(out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  SphereStore loaded;
  ASSERT_TRUE(SphereStore::DeserializeFrom(in, &loaded).ok());
  ASSERT_EQ(loaded.size(), store.size());
  ASSERT_EQ(loaded.dim(), store.dim());
  for (uint32_t s = 0; s < loaded.size(); ++s) {
    EXPECT_EQ(loaded.radius(s), store.radius(s));
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(loaded.center(s)[d], store.center(s)[d]);
    }
  }
}

TEST(SphereStoreTest, EmptyStoreSerializationRoundTrip) {
  SphereStore store;
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(store.SerializeTo(out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  SphereStore loaded;
  ASSERT_TRUE(SphereStore::DeserializeFrom(in, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(SphereStoreTest, DeserializeRejectsCorruption) {
  SphereStore store(2);
  store.Add(Hypersphere({1.0, 2.0}, 0.5));
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(store.SerializeTo(out).ok());
  const std::string pristine = out.str();

  // Truncation at every prefix.
  for (size_t keep = 0; keep < pristine.size(); keep += 5) {
    std::istringstream in(pristine.substr(0, keep), std::ios::binary);
    SphereStore loaded;
    EXPECT_FALSE(SphereStore::DeserializeFrom(in, &loaded).ok())
        << "kept " << keep;
  }

  // An absurd size field must be rejected before allocation.
  std::string huge = pristine;
  const uint64_t bogus = ~uint64_t{0};
  std::memcpy(huge.data() + 8, &bogus, sizeof(bogus));
  std::istringstream in(huge, std::ios::binary);
  SphereStore loaded;
  EXPECT_FALSE(SphereStore::DeserializeFrom(in, &loaded).ok());
}

TEST(SphereStoreTest, ClearKeepsDimAndCapacity) {
  SphereStore store(2);
  store.Reserve(10);
  store.Add(Hypersphere({1.0, 1.0}, 1.0));
  const double* base = store.center(0);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dim(), 2u);
  store.Add(Hypersphere({9.0, 9.0}, 2.0));
  EXPECT_EQ(store.center(0), base);  // capacity retained
  EXPECT_EQ(store.center(0)[0], 9.0);
}

}  // namespace
}  // namespace hyperdom
