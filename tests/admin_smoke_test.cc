// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Whole-binary smoke test of the admin plane: fork/exec the real
// hyperdom_server binary with --port=0 --admin-port=0, read both bound
// ports from its stdout, hit the admin endpoints over real HTTP, run a
// v2 kNN against the query port, then SIGTERM it and require a clean
// drain (exit 0). This is the deployment path — one binary, two ports —
// exercised end to end by tier-1 ctest.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "data/csv.h"
#include "data/generator.h"
#include "eval/workload.h"
#include "server/admin.h"
#include "server/client.h"

namespace hyperdom {
namespace server {
namespace {

#if !defined(HYPERDOM_SERVER_BINARY)
#error "admin_smoke_test requires HYPERDOM_SERVER_BINARY"
#endif

// Reads lines from `fd` until `pattern` shows up or `timeout_ms` passes;
// returns everything read. The server prints its banners and flushes
// before blocking, so this terminates fast in the happy path.
std::string ReadUntil(int fd, const std::string& pattern, int timeout_ms) {
  std::string out;
  const auto give_up = timeout_ms;
  int waited = 0;
  while (out.find(pattern) == std::string::npos && waited < give_up) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    waited += 100;
    if (ready <= 0) continue;
    char buf[512];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

// Pulls the port out of "... on 127.0.0.1:PORT ..." following `prefix`.
uint16_t ParsePortAfter(const std::string& text, const std::string& prefix) {
  const size_t at = text.find(prefix);
  if (at == std::string::npos) return 0;
  const size_t colon = text.find("127.0.0.1:", at);
  if (colon == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::atoi(text.c_str() + colon + std::strlen("127.0.0.1:")));
}

TEST(AdminSmokeTest, RealBinaryServesBothPlanesAndDrainsOnSigterm) {
  // Dataset on disk for the child to load.
  const std::string csv_path = ::testing::TempDir() + "/admin_smoke.csv";
  SyntheticSpec spec;
  spec.n = 2'000;
  spec.dim = 3;
  spec.radius_mean = 10.0;
  spec.center_mean = 100.0;
  spec.center_stddev = 30.0;
  spec.seed = 12'000;
  const auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(SaveSpheresCsv(csv_path, data).ok());

  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: stdout -> pipe, exec the server with both ports ephemeral.
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string data_flag = "--data=" + csv_path;
    ::execl(HYPERDOM_SERVER_BINARY, HYPERDOM_SERVER_BINARY,
            data_flag.c_str(), "--port=0", "--admin-port=0",
            "--slow-query-ms=0", static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  ::close(out_pipe[1]);

  const std::string banner =
      ReadUntil(out_pipe[0], "SIGTERM/SIGINT", /*timeout_ms=*/15'000);
  const uint16_t query_port =
      ParsePortAfter(banner, "hyperdom_server listening on");
  const uint16_t admin_port = ParsePortAfter(banner, "admin plane on");
  ASSERT_NE(query_port, 0) << "no query port in banner:\n" << banner;
  ASSERT_NE(admin_port, 0) << "no admin port in banner:\n" << banner;

  // Admin plane answers.
  auto healthz = AdminHttpGet("127.0.0.1", admin_port, "/healthz", 5'000);
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(healthz->status_code, 200);
  auto readyz = AdminHttpGet("127.0.0.1", admin_port, "/readyz", 5'000);
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status_code, 200);

  // Query plane answers a v2 kNN.
  ClientOptions client_options;
  client_options.port = query_port;
  Client client(client_options);
  KnnRequest request;
  request.query = MakeKnnQueries(data, 1, 12'100)[0];
  request.k = 5;
  auto response = client.Knn(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->answers.empty());
  EXPECT_NE(client.last_request_id(), 0u);

  // The scrape sees the served request in the exported metrics.
  auto metrics = AdminHttpGet("127.0.0.1", admin_port, "/metrics", 5'000);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->body.find("hyperdom_admin_requests_total"),
            std::string::npos);
  auto statusz = AdminHttpGet("127.0.0.1", admin_port, "/statusz", 5'000);
  ASSERT_TRUE(statusz.ok());
  EXPECT_NE(statusz->body.find("\"requests_served\":1"), std::string::npos);

  // SIGTERM -> graceful drain -> exit 0.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "server did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  ::close(out_pipe[0]);
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace server
}  // namespace hyperdom
