// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Cross-index equivalence: all four indexes — SS-tree, R*-tree, VP-tree,
// M-tree — must return exactly the Definition-2 answer set when searched
// with the exact criterion in deferred mode, i.e. identical to each other
// and to the linear scan, for both traversal strategies.

#include "query/index_knn.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "dominance/minmax.h"
#include "eval/workload.h"
#include "query/knn.h"

namespace hyperdom {
namespace {

std::set<uint64_t> Ids(const KnnResult& result) {
  std::set<uint64_t> ids;
  for (const auto& e : result.answers) ids.insert(e.id);
  return ids;
}

class IndexEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SearchStrategy, size_t>> {};

TEST_P(IndexEquivalenceTest, AllIndexesMatchLinearScan) {
  const auto [strategy, k] = GetParam();
  SyntheticSpec spec;
  spec.n = 2500;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = 2100 + k;
  const auto data = GenerateSynthetic(spec);

  SsTree ss_tree(4);
  ASSERT_TRUE(ss_tree.BulkLoad(data).ok());
  RStarTree rstar(4);
  ASSERT_TRUE(rstar.BulkLoad(data).ok());
  VpTree vp;
  ASSERT_TRUE(vp.Build(data).ok());
  MTree mtree(4);
  ASSERT_TRUE(mtree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  KnnOptions options;
  options.k = k;
  options.strategy = strategy;
  KnnSearcher ss_searcher(&exact, options);

  for (const auto& sq : MakeKnnQueries(data, 12, 2101)) {
    const auto truth = Ids(KnnLinearScan(data, sq, k, exact));
    EXPECT_EQ(Ids(ss_searcher.Search(ss_tree, sq)), truth) << "SS-tree";
    EXPECT_EQ(Ids(RStarKnnSearch(rstar, sq, exact, options)), truth)
        << "R*-tree";
    EXPECT_EQ(Ids(VpTreeKnnSearch(vp, sq, exact, options)), truth)
        << "VP-tree";
    EXPECT_EQ(Ids(MTreeKnnSearch(mtree, sq, exact, options)), truth)
        << "M-tree";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchStrategy::kBestFirst,
                                         SearchStrategy::kDepthFirst),
                       ::testing::Values<size_t>(1, 5, 20)));

TEST(IndexKnnTest, EmptyIndexesGiveEmptyResults) {
  HyperbolaCriterion exact;
  KnnOptions options;
  const Hypersphere sq({0.0, 0.0}, 1.0);
  RStarTree rstar(2);
  EXPECT_TRUE(RStarKnnSearch(rstar, sq, exact, options).answers.empty());
  VpTree vp;
  ASSERT_TRUE(vp.Build({}).ok());
  EXPECT_TRUE(VpTreeKnnSearch(vp, sq, exact, options).answers.empty());
  MTree mtree(2);
  EXPECT_TRUE(MTreeKnnSearch(mtree, sq, exact, options).answers.empty());
}

TEST(IndexKnnTest, WeakCriterionSupersetOnEveryIndex) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 3;
  spec.seed = 2102;
  const auto data = GenerateSynthetic(spec);
  RStarTree rstar(3);
  ASSERT_TRUE(rstar.BulkLoad(data).ok());
  VpTree vp;
  ASSERT_TRUE(vp.Build(data).ok());
  MTree mtree(3);
  ASSERT_TRUE(mtree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  MinMaxCriterion weak;
  KnnOptions options;
  options.k = 8;
  for (const auto& sq : MakeKnnQueries(data, 6, 2103)) {
    const auto truth = Ids(KnnLinearScan(data, sq, options.k, exact));
    for (const auto& result :
         {RStarKnnSearch(rstar, sq, weak, options),
          VpTreeKnnSearch(vp, sq, weak, options),
          MTreeKnnSearch(mtree, sq, weak, options)}) {
      const auto weak_ids = Ids(result);
      for (uint64_t id : truth) {
        EXPECT_TRUE(weak_ids.count(id)) << "lost an exact answer";
      }
    }
  }
}

TEST(IndexKnnTest, StatsReflectPruning) {
  SyntheticSpec spec;
  spec.n = 5000;
  spec.dim = 4;
  spec.radius_mean = 3.0;
  spec.seed = 2104;
  const auto data = GenerateSynthetic(spec);
  RStarTree rstar(4);
  ASSERT_TRUE(rstar.BulkLoad(data).ok());
  HyperbolaCriterion exact;
  KnnOptions options;
  options.k = 5;
  const KnnResult result = RStarKnnSearch(rstar, data[0], exact, options);
  // A tight query over a large dataset must prune something and must not
  // touch every entry.
  EXPECT_GT(result.stats.nodes_pruned + result.stats.pruned_case3, 0u);
  EXPECT_LT(result.stats.entries_accessed, data.size());
  EXPECT_FALSE(result.answers.empty());
}

}  // namespace
}  // namespace hyperdom
