// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/ss_tree.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "data/generator.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(SsTreeTest, EmptyTree) {
  SsTree tree(3);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(SsTreeTest, SingleInsert) {
  SsTree tree(2);
  ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 2.0}, 3.0), 7).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1u);
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_TRUE(tree.root()->is_leaf());
  ASSERT_EQ(tree.root()->entries().size(), 1u);
  EXPECT_EQ(tree.root()->entries()[0].id, 7u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // The root bounding sphere covers the entry.
  EXPECT_TRUE(tree.root()->bounding_sphere().ContainsSphere(
      Hypersphere({1.0, 2.0}, 3.0)));
}

TEST(SsTreeTest, DimensionMismatchRejected) {
  SsTree tree(2);
  const Status st = tree.Insert(Hypersphere({1.0, 2.0, 3.0}, 0.5), 0);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(SsTreeTest, BadOptionsRejected) {
  SsTreeOptions options;
  options.max_entries = 2;
  SsTree tree(2, options);
  EXPECT_EQ(tree.Insert(Hypersphere({0.0, 0.0}, 1.0), 0).code(),
            StatusCode::kInvalidArgument);

  SsTreeOptions bad_fill;
  bad_fill.min_fill_ratio = 0.9;
  SsTree tree2(2, bad_fill);
  EXPECT_EQ(tree2.Insert(Hypersphere({0.0, 0.0}, 1.0), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(SsTreeTest, SplitsGrowTheTree) {
  SsTreeOptions options;
  options.max_entries = 4;
  SsTree tree(2, options);
  Rng rng(800);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree.Insert(test::RandomSphere(&rng, 2, 2.0), i).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.Height(), 2u);
}

TEST(SsTreeTest, BulkLoadAssignsSequentialIds) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 3;
  spec.seed = 801;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_EQ(tree.size(), 500u);

  // Every id 0..499 appears exactly once in the leaves.
  std::set<uint64_t> ids;
  std::vector<const SsTreeNode*> stack = {tree.root()};
  while (!stack.empty()) {
    const SsTreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      for (const auto& e : node->entries()) {
        EXPECT_TRUE(ids.insert(e.id).second) << "duplicate id " << e.id;
      }
    } else {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  EXPECT_EQ(ids.size(), 500u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 499u);
}

class SsTreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SsTreeInvariantTest, InvariantsHoldAfterBulkLoad) {
  const auto [dim, max_entries] = GetParam();
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = dim;
  spec.radius_mean = 10.0;
  spec.seed = 802 + dim;
  const auto data = GenerateSynthetic(spec);
  SsTreeOptions options;
  options.max_entries = max_entries;
  SsTree tree(dim, options);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  // All data spheres are covered by the root sphere.
  const Hypersphere& root_sphere = tree.root()->bounding_sphere();
  for (const auto& s : data) {
    EXPECT_LE(Dist(root_sphere.center(), s.center()) + s.radius(),
              root_sphere.radius() * (1.0 + 1e-9) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SsTreeInvariantTest,
    ::testing::Combine(::testing::Values<size_t>(2, 4, 10),
                       ::testing::Values<size_t>(4, 8, 24, 64)));

TEST(SsTreeTest, HeightStaysLogarithmic) {
  SyntheticSpec spec;
  spec.n = 20'000;
  spec.dim = 4;
  spec.seed = 803;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);  // max_entries = 24
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  // ceil(log_{24*0.4}(20000)) is about 5; allow generous slack.
  EXPECT_LE(tree.Height(), 8u);
  EXPECT_GE(tree.Height(), 3u);
}

TEST(SsTreeTest, DuplicatePointsHandled) {
  SsTree tree(2);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 1.0}, 0.5), i).ok());
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(SsTreeTest, ZeroRadiusEntries) {
  Rng rng(804);
  SsTree tree(3);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        tree.Insert(Hypersphere(test::RandomPoint(&rng, 3), 0.0), i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

class SsTreeSplitPolicyTest
    : public ::testing::TestWithParam<SsTreeSplitPolicy> {};

TEST_P(SsTreeSplitPolicyTest, InvariantsHoldUnderEitherPolicy) {
  SyntheticSpec spec;
  spec.n = 4000;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = 806;
  const auto data = GenerateSynthetic(spec);
  SsTreeOptions options;
  options.split_policy = GetParam();
  SsTree tree(4, options);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), data.size());
}

TEST_P(SsTreeSplitPolicyTest, DegenerateDuplicatesSplitSafely) {
  SsTreeOptions options;
  options.split_policy = GetParam();
  options.max_entries = 4;
  SsTree tree(2, options);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Hypersphere({7.0, 7.0}, 1.0), i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

INSTANTIATE_TEST_SUITE_P(Policies, SsTreeSplitPolicyTest,
                         ::testing::Values(SsTreeSplitPolicy::kVarianceCut,
                                           SsTreeSplitPolicy::kTwoMeans));

TEST(SsTreeSplitPolicyComparisonTest, TwoMeansGivesNoWorseCoverage) {
  // The SS+-style split exists to produce tighter child spheres; compare
  // the total bounding volume proxy (sum of squared radii of leaf-parent
  // spheres). Not a strict theorem — assert it is at least in the same
  // ballpark (within 2x), and both trees answer identically elsewhere.
  SyntheticSpec spec;
  spec.n = 6000;
  spec.dim = 4;
  spec.radius_mean = 5.0;
  spec.seed = 807;
  const auto data = GenerateSynthetic(spec);
  auto radius_mass = [](const SsTree& tree) {
    double total = 0.0;
    std::vector<const SsTreeNode*> stack = {tree.root()};
    while (!stack.empty()) {
      const SsTreeNode* node = stack.back();
      stack.pop_back();
      const double r = node->bounding_sphere().radius();
      total += r * r;
      if (!node->is_leaf()) {
        for (const auto& child : node->children()) {
          stack.push_back(child.get());
        }
      }
    }
    return total;
  };
  SsTreeOptions variance;
  SsTree tree_var(4, variance);
  ASSERT_TRUE(tree_var.BulkLoad(data).ok());
  SsTreeOptions kmeans;
  kmeans.split_policy = SsTreeSplitPolicy::kTwoMeans;
  SsTree tree_km(4, kmeans);
  ASSERT_TRUE(tree_km.BulkLoad(data).ok());
  EXPECT_LT(radius_mass(tree_km), 2.0 * radius_mass(tree_var));
}

class SsTreeBoundingPolicyTest
    : public ::testing::TestWithParam<SsTreeBoundingPolicy> {};

TEST_P(SsTreeBoundingPolicyTest, InvariantsHoldUnderEitherPolicy) {
  SyntheticSpec spec;
  spec.n = 2500;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = 810;
  const auto data = GenerateSynthetic(spec);
  SsTreeOptions options;
  options.bounding_policy = GetParam();
  SsTree tree(4, options);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

INSTANTIATE_TEST_SUITE_P(Policies, SsTreeBoundingPolicyTest,
                         ::testing::Values(SsTreeBoundingPolicy::kCentroid,
                                           SsTreeBoundingPolicy::kMinBall));

TEST(SsTreeBoundingPolicyComparisonTest, MinBallBoundsAreTighter) {
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 4;
  spec.radius_mean = 5.0;
  spec.seed = 811;
  const auto data = GenerateSynthetic(spec);
  auto radius_mass = [](const SsTree& tree) {
    double total = 0.0;
    std::vector<const SsTreeNode*> stack = {tree.root()};
    while (!stack.empty()) {
      const SsTreeNode* node = stack.back();
      stack.pop_back();
      total += node->bounding_sphere().radius();
      if (!node->is_leaf()) {
        for (const auto& child : node->children()) {
          stack.push_back(child.get());
        }
      }
    }
    return total;
  };
  SsTree centroid_tree(4);
  ASSERT_TRUE(centroid_tree.BulkLoad(data).ok());
  SsTreeOptions tight;
  tight.bounding_policy = SsTreeBoundingPolicy::kMinBall;
  SsTree min_ball_tree(4, tight);
  ASSERT_TRUE(min_ball_tree.BulkLoad(data).ok());
  // Welzl bounds are minimal per node content; the trees' structures can
  // differ slightly (bounds feed back into nothing structural here, same
  // splits), so compare aggregate tightness.
  EXPECT_LE(radius_mass(min_ball_tree), radius_mass(centroid_tree));
}

class SsTreePersistenceTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    return testing::TempDir() + "/hyperdom_sstree_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }
};

TEST_F(SsTreePersistenceTest, RoundTripPreservesStructureAndAnswers) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 4;
  spec.radius_mean = 6.0;
  spec.seed = 808;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  const std::string path = TempPath();
  ASSERT_TRUE(tree.Save(path).ok());
  SsTree loaded(0);
  ASSERT_TRUE(SsTree::Load(path, &loaded).ok());
  std::remove(path.c_str());

  EXPECT_EQ(loaded.size(), tree.size());
  EXPECT_EQ(loaded.dim(), tree.dim());
  EXPECT_EQ(loaded.Height(), tree.Height());
  EXPECT_EQ(loaded.options().max_entries, tree.options().max_entries);
  EXPECT_TRUE(loaded.CheckInvariants().ok())
      << loaded.CheckInvariants().ToString();

  // Same leaf payloads in the same positions.
  std::vector<const SsTreeNode*> s1 = {tree.root()}, s2 = {loaded.root()};
  while (!s1.empty()) {
    ASSERT_EQ(s1.empty(), s2.empty());
    const SsTreeNode* a = s1.back();
    const SsTreeNode* b = s2.back();
    s1.pop_back();
    s2.pop_back();
    ASSERT_EQ(a->is_leaf(), b->is_leaf());
    if (a->is_leaf()) {
      ASSERT_EQ(a->entries().size(), b->entries().size());
      for (size_t i = 0; i < a->entries().size(); ++i) {
        EXPECT_EQ(a->entries()[i].id, b->entries()[i].id);
        EXPECT_TRUE(tree.store().Materialize(a->entries()[i].slot) ==
                    loaded.store().Materialize(b->entries()[i].slot));
      }
    } else {
      ASSERT_EQ(a->children().size(), b->children().size());
      for (size_t i = 0; i < a->children().size(); ++i) {
        s1.push_back(a->children()[i].get());
        s2.push_back(b->children()[i].get());
      }
    }
  }
}

TEST_F(SsTreePersistenceTest, EmptyTreeRoundTrips) {
  SsTree tree(3);
  const std::string path = TempPath();
  ASSERT_TRUE(tree.Save(path).ok());
  SsTree loaded(0);
  ASSERT_TRUE(SsTree::Load(path, &loaded).ok());
  std::remove(path.c_str());
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.root(), nullptr);
}

TEST_F(SsTreePersistenceTest, MissingFileIsNotFound) {
  SsTree loaded(0);
  // common/io maps ENOENT to kNotFound.
  EXPECT_EQ(SsTree::Load("/no/such/file.bin", &loaded).code(),
            StatusCode::kNotFound);
}

TEST_F(SsTreePersistenceTest, GarbageFileIsRejected) {
  const std::string path = TempPath();
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not an SS-tree";
  }
  SsTree loaded(0);
  EXPECT_EQ(SsTree::Load(path, &loaded).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(SsTreePersistenceTest, TruncatedFileIsRejected) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 3;
  spec.seed = 809;
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(GenerateSynthetic(spec)).ok());
  const std::string path = TempPath();
  ASSERT_TRUE(tree.Save(path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string content = buffer.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  SsTree loaded(0);
  const Status st = SsTree::Load(path, &loaded);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(SsTreeTest, SubtreeSizesConsistent) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 3;
  spec.seed = 805;
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(GenerateSynthetic(spec)).ok());
  EXPECT_EQ(tree.root()->subtree_size(), 2000u);
}

}  // namespace
}  // namespace hyperdom
