// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/hyperbola.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/focal_frame.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(HyperbolaTest, Metadata) {
  HyperbolaCriterion c;
  EXPECT_EQ(c.name(), "Hyperbola");
  EXPECT_TRUE(c.is_correct());
  EXPECT_TRUE(c.is_sound());
}

// Paper Figure 1(a): Sa between Sq and Sb -> dominance.
TEST(HyperbolaTest, FigureOneA) {
  HyperbolaCriterion c;
  EXPECT_TRUE(c.Dominates(Hypersphere({4.0, 0.0}, 1.0),
                          Hypersphere({12.0, 0.0}, 1.0),
                          Hypersphere({0.0, 0.0}, 1.5)));
}

// Paper Figure 1(b): Sb swings near the query -> no dominance.
TEST(HyperbolaTest, FigureOneB) {
  HyperbolaCriterion c;
  EXPECT_FALSE(c.Dominates(Hypersphere({4.0, 0.0}, 1.0),
                           Hypersphere({3.0, 4.0}, 1.0),
                           Hypersphere({0.0, 0.0}, 1.5)));
}

// Paper Lemma 1: overlap kills dominance, including tangency and nesting.
TEST(HyperbolaTest, OverlappingCaseIsFalse) {
  HyperbolaCriterion c;
  const Hypersphere sq({0.0, 0.0}, 1.0);
  EXPECT_FALSE(c.Dominates(Hypersphere({5.0, 0.0}, 2.0),
                           Hypersphere({8.0, 0.0}, 1.0), sq));  // tangent
  EXPECT_FALSE(c.Dominates(Hypersphere({5.0, 0.0}, 3.0),
                           Hypersphere({6.0, 0.0}, 1.0), sq));  // nested
  EXPECT_FALSE(c.Dominates(Hypersphere({5.0, 0.0}, 2.0),
                           Hypersphere({5.0, 0.0}, 2.0), sq));  // identical
}

TEST(HyperbolaTest, PointQueryReducesToCenterCheck) {
  HyperbolaCriterion c;
  const Hypersphere sa({2.0, 0.0}, 0.5);
  const Hypersphere sb({10.0, 0.0}, 0.5);
  EXPECT_TRUE(c.Dominates(sa, sb, Hypersphere({0.0, 0.0}, 0.0)));
  // Query point equidistant-ish: margin db - da = 2 > rab = 1 -> true;
  // move the query so the margin collapses below rab -> false.
  EXPECT_FALSE(c.Dominates(sa, sb, Hypersphere({5.8, 0.0}, 0.0)));
}

TEST(HyperbolaTest, TwoPointsBisectorCase) {
  HyperbolaCriterion c;
  const Hypersphere pa = Hypersphere::FromPoint({0.0, 2.0});
  const Hypersphere pb = Hypersphere::FromPoint({0.0, -2.0});
  // Query ball strictly above the bisector: dominance (Lemma 3's example).
  EXPECT_TRUE(c.Dominates(pa, pb, Hypersphere({0.0, 10.0}, 6.0)));
  EXPECT_TRUE(c.Dominates(pa, pb, Hypersphere({40.0, 8.0}, 7.9)));
  // Ball touching the bisector: tangency means a tie point exists.
  EXPECT_FALSE(c.Dominates(pa, pb, Hypersphere({0.0, 10.0}, 10.0)));
  // Ball crossing the bisector: definitely not.
  EXPECT_FALSE(c.Dominates(pa, pb, Hypersphere({0.0, 10.0}, 12.0)));
}

TEST(HyperbolaTest, OneDimensionalExact) {
  HyperbolaCriterion c;
  // Segment query fully on Sa's side.
  EXPECT_TRUE(c.Dominates(Hypersphere({2.0}, 0.5), Hypersphere({20.0}, 0.5),
                          Hypersphere({0.0}, 1.0)));
  // Segment reaching past the midline.
  EXPECT_FALSE(c.Dominates(Hypersphere({2.0}, 0.5), Hypersphere({20.0}, 0.5),
                           Hypersphere({0.0}, 11.0)));
  // Segment containing the b-focus.
  EXPECT_FALSE(c.Dominates(Hypersphere({2.0}, 0.1), Hypersphere({6.0}, 0.1),
                           Hypersphere({5.0}, 2.0)));
}

// ---------------------------------------------------------------------------
// The core equivalence: Hyperbola == numeric oracle, across dimensions and
// radius regimes, skipping only scenes within 1e-6 of the decision boundary.
// ---------------------------------------------------------------------------
class HyperbolaVsOracleTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(HyperbolaVsOracleTest, MatchesOracle) {
  const auto [dim, mu] = GetParam();
  Rng rng(4000 + dim * 131 + static_cast<uint64_t>(mu));
  HyperbolaCriterion c;
  int checked = 0, positives = 0;
  for (int iter = 0; iter < 8000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, dim, mu);
    if (test::IsBorderline(s)) continue;
    ++checked;
    const bool expected = test::OracleDominates(s);
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), expected)
        << test::SceneToString(s);
    if (expected) ++positives;
  }
  EXPECT_GT(checked, 7000);
  // At mu >= 50 the Gaussian(100, 25) scene is so crowded with fat spheres
  // that random triples essentially never dominate; only demand positives
  // where the regime admits them.
  if (mu <= 10.0) {
    EXPECT_GT(positives, 0) << "sweep never produced a dominance";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HyperbolaVsOracleTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3, 4, 6, 10, 17),
                       ::testing::Values(5.0, 10.0, 50.0, 100.0)));

// Parametric inner method must agree with the quartic everywhere.
class HyperbolaInnerMethodTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HyperbolaInnerMethodTest, QuarticAgreesWithParametric) {
  const size_t dim = GetParam();
  Rng rng(4100 + dim);
  HyperbolaCriterion quartic(HyperbolaInnerMethod::kQuartic);
  HyperbolaCriterion parametric(HyperbolaInnerMethod::kParametric);
  for (int iter = 0; iter < 3000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, dim, 10.0);
    if (test::IsBorderline(s)) continue;
    EXPECT_EQ(quartic.Dominates(s.sa, s.sb, s.sq),
              parametric.Dominates(s.sa, s.sb, s.sq))
        << test::SceneToString(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HyperbolaInnerMethodTest,
                         ::testing::Values(2, 4, 8));

// The exposed min-distance kernels agree on random frames.
TEST(HyperbolaMinDistTest, QuarticMatchesParametricKernel) {
  Rng rng(4200);
  for (int iter = 0; iter < 5000; ++iter) {
    const double alpha = rng.Uniform(0.5, 50.0);
    const double rab = rng.Uniform(0.01, 1.99) * alpha;
    const double y1 = rng.Uniform(-3.0 * alpha, 3.0 * alpha);
    const double y2 = rng.Uniform(0.0, 3.0 * alpha);
    const double dq = HyperbolaMinDistQuartic(alpha, rab, y1, y2);
    const double dp = HyperbolaMinDistParametric(alpha, rab, y1, y2);
    // The quartic finds the exact critical points; the parametric scan is
    // the reference. Tolerate its grid resolution.
    EXPECT_NEAR(dq, dp, 1e-5 * (1.0 + alpha))
        << "alpha=" << alpha << " rab=" << rab << " y1=" << y1
        << " y2=" << y2;
  }
}

TEST(HyperbolaMinDistTest, OnAxisQueries) {
  // Singular-branch coverage: the query on the focal axis (y2 == 0).
  for (double y1 : {-40.0, -6.0, -1.2, 0.0, 1.2, 6.0, 40.0}) {
    const double dq = HyperbolaMinDistQuartic(5.0, 2.0, y1, 0.0);
    const double dp = HyperbolaMinDistParametric(5.0, 2.0, y1, 0.0);
    EXPECT_NEAR(dq, dp, 1e-6) << "y1=" << y1;
  }
}

TEST(HyperbolaMinDistTest, OnBisectorQueries) {
  // Singular-branch coverage: the query on the mid-plane (y1 == 0).
  for (double y2 : {0.5, 2.0, 10.0, 80.0}) {
    const double dq = HyperbolaMinDistQuartic(5.0, 2.0, 0.0, y2);
    const double dp = HyperbolaMinDistParametric(5.0, 2.0, 0.0, y2);
    EXPECT_NEAR(dq, dp, 1e-6 * (1.0 + y2)) << "y2=" << y2;
  }
}

TEST(HyperbolaMinDistTest, VertexDistanceExactOnAxisNearCa) {
  // cq between the near vertex and the a-focus: nearest point is the vertex
  // x1 = -rab/2 when cq is mildly off it.
  const double alpha = 10.0;
  const double rab = 4.0;  // vertex at -2
  const double dq = HyperbolaMinDistQuartic(alpha, rab, -6.0, 0.0);
  EXPECT_NEAR(dq, 4.0, 1e-9);  // |-6 - (-2)|
}

TEST(HyperbolaMinDistTest, PointOnTheCurveHasZeroDistance) {
  // Construct a point exactly on the near branch and expect ~0.
  const double alpha = 8.0;
  const double rab = 6.0;
  const double a = rab / 2.0;
  const double b = std::sqrt(alpha * alpha - a * a);
  for (double t : {0.0, 0.3, 1.0, 2.5}) {
    const double x1 = -a * std::cosh(t);
    const double xp = b * std::sinh(t);
    const double d = HyperbolaMinDistQuartic(alpha, rab, x1, xp);
    EXPECT_NEAR(d, 0.0, 1e-6 * (1.0 + std::fabs(x1) + xp)) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Geometric invariances: dominance decisions survive translation, rotation
// (coordinate permutation + sign flips) and uniform scaling.
// ---------------------------------------------------------------------------
TEST(HyperbolaInvarianceTest, Translation) {
  Rng rng(4300);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 4, 10.0);
    if (test::IsBorderline(s)) continue;
    Point shift(4);
    for (auto& v : shift) v = rng.Uniform(-500.0, 500.0);
    const bool base = c.Dominates(s.sa, s.sb, s.sq);
    const Hypersphere sa2(Add(s.sa.center(), shift), s.sa.radius());
    const Hypersphere sb2(Add(s.sb.center(), shift), s.sb.radius());
    const Hypersphere sq2(Add(s.sq.center(), shift), s.sq.radius());
    EXPECT_EQ(c.Dominates(sa2, sb2, sq2), base) << test::SceneToString(s);
  }
}

TEST(HyperbolaInvarianceTest, AxisPermutationAndFlip) {
  Rng rng(4301);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 4, 10.0);
    if (test::IsBorderline(s)) continue;
    const bool base = c.Dominates(s.sa, s.sb, s.sq);
    auto transform = [](const Hypersphere& h) {
      const Point& p = h.center();
      return Hypersphere({-p[2], p[0], -p[3], p[1]}, h.radius());
    };
    EXPECT_EQ(c.Dominates(transform(s.sa), transform(s.sb), transform(s.sq)),
              base)
        << test::SceneToString(s);
  }
}

TEST(HyperbolaInvarianceTest, UniformScaling) {
  Rng rng(4302);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 10.0);
    if (test::IsBorderline(s)) continue;
    const double k = rng.Uniform(0.01, 100.0);
    const bool base = c.Dominates(s.sa, s.sb, s.sq);
    auto scale = [&](const Hypersphere& h) {
      return Hypersphere(Scale(h.center(), k), h.radius() * k);
    };
    EXPECT_EQ(c.Dominates(scale(s.sa), scale(s.sb), scale(s.sq)), base)
        << test::SceneToString(s) << " k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Semantic properties of dominance itself, decided through Hyperbola.
// ---------------------------------------------------------------------------
TEST(HyperbolaSemanticsTest, IrreflexiveAndAsymmetric) {
  Rng rng(4400);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 10.0);
    EXPECT_FALSE(c.Dominates(s.sa, s.sa, s.sq));  // irreflexive
    if (c.Dominates(s.sa, s.sb, s.sq)) {
      EXPECT_FALSE(c.Dominates(s.sb, s.sa, s.sq));  // asymmetric
    }
  }
}

TEST(HyperbolaSemanticsTest, MonotoneUnderShrinking) {
  // Shrinking any of the three spheres preserves dominance.
  Rng rng(4401);
  HyperbolaCriterion c;
  int dominated = 0;
  for (int iter = 0; iter < 6000 && dominated < 600; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 12.0);
    if (!c.Dominates(s.sa, s.sb, s.sq)) continue;
    ++dominated;
    const double f = rng.NextDouble();
    EXPECT_TRUE(c.Dominates(Hypersphere(s.sa.center(), s.sa.radius() * f),
                            s.sb, s.sq));
    EXPECT_TRUE(c.Dominates(s.sa,
                            Hypersphere(s.sb.center(), s.sb.radius() * f),
                            s.sq));
    EXPECT_TRUE(c.Dominates(s.sa, s.sb,
                            Hypersphere(s.sq.center(), s.sq.radius() * f)));
  }
  EXPECT_GT(dominated, 50);
}

TEST(HyperbolaSemanticsTest, SampledWitnessesRespectDecision) {
  // When Hyperbola says true, every sampled (a, b, q) triple obeys
  // Dist(a, q) < Dist(b, q); when it says false with margin, a violating
  // triple exists (found via the oracle's minimizer side).
  Rng rng(4402);
  HyperbolaCriterion c;
  int positives = 0;
  for (int iter = 0; iter < 3000 && positives < 300; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 2, 10.0);
    if (!c.Dominates(s.sa, s.sb, s.sq)) continue;
    ++positives;
    for (int k = 0; k < 20; ++k) {
      auto sample = [&](const Hypersphere& h) {
        const double theta = rng.Uniform(0.0, 2.0 * M_PI);
        const double rad = h.radius() * std::sqrt(rng.NextDouble());
        return Point{h.center()[0] + rad * std::cos(theta),
                     h.center()[1] + rad * std::sin(theta)};
      };
      const Point a = sample(s.sa);
      const Point b = sample(s.sb);
      const Point q = sample(s.sq);
      EXPECT_LT(Dist(a, q), Dist(b, q)) << test::SceneToString(s);
    }
  }
  EXPECT_GT(positives, 30);
}

// Adversarial geometry: queries far along the asymptotes, huge spheres,
// tiny margins handled without crashes and consistently with the oracle.
TEST(HyperbolaStressTest, ExtremeAspectRatios) {
  Rng rng(4500);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 3000; ++iter) {
    // Distances across 6 orders of magnitude.
    const double scale = std::pow(10.0, rng.Uniform(-3.0, 3.0));
    Point ca = {0.0, 0.0};
    Point cb = {scale * rng.Uniform(0.5, 2.0), scale * rng.Uniform(-1.0, 1.0)};
    Point cq = {scale * rng.Uniform(-5.0, 5.0), scale * rng.Uniform(-5.0, 5.0)};
    const test::Scene s{
        Hypersphere(ca, scale * rng.Uniform(0.0, 0.2)),
        Hypersphere(cb, scale * rng.Uniform(0.0, 0.2)),
        Hypersphere(cq, scale * rng.Uniform(0.0, 2.0))};
    if (test::IsBorderline(s, 1e-6 * scale)) continue;
    const bool expected = test::OracleDominates(s);
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), expected)
        << test::SceneToString(s);
  }
}

TEST(HyperbolaStressTest, NearOverlapMargins) {
  // Sa and Sb separated by a sliver; decisions must stay oracle-consistent.
  Rng rng(4501);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 2000; ++iter) {
    const double gap = std::pow(10.0, rng.Uniform(-4.0, 0.0));
    const Hypersphere sa({0.0, 0.0}, 1.0);
    const Hypersphere sb({2.0 + gap + 1.0, 0.0}, 1.0);
    const Hypersphere sq({rng.Uniform(-6.0, 0.0), rng.Uniform(-2.0, 2.0)},
                         rng.Uniform(0.0, 1.0));
    const test::Scene s{sa, sb, sq};
    if (test::IsBorderline(s, 1e-8)) continue;
    EXPECT_EQ(c.Dominates(sa, sb, sq), test::OracleDominates(s))
        << test::SceneToString(s) << " gap=" << gap;
  }
}

}  // namespace
}  // namespace hyperdom
