// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/workload.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace hyperdom {
namespace {

std::vector<Hypersphere> SmallData(size_t n = 100) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 3;
  spec.seed = 4242;
  return GenerateSynthetic(spec);
}

TEST(WorkloadTest, ProducesRequestedCount) {
  const auto data = SmallData();
  const auto workload = MakeDominanceWorkload(data, 500, 1);
  EXPECT_EQ(workload.size(), 500u);
}

TEST(WorkloadTest, TripleMembersAreDistinctObjects) {
  const auto data = SmallData(3);  // forces heavy reuse across queries
  const auto workload = MakeDominanceWorkload(data, 200, 2);
  for (const auto& q : workload) {
    EXPECT_FALSE(q.sa == q.sb);
    EXPECT_FALSE(q.sa == q.sq);
    EXPECT_FALSE(q.sb == q.sq);
  }
}

TEST(WorkloadTest, MembersComeFromTheDataset) {
  const auto data = SmallData();
  const auto workload = MakeDominanceWorkload(data, 100, 3);
  for (const auto& q : workload) {
    auto in_data = [&](const Hypersphere& s) {
      for (const auto& d : data) {
        if (d == s) return true;
      }
      return false;
    };
    EXPECT_TRUE(in_data(q.sa));
    EXPECT_TRUE(in_data(q.sb));
    EXPECT_TRUE(in_data(q.sq));
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  const auto data = SmallData();
  const auto a = MakeDominanceWorkload(data, 100, 7);
  const auto b = MakeDominanceWorkload(data, 100, 7);
  const auto c = MakeDominanceWorkload(data, 100, 8);
  int diff_ac = 0;
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(a[i].sa == b[i].sa && a[i].sb == b[i].sb &&
                a[i].sq == b[i].sq);
    if (!(a[i].sa == c[i].sa)) ++diff_ac;
  }
  EXPECT_GT(diff_ac, 50);
}

TEST(KnnQueriesTest, DrawnFromDataset) {
  const auto data = SmallData();
  const auto queries = MakeKnnQueries(data, 50, 9);
  EXPECT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    bool found = false;
    for (const auto& d : data) {
      if (d == q) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(KnnQueriesTest, Deterministic) {
  const auto data = SmallData();
  const auto a = MakeKnnQueries(data, 20, 11);
  const auto b = MakeKnnQueries(data, 20, 11);
  for (size_t i = 0; i < 20; ++i) EXPECT_TRUE(a[i] == b[i]);
}

}  // namespace
}  // namespace hyperdom
