// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/dominating.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(TopKDominatingTest, ChainSceneScoresByPosition) {
  // Objects on a line in front of the query: each dominates everything
  // farther out, so scores are n-1, n-2, ..., 0.
  std::vector<Hypersphere> data;
  for (int i = 0; i < 5; ++i) {
    data.emplace_back(Point{5.0 + 10.0 * i, 0.0}, 0.1);
  }
  const Hypersphere sq({0.0, 0.0}, 0.5);
  HyperbolaCriterion c;
  const auto top = TopKDominating(data, sq, 5, c);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top[i].id, i);
    EXPECT_EQ(top[i].score, 4 - i);
  }
}

TEST(TopKDominatingTest, TruncatesToK) {
  std::vector<Hypersphere> data;
  for (int i = 0; i < 10; ++i) {
    data.emplace_back(Point{5.0 + 5.0 * i, 0.0}, 0.1);
  }
  HyperbolaCriterion c;
  const auto top = TopKDominating(data, Hypersphere({0.0, 0.0}, 0.5), 3, c);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0u);
}

TEST(TopKDominatingTest, TiesBrokenByLowerId) {
  // Two symmetric objects with identical scores.
  const std::vector<Hypersphere> data = {
      Hypersphere({5.0, 5.0}, 0.1), Hypersphere({5.0, -5.0}, 0.1),
      Hypersphere({50.0, 0.0}, 0.1)};
  HyperbolaCriterion c;
  const auto top = TopKDominating(data, Hypersphere({0.0, 0.0}, 0.5), 2, c);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0u);  // score 1 each; id 0 first
  EXPECT_EQ(top[1].id, 1u);
  EXPECT_EQ(top[0].score, top[1].score);
}

TEST(TopKDominatingTest, ScoresMatchPairwiseDominance) {
  SyntheticSpec spec;
  spec.n = 120;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 895;
  const auto data = GenerateSynthetic(spec);
  const Hypersphere sq = data[7];
  HyperbolaCriterion c;
  const auto top = TopKDominating(data, sq, data.size(), c);
  ASSERT_EQ(top.size(), data.size());
  // Recompute scores without the MaxDist short-circuit.
  for (const auto& entry : top) {
    uint64_t score = 0;
    for (size_t j = 0; j < data.size(); ++j) {
      if (j == entry.id) continue;
      if (c.Dominates(data[entry.id], data[j], sq)) ++score;
    }
    EXPECT_EQ(entry.score, score) << "id " << entry.id;
  }
  // And the list is sorted by descending score.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(TopKDominatingTest, OverlappingClusterScoresZero) {
  // All objects mutually overlapping: nobody dominates anybody (Lemma 1).
  std::vector<Hypersphere> data;
  for (int i = 0; i < 8; ++i) {
    data.emplace_back(Point{static_cast<double>(i), 0.0}, 5.0);
  }
  HyperbolaCriterion c;
  const auto top = TopKDominating(data, Hypersphere({0.0, 20.0}, 1.0), 8, c);
  for (const auto& e : top) EXPECT_EQ(e.score, 0u);
}

}  // namespace
}  // namespace hyperdom
