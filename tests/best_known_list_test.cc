// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/best_known_list.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "query/knn.h"

namespace hyperdom {
namespace {

class BestKnownListTest : public ::testing::Test {
 protected:
  // Access() retains views into the store, so the store is pre-reserved:
  // no Add below ever reallocates the arena while a list holds views.
  BestKnownListTest() { store_.Reserve(64); }

  EntryView Entry(double x, double r, uint64_t id) {
    const uint32_t slot = store_.Add(Hypersphere({x, 0.0}, r));
    return store_.Resolve(StoredEntry{slot, id});
  }

  SphereStore store_{2};
  HyperbolaCriterion criterion_;
  Hypersphere sq_{{0.0, 0.0}, 0.5};
  KnnStats stats_;
};

TEST_F(BestKnownListTest, DistKInfiniteUntilKEntries) {
  BestKnownList list(&criterion_, &sq_, 2, KnnPruningMode::kDeferred,
                     &stats_);
  EXPECT_TRUE(std::isinf(list.DistK()));
  list.Access(Entry(10.0, 1.0, 0));
  EXPECT_TRUE(std::isinf(list.DistK()));
  list.Access(Entry(20.0, 1.0, 1));
  // distk = MaxDist of the 2nd best = 20 + 1 + 0.5.
  EXPECT_DOUBLE_EQ(list.DistK(), 21.5);
}

TEST_F(BestKnownListTest, DistKTightensMonotonically) {
  BestKnownList list(&criterion_, &sq_, 1, KnnPruningMode::kDeferred,
                     &stats_);
  double prev = 1e300;
  for (double x : {50.0, 40.0, 30.0, 20.0, 10.0, 45.0}) {
    list.Access(Entry(x, 0.5, static_cast<uint64_t>(x)));
    EXPECT_LE(list.DistK(), prev);
    prev = list.DistK();
  }
  EXPECT_DOUBLE_EQ(prev, 10.0 + 0.5 + 0.5);
}

TEST_F(BestKnownListTest, Case3DropsFarEntries) {
  BestKnownList list(&criterion_, &sq_, 1, KnnPruningMode::kDeferred,
                     &stats_);
  list.Access(Entry(5.0, 0.5, 0));  // distk = 6
  list.Access(Entry(100.0, 0.5, 1));  // distmin = 99 > 6 -> case 3
  EXPECT_EQ(stats_.pruned_case3, 1u);
  const auto answers = list.TakeAnswers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].id, 0u);
}

TEST_F(BestKnownListTest, Case2DominatedEntryDropped) {
  BestKnownList list(&criterion_, &sq_, 1, KnnPruningMode::kDeferred,
                     &stats_);
  list.Access(Entry(5.0, 0.5, 0));  // distk = 6
  // Entry at 6 with r = 0.1: distmin = 5.4 <= distk = 6 < distmax = 6.6,
  // i.e. case 2, and the Sk at 5 dominates it (the worst query point 0.5
  // toward it still leaves a margin of 1 > ra + rb = 0.6).
  list.Access(Entry(6.0, 0.1, 1));
  EXPECT_EQ(stats_.pruned_case2, 1u);
  const auto answers = list.TakeAnswers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].id, 0u);
}

TEST_F(BestKnownListTest, DeferredModeIsAccessOrderIndependent) {
  // The deferred final-Sk filter is exactly what makes the surviving set
  // independent of the order entries were accessed in — each order sees
  // different interim Sks, but all must converge to the Definition-2 set
  // (the linear scan's answer).
  Rng rng(4711);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Hypersphere> data;
    for (int i = 0; i < 60; ++i) {
      data.emplace_back(Point{rng.Gaussian(0.0, 20.0), rng.Gaussian(0.0, 20.0)},
                        rng.Uniform(0.0, 4.0));
    }
    const size_t k = 1 + rng.UniformU64(4);
    const auto expected = KnnLinearScan(data, sq_, k, criterion_);
    std::set<uint64_t> expected_ids;
    for (const auto& e : expected.answers) expected_ids.insert(e.id);

    SphereStore store(2);
    store.Reserve(data.size());
    std::vector<uint32_t> slots;
    for (const auto& s : data) slots.push_back(store.Add(s));

    for (int perm = 0; perm < 3; ++perm) {
      std::vector<size_t> order(data.size());
      std::iota(order.begin(), order.end(), 0);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.UniformU64(i)]);
      }
      KnnStats stats;
      BestKnownList list(&criterion_, &sq_, k, KnnPruningMode::kDeferred,
                         &stats);
      for (size_t idx : order) {
        list.Access(store.Resolve(
            StoredEntry{slots[idx], static_cast<uint64_t>(idx)}));
      }
      std::set<uint64_t> got;
      for (const auto& e : list.TakeAnswers()) got.insert(e.id);
      EXPECT_EQ(got, expected_ids) << "trial " << trial << " perm " << perm;
    }
  }
}

TEST_F(BestKnownListTest, EagerModeNeverRevives) {
  KnnStats stats_eager;
  BestKnownList eager(&criterion_, &sq_, 1, KnnPruningMode::kEager,
                      &stats_eager);
  eager.Access(Entry(5.0, 0.1, 0));
  eager.Access(Entry(6.0, 0.1, 1));  // dominated -> discarded permanently
  const auto answers = eager.TakeAnswers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].id, 0u);
}

TEST_F(BestKnownListTest, AnswersSortedByMaxDist) {
  BestKnownList list(&criterion_, &sq_, 3, KnnPruningMode::kDeferred,
                     &stats_);
  for (double x : {30.0, 10.0, 50.0, 20.0, 40.0}) {
    list.Access(Entry(x, 1.0, static_cast<uint64_t>(x)));
  }
  const auto answers = list.TakeAnswers();
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_LE(MaxDist(answers[i - 1].sphere, sq_),
              MaxDist(answers[i].sphere, sq_) + 1e-12);
  }
}

TEST_F(BestKnownListTest, TopKNeverEvicted) {
  BestKnownList list(&criterion_, &sq_, 2, KnnPruningMode::kDeferred,
                     &stats_);
  // Insert in worst-first order so every later insert triggers case 1.
  for (double x : {60.0, 50.0, 40.0, 30.0, 20.0, 10.0}) {
    list.Access(Entry(x, 0.5, static_cast<uint64_t>(x)));
  }
  const auto answers = list.TakeAnswers();
  // The final two nearest (10, 20) must be present.
  bool has10 = false, has20 = false;
  for (const auto& e : answers) {
    if (e.id == 10) has10 = true;
    if (e.id == 20) has20 = true;
  }
  EXPECT_TRUE(has10);
  EXPECT_TRUE(has20);
}

}  // namespace
}  // namespace hyperdom
