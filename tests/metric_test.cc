// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/metric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dominance/numeric_oracle.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(WeightedMetricTest, DistanceDefinition) {
  const WeightedEuclideanDominance m({4.0, 1.0});
  // sqrt(4*(3-0)^2 + 1*(4-0)^2) = sqrt(36+16)
  EXPECT_DOUBLE_EQ(m.Distance({0.0, 0.0}, {3.0, 4.0}), std::sqrt(52.0));
  EXPECT_DOUBLE_EQ(m.Distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(WeightedMetricTest, UnitWeightsMatchEuclidean) {
  const WeightedEuclideanDominance m({1.0, 1.0, 1.0});
  Rng rng(7000);
  HyperbolaCriterion euclidean;
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 10.0);
    EXPECT_EQ(m.Dominates(s.sa, s.sb, s.sq),
              euclidean.Dominates(s.sa, s.sb, s.sq));
  }
}

TEST(WeightedMetricTest, MatchesOracleOnScaledSpace) {
  // Ground truth: transform the scene by sqrt(w) per axis and ask the
  // Euclidean oracle.
  Rng rng(7001);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t dim = 2 + rng.UniformU64(5);
    std::vector<double> weights(dim);
    for (auto& w : weights) w = rng.Uniform(0.1, 9.0);
    const WeightedEuclideanDominance m(weights);
    const test::Scene s = test::RandomScene(&rng, dim, 10.0);

    auto scale_sphere = [&](const Hypersphere& h) {
      Point c(dim);
      for (size_t i = 0; i < dim; ++i) {
        c[i] = std::sqrt(weights[i]) * h.center()[i];
      }
      return Hypersphere(std::move(c), h.radius());
    };
    const test::Scene scaled{scale_sphere(s.sa), scale_sphere(s.sb),
                             scale_sphere(s.sq)};
    if (test::IsBorderline(scaled)) continue;
    EXPECT_EQ(m.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(scaled))
        << test::SceneToString(s);
  }
}

TEST(WeightedMetricTest, WeightsChangeDecisions) {
  // Sa is closer laterally, Sb is closer vertically; the vertical weight
  // decides who dominates.
  const Hypersphere sa({5.0, 0.0}, 0.1);
  const Hypersphere sb({0.0, 6.0}, 0.1);
  const Hypersphere sq({0.0, 0.0}, 0.1);
  const WeightedEuclideanDominance lateral({1.0, 100.0});
  const WeightedEuclideanDominance vertical({100.0, 1.0});
  // Heavy vertical weight pushes Sb far away -> Sa dominates.
  EXPECT_TRUE(lateral.Dominates(sa, sb, sq));
  // Heavy lateral weight pushes Sa far away -> Sa cannot dominate.
  EXPECT_FALSE(vertical.Dominates(sa, sb, sq));
  EXPECT_TRUE(vertical.Dominates(sb, sa, sq));
}

TEST(WeightedMetricTest, ExposesWeights) {
  const WeightedEuclideanDominance m({2.0, 3.0});
  ASSERT_EQ(m.weights().size(), 2u);
  EXPECT_DOUBLE_EQ(m.weights()[0], 2.0);
  EXPECT_DOUBLE_EQ(m.weights()[1], 3.0);
}

}  // namespace
}  // namespace hyperdom
