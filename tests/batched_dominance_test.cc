// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Batched-vs-serial equivalence above the span kernels: the
// DecideVerdictBatch contract for every criterion the factory produces,
// the certified engine's verdict+tier stability at batch-relevant
// (high/odd) dimensions, BestKnownList::AccessBatch against per-entry
// Access (answers AND stats), and the overlay block enumeration. Batching
// is a scheduling change — any divergence observed here is a bug in a
// batch path, not an acceptable rounding difference.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "dominance/certified.h"
#include "dominance/criterion.h"
#include "index/mutable_ss_tree.h"
#include "query/best_known_list.h"
#include "query/knn.h"
#include "storage/sphere_store.h"
#include "test_util.h"

namespace hyperdom {
namespace {

const CriterionKind kAllKinds[] = {
    CriterionKind::kMinMax,         CriterionKind::kMbr,
    CriterionKind::kGp,             CriterionKind::kTrigonometric,
    CriterionKind::kHyperbola,      CriterionKind::kNumericOracle,
    CriterionKind::kCertified,
};

class BatchedDominanceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchedDominanceTest, DecideVerdictBatchMatchesSerialAllCriteria) {
  const size_t dim = GetParam();
  Rng rng(5100 + dim);
  for (CriterionKind kind : kAllKinds) {
    // The oracle runs a 2-plane minimizer per pair; keep its share small.
    const size_t count = kind == CriterionKind::kNumericOracle ? 24 : 200;
    const auto criterion = MakeCriterion(kind);
    const Hypersphere sa = test::RandomSphere(&rng, dim, 3.0);
    const Hypersphere sq = test::RandomSphere(&rng, dim, 1.0);
    SphereStore store(dim);
    store.Reserve(count);
    std::vector<SphereView> sbs;
    for (size_t i = 0; i < count; ++i) {
      // A mix of scales so overlap, MDD-reject, and full-pipeline paths
      // all appear in one block.
      store.Add(test::RandomSphere(&rng, dim, (i % 3 == 0) ? 40.0 : 3.0));
    }
    for (uint32_t i = 0; i < count; ++i) sbs.push_back(store.view(i));

    std::vector<Verdict> batched(count);
    criterion->DecideVerdictBatch(sa.view(), sbs.data(), count, sq.view(),
                                  batched.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(batched[i], criterion->DecideVerdict(sa.view(), sbs[i],
                                                     sq.view()))
          << criterion->name() << " dim=" << dim << " candidate " << i;
    }
  }
}

TEST_P(BatchedDominanceTest, CertifiedEngineStableAtBatchDims) {
  // The aos_soa_equivalence suite pins the certified engine at dims
  // {2, 3, 10}; this repeats the verdict+tier check at the high and odd
  // dims the batched leaf scans care about.
  const size_t dim = GetParam();
  Rng rng(5200 + dim);
  CertifiedDominance engine;
  SphereStore store(dim);
  const size_t n = 200;
  store.Reserve(3 * n);
  std::vector<Hypersphere> spheres;
  for (size_t i = 0; i < 3 * n; ++i) {
    spheres.push_back(test::RandomSphere(&rng, dim, (i % 5 == 0) ? 0.1 : 4.0));
    store.Add(spheres.back());
  }
  for (size_t t = 0; t < n; ++t) {
    const uint32_t base = static_cast<uint32_t>(3 * t);
    CertifiedTier tier_aos = CertifiedTier::kUnresolved;
    CertifiedTier tier_soa = CertifiedTier::kUnresolved;
    const Verdict aos = engine.Decide(spheres[3 * t], spheres[3 * t + 1],
                                      spheres[3 * t + 2], &tier_aos);
    const Verdict soa =
        engine.Decide(store.view(base), store.view(base + 1),
                      store.view(base + 2), &tier_soa);
    EXPECT_EQ(aos, soa) << "triple " << t << " dim " << dim;
    EXPECT_EQ(tier_aos, tier_soa) << "triple " << t << " dim " << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BatchedDominanceTest,
                         ::testing::Values(2, 3, 8, 10, 64, 67));

// ---------------------------------------------------------------------------
// BestKnownList: AccessBatch vs per-entry Access.

struct ListOutcome {
  std::vector<DataEntry> answers;
  KnnStats stats;
  double distk = 0.0;
};

ListOutcome RunList(const DominanceCriterion* criterion,
                    const Hypersphere& sq, size_t k, KnnPruningMode mode,
                    const std::vector<EntryView>& entries, size_t batch,
                    bool within, double pending_bound) {
  ListOutcome out;
  BestKnownList list(criterion, &sq, k, mode, &out.stats);
  if (batch == 0) {
    for (const EntryView& e : entries) list.Access(e);
  } else {
    for (size_t i = 0; i < entries.size(); i += batch) {
      const size_t n = std::min(batch, entries.size() - i);
      list.AccessBatch(entries.data() + i, n);
    }
  }
  out.distk = list.DistK();
  out.answers =
      within ? list.TakeAnswersWithin(pending_bound) : list.TakeAnswers();
  return out;
}

void ExpectSameOutcome(const ListOutcome& a, const ListOutcome& b,
                       const std::string& label) {
  EXPECT_EQ(a.distk, b.distk) << label;
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].id, b.answers[i].id) << label << " answer " << i;
    EXPECT_EQ(a.answers[i].sphere, b.answers[i].sphere)
        << label << " answer " << i;
  }
  EXPECT_EQ(a.stats.entries_accessed, b.stats.entries_accessed) << label;
  EXPECT_EQ(a.stats.dominance_checks, b.stats.dominance_checks) << label;
  EXPECT_EQ(a.stats.pruned_case2, b.stats.pruned_case2) << label;
  EXPECT_EQ(a.stats.pruned_case3, b.stats.pruned_case3) << label;
  EXPECT_EQ(a.stats.removed_case1, b.stats.removed_case1) << label;
  EXPECT_EQ(a.stats.uncertain_verdicts, b.stats.uncertain_verdicts) << label;
}

class BestKnownListBatchTest
    : public ::testing::TestWithParam<std::tuple<size_t, KnnPruningMode>> {};

TEST_P(BestKnownListBatchTest, AccessBatchMatchesSerialAccess) {
  const size_t dim = std::get<0>(GetParam());
  const KnnPruningMode mode = std::get<1>(GetParam());
  Rng rng(5300 + dim);
  const size_t n = 600;
  const size_t k = 10;
  SphereStore store(dim);
  store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store.Add(test::RandomSphere(&rng, dim, 2.0));
  }
  std::vector<EntryView> entries;
  for (uint32_t i = 0; i < n; ++i) {
    entries.push_back(EntryView{store.view(i), uint64_t{1000} + i, i});
  }
  const Hypersphere sq = test::RandomSphere(&rng, dim, 1.0);

  for (CriterionKind kind :
       {CriterionKind::kHyperbola, CriterionKind::kCertified}) {
    const auto criterion = MakeCriterion(kind);
    const ListOutcome serial =
        RunList(criterion.get(), sq, k, mode, entries, 0, false, 0.0);
    // Leaf-sized and ragged batch shapes.
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, n}) {
      const ListOutcome batched =
          RunList(criterion.get(), sq, k, mode, entries, batch, false, 0.0);
      ExpectSameOutcome(serial, batched,
                        std::string(criterion->name()) + " batch=" +
                            std::to_string(batch));
    }
    // Best-effort path: the batched TakeAnswersWithin filter.
    const double bound = serial.distk * 0.9;
    const ListOutcome serial_within =
        RunList(criterion.get(), sq, k, mode, entries, 0, true, bound);
    const ListOutcome batched_within =
        RunList(criterion.get(), sq, k, mode, entries, 64, true, bound);
    ExpectSameOutcome(serial_within, batched_within,
                      std::string(criterion->name()) + " within");
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndModes, BestKnownListBatchTest,
    ::testing::Combine(::testing::Values(2, 10, 67),
                       ::testing::Values(KnnPruningMode::kDeferred,
                                         KnnPruningMode::kEager)));

// ---------------------------------------------------------------------------
// Overlay: block enumeration and the batched mutable search path.

TEST(OverlayBatchTest, ForEachExtraBlockMatchesForEachExtra) {
  const size_t dim = 7;  // odd: delta-slab rows on unaligned boundaries
  Rng rng(5400);
  MutableSsTree tree(dim);
  std::vector<Hypersphere> base;
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 50; ++i) {
    base.push_back(test::RandomSphere(&rng, dim, 2.0));
    ids.push_back(i);
  }
  ASSERT_TRUE(tree.Build(base, ids).ok());
  // Cross a slab boundary (slab 0 holds 256 rows) and tombstone a few
  // delta rows so visibility filtering is exercised.
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(test::RandomSphere(&rng, dim, 2.0), 100 + i).ok());
  }
  for (uint64_t i = 0; i < 300; i += 9) {
    ASSERT_TRUE(tree.Remove(100 + i).ok());
  }

  const MutableSsTree::ReadView view = tree.Pin();
  std::vector<EntryView> serial;
  view.ForEachExtra([&](const EntryView& e) { serial.push_back(e); });
  std::vector<EntryView> blocked;
  size_t calls = 0;
  view.ForEachExtraBlock([&](const EntryView* rows, size_t count) {
    ++calls;
    blocked.insert(blocked.end(), rows, rows + count);
  });

  EXPECT_GE(calls, size_t{1});
  ASSERT_EQ(serial.size(), blocked.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].id, blocked[i].id) << "row " << i;
    EXPECT_EQ(serial[i].slot, blocked[i].slot) << "row " << i;
    EXPECT_EQ(serial[i].sphere.center, blocked[i].sphere.center)
        << "row " << i;  // same pointer: same slab storage
    EXPECT_EQ(serial[i].sphere.radius, blocked[i].sphere.radius)
        << "row " << i;
  }
}

TEST(OverlayBatchTest, BatchedMutableSearchMatchesLinearScan) {
  const size_t dim = 10;
  Rng rng(5500);
  MutableSsTree tree(dim);
  std::vector<Hypersphere> base;
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 200; ++i) {
    base.push_back(test::RandomSphere(&rng, dim, 2.0));
    ids.push_back(i);
  }
  ASSERT_TRUE(tree.Build(base, ids).ok());
  for (uint64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(tree.Insert(test::RandomSphere(&rng, dim, 2.0), 500 + i).ok());
  }
  for (uint64_t i = 0; i < 200; i += 5) {
    ASSERT_TRUE(tree.Remove(i).ok());
  }

  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);
  KnnOptions options;
  options.k = 12;
  const KnnSearcher searcher(criterion.get(), options);

  const MutableSsTree::ReadView view = tree.Pin();
  std::vector<Hypersphere> live;
  std::vector<uint64_t> live_ids;
  view.CollectLive(&live, &live_ids);

  for (uint64_t qseed = 0; qseed < 8; ++qseed) {
    Rng qrng(5600 + qseed);
    const Hypersphere sq = test::RandomSphere(&qrng, dim, 1.0);
    const KnnResult tree_result = searcher.Search(view.tree(), sq, &view);
    const KnnResult scan_result =
        KnnLinearScan(live, sq, options.k, *criterion);
    ASSERT_EQ(tree_result.answers.size(), scan_result.answers.size())
        << "query " << qseed;
    for (size_t i = 0; i < tree_result.answers.size(); ++i) {
      // The scan's ids index `live`; map them back to external ids.
      EXPECT_EQ(tree_result.answers[i].id,
                live_ids[scan_result.answers[i].id])
          << "query " << qseed << " answer " << i;
    }
  }
}

}  // namespace
}  // namespace hyperdom
