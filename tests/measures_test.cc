// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/measures.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "dominance/minmax.h"
#include "dominance/trigonometric.h"

namespace hyperdom {
namespace {

TEST(ConfusionCountsTest, PrecisionAndRecall) {
  ConfusionCounts c;
  c.tp = 30;
  c.fp = 10;
  c.fn = 20;
  c.tn = 40;
  EXPECT_DOUBLE_EQ(c.PrecisionPercent(), 75.0);
  EXPECT_DOUBLE_EQ(c.RecallPercent(), 60.0);
}

TEST(ConfusionCountsTest, DegenerateDenominators) {
  ConfusionCounts c;  // all zeros
  EXPECT_DOUBLE_EQ(c.PrecisionPercent(), 100.0);
  EXPECT_DOUBLE_EQ(c.RecallPercent(), 100.0);
}

class MeasuresFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.n = 2000;
    spec.dim = 4;
    spec.radius_mean = 20.0;
    spec.seed = 5555;
    data_ = GenerateSynthetic(spec);
    workload_ = MakeDominanceWorkload(data_, 2000, 5556);
    truth_ = RunCriterion(hyperbola_, workload_);
  }

  HyperbolaCriterion hyperbola_;
  std::vector<Hypersphere> data_;
  std::vector<DominanceQuery> workload_;
  std::vector<bool> truth_;
};

TEST_F(MeasuresFixture, HyperbolaScoresPerfectlyAgainstItself) {
  const ConfusionCounts c = EvaluateCriterion(hyperbola_, workload_, truth_);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_EQ(c.fn, 0u);
  EXPECT_DOUBLE_EQ(c.PrecisionPercent(), 100.0);
  EXPECT_DOUBLE_EQ(c.RecallPercent(), 100.0);
  EXPECT_GT(c.tp, 0u);
}

TEST_F(MeasuresFixture, MinMaxIsPreciseButIncomplete) {
  MinMaxCriterion minmax;
  const ConfusionCounts c = EvaluateCriterion(minmax, workload_, truth_);
  EXPECT_EQ(c.fp, 0u);  // correct
  EXPECT_GT(c.fn, 0u);  // not sound
  EXPECT_DOUBLE_EQ(c.PrecisionPercent(), 100.0);
  EXPECT_LT(c.RecallPercent(), 100.0);
}

TEST_F(MeasuresFixture, TrigonometricIsCompleteButImprecise) {
  TrigonometricCriterion trig;
  const ConfusionCounts c = EvaluateCriterion(trig, workload_, truth_);
  EXPECT_EQ(c.fn, 0u);  // sound on paper-scale workloads
  EXPECT_GT(c.fp, 0u);  // not correct
  EXPECT_DOUBLE_EQ(c.RecallPercent(), 100.0);
  EXPECT_LT(c.PrecisionPercent(), 100.0);
}

TEST_F(MeasuresFixture, CountsSumToWorkloadSize) {
  MinMaxCriterion minmax;
  const ConfusionCounts c = EvaluateCriterion(minmax, workload_, truth_);
  EXPECT_EQ(c.tp + c.fp + c.tn + c.fn, workload_.size());
}

TEST_F(MeasuresFixture, RunCriterionMatchesDirectCalls) {
  MinMaxCriterion minmax;
  const auto bits = RunCriterion(minmax, workload_);
  ASSERT_EQ(bits.size(), workload_.size());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(bits[i], minmax.Dominates(workload_[i].sa, workload_[i].sb,
                                        workload_[i].sq));
  }
}

TEST_F(MeasuresFixture, TimingIsPositiveAndFinite) {
  MinMaxCriterion minmax;
  const std::vector<DominanceQuery> small(workload_.begin(),
                                          workload_.begin() + 200);
  const double nanos = TimeCriterionNanos(minmax, small, 2);
  EXPECT_GT(nanos, 0.0);
  EXPECT_LT(nanos, 1e7);  // under 10ms per op is a very loose sanity bound
}

}  // namespace
}  // namespace hyperdom
