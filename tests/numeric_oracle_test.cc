// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/numeric_oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(NumericOracleTest, Metadata) {
  NumericOracleCriterion c;
  EXPECT_EQ(c.name(), "NumericOracle");
  EXPECT_TRUE(c.is_correct());
  EXPECT_TRUE(c.is_sound());
}

TEST(MinDistanceDifferenceTest, PointQueryClosedForm) {
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({10.0, 0.0}, 1.0);
  const Hypersphere sq({2.0, 0.0}, 0.0);
  // f(cq) = Dist(cq, cb) - Dist(cq, ca) = 8 - 2 = 6.
  EXPECT_DOUBLE_EQ(MinDistanceDifference(sa, sb, sq), 6.0);
}

TEST(MinDistanceDifferenceTest, CoincidentCentersAreZero) {
  const Hypersphere sa({3.0, 3.0}, 1.0);
  const Hypersphere sb({3.0, 3.0}, 2.0);
  EXPECT_DOUBLE_EQ(
      MinDistanceDifference(sa, sb, Hypersphere({0.0, 0.0}, 5.0)), 0.0);
}

TEST(MinDistanceDifferenceTest, AxialBallClosedForm) {
  // Everything on the x-axis: ca = 0, cb = 10, query ball [1, 3].
  // f(t) = (10 - t) - t = 10 - 2t on [1, 3]; min at t = 3 -> 4.
  const Hypersphere sa({0.0, 0.0}, 0.0);
  const Hypersphere sb({10.0, 0.0}, 0.0);
  const Hypersphere sq({2.0, 0.0}, 1.0);
  EXPECT_NEAR(MinDistanceDifference(sa, sb, sq), 4.0, 1e-9);
}

TEST(MinDistanceDifferenceTest, BallBeyondFarFocusFindsMinusTwoAlpha) {
  // Query ball swallowing the ray beyond cb: min is exactly -2*alpha.
  const Hypersphere sa({0.0, 0.0}, 0.0);
  const Hypersphere sb({10.0, 0.0}, 0.0);
  const Hypersphere sq({12.0, 0.0}, 3.0);
  EXPECT_NEAR(MinDistanceDifference(sa, sb, sq), -10.0, 1e-9);
}

TEST(MinDistanceDifferenceTest, BoundedByTwoAlpha) {
  Rng rng(5100);
  for (int iter = 0; iter < 3000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 10.0);
    if (Dist(s.sa.center(), s.sb.center()) < 1e-9) continue;
    const double alpha = Dist(s.sa.center(), s.sb.center()) / 2.0;
    const double v = MinDistanceDifference(s.sa, s.sb, s.sq);
    EXPECT_GE(v, -2.0 * alpha - 1e-9);
    EXPECT_LE(v, 2.0 * alpha + 1e-9);
  }
}

TEST(MinDistanceDifferenceTest, MonotoneInQueryRadius) {
  // Growing the query ball can only lower the minimum.
  Rng rng(5101);
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 4, 10.0);
    const double v1 = MinDistanceDifference(s.sa, s.sb, s.sq);
    const Hypersphere bigger(s.sq.center(), s.sq.radius() + 5.0);
    const double v2 = MinDistanceDifference(s.sa, s.sb, bigger);
    EXPECT_LE(v2, v1 + 1e-7);
  }
}

TEST(MinDistanceDifferenceTest, SampledPointsNeverBeatTheMinimum) {
  Rng rng(5102);
  for (int iter = 0; iter < 300; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 2, 10.0);
    const double vmin = MinDistanceDifference(s.sa, s.sb, s.sq);
    for (int k = 0; k < 50; ++k) {
      const double theta = rng.Uniform(0.0, 2.0 * M_PI);
      const double rad = s.sq.radius() * std::sqrt(rng.NextDouble());
      const Point q = {s.sq.center()[0] + rad * std::cos(theta),
                       s.sq.center()[1] + rad * std::sin(theta)};
      const double f = Dist(q, s.sb.center()) - Dist(q, s.sa.center());
      EXPECT_GE(f, vmin - 1e-6) << test::SceneToString(s);
    }
  }
}

TEST(MinDistanceDifferenceTest, OneDimensionalSegments) {
  const Hypersphere sa({0.0}, 0.0);
  const Hypersphere sb({10.0}, 0.0);
  // Segment [1, 3]: f = 10 - 2t, min 4 at t = 3.
  EXPECT_NEAR(MinDistanceDifference(sa, sb, Hypersphere({2.0}, 1.0)), 4.0,
              1e-12);
  // Segment [8, 12] contains cb: min is f(10) = -10.
  EXPECT_NEAR(MinDistanceDifference(sa, sb, Hypersphere({10.0}, 2.0)), -10.0,
              1e-12);
  // Segment beyond cb: f constant -10.
  EXPECT_NEAR(MinDistanceDifference(sa, sb, Hypersphere({20.0}, 2.0)), -10.0,
              1e-12);
}

TEST(NumericOracleTest, OverlapShortCircuits) {
  NumericOracleCriterion c;
  EXPECT_FALSE(c.Dominates(Hypersphere({0.0, 0.0}, 2.0),
                           Hypersphere({3.0, 0.0}, 1.0),
                           Hypersphere({-9.0, 0.0}, 0.1)));
}

TEST(NumericOracleTest, AgreesWithDefinitionOnAxialScenes) {
  // Fully axial scenes admit hand-computed answers.
  NumericOracleCriterion c;
  // Query ball [−2, 0] on x-axis, Sa at 2 (r=0.5), Sb at 10 (r=0.5):
  // worst q = 0: f = 10 - 2 = 8 > 1 -> dominated.
  EXPECT_TRUE(c.Dominates(Hypersphere({2.0, 0.0}, 0.5),
                          Hypersphere({10.0, 0.0}, 0.5),
                          Hypersphere({-1.0, 0.0}, 1.0)));
  // Stretch the query to reach x = 5.6 where f(5.6) = 4.4 - 3.6 = 0.8 < 1.
  EXPECT_FALSE(c.Dominates(Hypersphere({2.0, 0.0}, 0.5),
                           Hypersphere({10.0, 0.0}, 0.5),
                           Hypersphere({-1.0, 0.0}, 6.6)));
}

}  // namespace
}  // namespace hyperdom
