// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/rknn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "dominance/minmax.h"
#include "index/ss_tree.h"
#include "test_util.h"

namespace hyperdom {
namespace {

// Reference implementation without the MaxDist early-exit ordering.
RknnResult RknnBruteForce(const std::vector<Hypersphere>& data,
                          const Hypersphere& sq, size_t k,
                          const DominanceCriterion& criterion) {
  RknnResult result;
  for (size_t cand = 0; cand < data.size(); ++cand) {
    size_t dominators = 0;
    for (size_t other = 0; other < data.size(); ++other) {
      if (other == cand) continue;
      if (criterion.Dominates(data[other], sq, data[cand])) ++dominators;
    }
    if (dominators < k) result.answers.push_back(cand);
  }
  return result;
}

TEST(RknnTest, HandComputableScene) {
  // Query at the far right; the middle object has its left neighbor
  // certainly closer than the query, so it drops out of RkNN(k=1).
  const std::vector<Hypersphere> data = {
      Hypersphere({0.0, 0.0}, 0.1),   // 0: leftmost
      Hypersphere({2.0, 0.0}, 0.1),   // 1: middle, object 0 is closer to it
      Hypersphere({50.0, 0.0}, 0.1),  // 2: near the query
  };
  const Hypersphere sq({40.0, 0.0}, 0.1);
  HyperbolaCriterion c;
  const RknnResult result = RknnFilter(data, sq, 1, c);
  // Object 1: object 0 at distance 2 dominates the query at distance 38 ->
  // pruned. Objects 0 and 2 keep the query as a possible 1NN... object 0:
  // object 1 dominates the query w.r.t. object 0 as well (2 vs 40) ->
  // pruned too. Object 2 survives (query at 10, others at ~48).
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0], 2u);
}

class RknnAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RknnAgreementTest, MatchesBruteForce) {
  const size_t k = GetParam();
  SyntheticSpec spec;
  spec.n = 150;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 880 + k;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion c;
  for (int qi = 0; qi < 5; ++qi) {
    const Hypersphere& sq = data[qi * 17];
    const RknnResult fast = RknnFilter(data, sq, k, c);
    const RknnResult slow = RknnBruteForce(data, sq, k, c);
    EXPECT_EQ(fast.answers, slow.answers) << "k=" << k << " qi=" << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, RknnAgreementTest, ::testing::Values(1, 3, 10));

TEST(RknnTest, LargerKKeepsMoreCandidates) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 3;
  spec.seed = 890;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion c;
  const Hypersphere& sq = data[0];
  size_t prev = 0;
  for (size_t k : {1u, 2u, 5u, 20u}) {
    const size_t count = RknnFilter(data, sq, k, c).answers.size();
    EXPECT_GE(count, prev);
    prev = count;
  }
}

TEST(RknnTest, CorrectCriterionGivesSupersetWithWeakerPruning) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 3;
  spec.seed = 891;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion exact;
  MinMaxCriterion weak;
  const Hypersphere& sq = data[3];
  const auto exact_answers = RknnFilter(data, sq, 1, exact).answers;
  const auto weak_answers = RknnFilter(data, sq, 1, weak).answers;
  // A weaker (still correct) criterion prunes less: superset.
  for (uint64_t id : exact_answers) {
    EXPECT_NE(std::find(weak_answers.begin(), weak_answers.end(), id),
              weak_answers.end());
  }
  EXPECT_GE(weak_answers.size(), exact_answers.size());
}

TEST(RknnTest, AllCandidatesWhenQueryIsFar) {
  // A query far from a tight cluster: every object's nearest other object
  // dominates the query, so nothing keeps it as a possible 1NN.
  std::vector<Hypersphere> data;
  Rng rng(892);
  for (int i = 0; i < 50; ++i) {
    data.emplace_back(Point{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)},
                      0.1);
  }
  const Hypersphere far_query({1000.0, 1000.0}, 1.0);
  HyperbolaCriterion c;
  EXPECT_TRUE(RknnFilter(data, far_query, 1, c).answers.empty());
}

class RknnIndexTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RknnIndexTest, IndexSearchMatchesLinearFilter) {
  const size_t k = GetParam();
  SyntheticSpec spec;
  spec.n = 400;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 896 + k;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  HyperbolaCriterion c;
  for (int qi = 0; qi < 6; ++qi) {
    const Hypersphere& sq = data[qi * 31];
    const RknnResult linear = RknnFilter(data, sq, k, c);
    const RknnIndexResult indexed = RknnSearch(tree, sq, k, c);
    EXPECT_EQ(indexed.answers, linear.answers) << "k=" << k << " qi=" << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, RknnIndexTest, ::testing::Values(1, 3, 10));

TEST(RknnIndexTest, EmptyTree) {
  SsTree tree(2);
  HyperbolaCriterion c;
  EXPECT_TRUE(RknnSearch(tree, Hypersphere({0.0, 0.0}, 1.0), 1, c)
                  .answers.empty());
}

TEST(RknnIndexTest, TraversalStaysLocalOnTightData) {
  // The index's win over the linear filter is avoiding the O(N) neighbor
  // sort per candidate: with tight spheres the best-first dominator scan
  // touches only a handful of nodes per candidate, and its dominance-check
  // count stays in the same ballpark as the (already short-circuiting)
  // linear filter.
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 3;
  spec.radius_mean = 1.0;
  spec.seed = 897;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  HyperbolaCriterion c;
  const Hypersphere& sq = data[11];
  const RknnResult linear = RknnFilter(data, sq, 1, c);
  const RknnIndexResult indexed = RknnSearch(tree, sq, 1, c);
  EXPECT_EQ(indexed.answers, linear.answers);
  EXPECT_LT(indexed.stats.nodes_visited, 20 * data.size());
  EXPECT_LT(indexed.stats.dominance_checks,
            2 * linear.stats.dominance_checks + 100);
}

TEST(RknnTest, StatsCountPrunes) {
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 2;
  spec.seed = 893;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion c;
  const RknnResult result = RknnFilter(data, data[0], 1, c);
  EXPECT_EQ(result.stats.candidates_pruned + result.answers.size(),
            data.size());
}

}  // namespace
}  // namespace hyperdom
