// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/nn_iterator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generator.h"

namespace hyperdom {
namespace {

TEST(NnIteratorTest, EmptyTree) {
  SsTree tree(2);
  NearestNeighborIterator it(&tree, Hypersphere({0.0, 0.0}, 1.0));
  EXPECT_FALSE(it.Next().has_value());
  EXPECT_TRUE(std::isinf(it.PendingBound()));
}

TEST(NnIteratorTest, StreamsInNonDecreasingOrder) {
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = 6200;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  const Hypersphere sq = data[7];

  NearestNeighborIterator it(&tree, sq);
  double prev = -1.0;
  size_t count = 0;
  std::set<uint64_t> seen;
  while (auto item = it.Next()) {
    EXPECT_GE(item->min_dist, prev - 1e-12);
    EXPECT_NEAR(item->min_dist, MinDist(item->entry.sphere, sq), 1e-12);
    EXPECT_TRUE(seen.insert(item->entry.id).second) << "duplicate entry";
    prev = item->min_dist;
    ++count;
  }
  EXPECT_EQ(count, data.size());  // exhaustive
  EXPECT_EQ(it.produced(), data.size());
}

TEST(NnIteratorTest, FirstItemIsTheGlobalNearest) {
  SyntheticSpec spec;
  spec.n = 1000;
  spec.dim = 3;
  spec.seed = 6201;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  const Hypersphere sq({10.0, 10.0, 10.0}, 1.0);

  NearestNeighborIterator it(&tree, sq);
  const auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  double best = 1e300;
  for (const auto& s : data) best = std::min(best, MinDist(s, sq));
  EXPECT_NEAR(first->min_dist, best, 1e-12);
}

TEST(NnIteratorTest, PendingBoundIsSound) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 3;
  spec.seed = 6202;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  NearestNeighborIterator it(&tree, data[0]);
  for (int i = 0; i < 100; ++i) {
    const double bound = it.PendingBound();
    const auto item = it.Next();
    ASSERT_TRUE(item.has_value());
    EXPECT_GE(item->min_dist, bound - 1e-12);
  }
}

TEST(NnIteratorTest, LazyConsumptionMatchesPrefixOfFullSort) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 6203;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  const Hypersphere sq = data[13];

  std::vector<double> expected;
  for (const auto& s : data) expected.push_back(MinDist(s, sq));
  std::sort(expected.begin(), expected.end());

  NearestNeighborIterator it(&tree, sq);
  for (int i = 0; i < 50; ++i) {
    const auto item = it.Next();
    ASSERT_TRUE(item.has_value());
    EXPECT_NEAR(item->min_dist, expected[i], 1e-9) << "position " << i;
  }
}

}  // namespace
}  // namespace hyperdom
