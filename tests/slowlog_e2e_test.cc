// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// End-to-end request-ID correlation: a query slow enough to trip the
// slow-query threshold must produce EXACTLY one hyperdom-slowlog-v1
// record whose request_id equals the ID the client sent (and got echoed
// on its response frame), and the same ID must appear annotated on both
// the client-side and server-side spans.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "dominance/criterion.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"

namespace hyperdom {
namespace server {
namespace {

class SlowlogE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.n = 3'000;
    spec.dim = 3;
    spec.radius_mean = 10.0;
    spec.center_mean = 100.0;
    spec.center_stddev = 30.0;
    spec.seed = 9'700;
    data_ = GenerateSynthetic(spec);
    tree_ = std::make_unique<SsTree>(spec.dim);
    ASSERT_TRUE(tree_->BulkLoad(data_).ok());
    criterion_ = MakeCriterion(CriterionKind::kHyperbola);
    queries_ = MakeKnnQueries(data_, 4, 9'800);
  }

  void TearDown() override {
    obs::Logger::Instance().SetCallbackSink(nullptr);
    obs::Logger::Instance().SetLevel(obs::LogLevel::kWarn);
    obs::Tracer::Instance().Disable();
  }

  std::vector<Hypersphere> data_;
  std::unique_ptr<SsTree> tree_;
  std::unique_ptr<const DominanceCriterion> criterion_;
  std::vector<Hypersphere> queries_;
};

// Pulls "\"key\":<digits>" out of a JSON line; 0 when absent.
uint64_t JsonU64Field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

TEST_F(SlowlogE2eTest, SlowQueryRecordMatchesEchoedRequestId) {
  std::vector<std::string> slowlog_lines;
  obs::Logger::Instance().SetLevel(obs::LogLevel::kWarn);
  obs::Logger::Instance().SetCallbackSink(
      [&slowlog_lines](const std::string& line) {
        if (line.find("hyperdom-slowlog-v1") != std::string::npos) {
          slowlog_lines.push_back(line);
        }
      });
  obs::Tracer::Instance().Enable();

  ServerOptions options;
  options.slow_query_micros = 1;  // every query is "slow"
  Server server(tree_.get(), criterion_.get(), options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.port = server.port();
  Client client(client_options);
  KnnRequest request;
  request.query = queries_[0];
  request.k = 10;
  auto response = client.Knn(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const uint64_t request_id = client.last_request_id();
  ASSERT_NE(request_id, 0u) << "v2 exchange must have carried an ID";

  server.Stop();
  obs::Tracer::Instance().Disable();

  // Exactly one slow-query record, carrying the client's request ID.
  ASSERT_EQ(slowlog_lines.size(), 1u);
  const std::string& record = slowlog_lines[0];
  EXPECT_EQ(JsonU64Field(record, "request_id"), request_id);
  EXPECT_EQ(JsonU64Field(record, "threshold_ns"), 1'000u);
  EXPECT_GE(JsonU64Field(record, "latency_ns"), 1'000u);
  EXPECT_NE(record.find("\"index\":\"ss\""), std::string::npos);
  EXPECT_EQ(JsonU64Field(record, "k"), 10u);
  EXPECT_NE(record.find("\"completeness\":1"), std::string::npos);
  EXPECT_EQ(server.counters().slow_queries.load(), 1u);

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  // Both sides' spans carry the same ID annotation.
  const std::string id_text = std::to_string(request_id);
  bool client_span = false, server_span = false;
  for (const obs::TraceRecord& span : obs::Tracer::Instance().Records()) {
    bool has_id = false;
    for (const obs::TraceArg& arg : span.args) {
      if (arg.key == "request_id" && arg.value == id_text) has_id = true;
    }
    if (!has_id) continue;
    if (span.name == "client/call") client_span = true;
    if (span.name == "server/request") server_span = true;
  }
  EXPECT_TRUE(client_span) << "no client/call span annotated with the ID";
  EXPECT_TRUE(server_span) << "no server/request span annotated with the ID";
#endif  // HYPERDOM_OBSERVABILITY_ENABLED
}

TEST_F(SlowlogE2eTest, FastQueriesBelowThresholdEmitNothing) {
  std::vector<std::string> slowlog_lines;
  obs::Logger::Instance().SetLevel(obs::LogLevel::kWarn);
  obs::Logger::Instance().SetCallbackSink(
      [&slowlog_lines](const std::string& line) {
        if (line.find("hyperdom-slowlog-v1") != std::string::npos) {
          slowlog_lines.push_back(line);
        }
      });

  ServerOptions options;
  options.slow_query_micros = 60'000'000;  // one minute: nothing trips it
  Server server(tree_.get(), criterion_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions client_options;
  client_options.port = server.port();
  Client client(client_options);
  KnnRequest request;
  request.query = queries_[1];
  request.k = 5;
  ASSERT_TRUE(client.Knn(request).ok());
  server.Stop();
  EXPECT_TRUE(slowlog_lines.empty());
  EXPECT_EQ(server.counters().slow_queries.load(), 0u);
}

TEST_F(SlowlogE2eTest, DisabledByDefault) {
  std::vector<std::string> slowlog_lines;
  obs::Logger::Instance().SetCallbackSink(
      [&slowlog_lines](const std::string& line) {
        if (line.find("hyperdom-slowlog-v1") != std::string::npos) {
          slowlog_lines.push_back(line);
        }
      });
  ServerOptions options;  // slow_query_micros defaults to 0 = off
  Server server(tree_.get(), criterion_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions client_options;
  client_options.port = server.port();
  Client client(client_options);
  KnnRequest request;
  request.query = queries_[2];
  request.k = 5;
  ASSERT_TRUE(client.Knn(request).ok());
  server.Stop();
  EXPECT_TRUE(slowlog_lines.empty());
  EXPECT_EQ(server.counters().slow_queries.load(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace hyperdom
