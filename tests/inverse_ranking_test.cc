// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/inverse_ranking.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "dominance/minmax.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(InverseRankingTest, CertainSceneGivesExactRank) {
  // Point objects, point query: ranks are fully determined.
  const std::vector<Hypersphere> data = {
      Hypersphere({1.0, 0.0}, 0.0), Hypersphere({5.0, 0.0}, 0.0),
      Hypersphere({9.0, 0.0}, 0.0), Hypersphere({13.0, 0.0}, 0.0)};
  const Hypersphere sq({0.0, 0.0}, 0.0);
  HyperbolaCriterion exact;
  for (size_t target = 0; target < data.size(); ++target) {
    const RankInterval iv = InverseRanking(data, target, sq, exact);
    EXPECT_EQ(iv.best_rank, target + 1) << "target " << target;
    EXPECT_EQ(iv.worst_rank, target + 1) << "target " << target;
  }
}

TEST(InverseRankingTest, UncertaintyWidensTheInterval) {
  // Two neighbors so close that a fat query cannot separate them.
  const std::vector<Hypersphere> data = {
      Hypersphere({10.0, 0.0}, 1.0), Hypersphere({10.5, 0.0}, 1.0),
      Hypersphere({60.0, 0.0}, 1.0)};
  const Hypersphere sq({0.0, 0.0}, 3.0);
  HyperbolaCriterion exact;
  const RankInterval iv0 = InverseRanking(data, 0, sq, exact);
  EXPECT_EQ(iv0.best_rank, 1u);
  EXPECT_EQ(iv0.worst_rank, 2u);  // could swap with its twin, beats the far one
  const RankInterval iv2 = InverseRanking(data, 2, sq, exact);
  EXPECT_EQ(iv2.best_rank, 3u);
  EXPECT_EQ(iv2.worst_rank, 3u);
}

TEST(InverseRankingTest, IntervalAlwaysContainsMaxDistRank) {
  // The rank by MaxDist ordering is an achievable outcome, so any valid
  // interval contains it.
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 3;
  spec.radius_mean = 6.0;
  spec.seed = 2200;
  const auto data = GenerateSynthetic(spec);
  const Hypersphere sq = data[17];
  HyperbolaCriterion exact;

  for (size_t target = 0; target < 40; ++target) {
    const RankInterval iv = InverseRanking(data, target, sq, exact);
    ASSERT_LE(iv.best_rank, iv.worst_rank);
    ASSERT_GE(iv.best_rank, 1u);
    ASSERT_LE(iv.worst_rank, data.size());
  }
}

TEST(InverseRankingTest, WeakerCriterionGivesWiderInterval) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 2201;
  const auto data = GenerateSynthetic(spec);
  const Hypersphere sq = data[3];
  HyperbolaCriterion exact;
  MinMaxCriterion weak;
  int strictly_wider = 0;
  for (size_t target = 0; target < 50; ++target) {
    const RankInterval tight = InverseRanking(data, target, sq, exact);
    const RankInterval loose = InverseRanking(data, target, sq, weak);
    EXPECT_LE(loose.best_rank, tight.best_rank);
    EXPECT_GE(loose.worst_rank, tight.worst_rank);
    if (loose.worst_rank - loose.best_rank >
        tight.worst_rank - tight.best_rank) {
      ++strictly_wider;
    }
  }
  EXPECT_GT(strictly_wider, 0);
}

TEST(InverseRankingTest, SampledRanksFallInsideTheInterval) {
  // Monte-Carlo validity: sample concrete placements of every object and
  // the query, rank the target, and verify it lands in the interval.
  SyntheticSpec spec;
  spec.n = 60;
  spec.dim = 2;
  spec.radius_mean = 8.0;
  spec.seed = 2202;
  const auto data = GenerateSynthetic(spec);
  const Hypersphere sq = data[5];
  HyperbolaCriterion exact;
  Rng rng(2203);

  for (size_t target : {0u, 7u, 20u, 59u}) {
    const RankInterval iv = InverseRanking(data, target, sq, exact);
    for (int trial = 0; trial < 200; ++trial) {
      auto sample = [&](const Hypersphere& h) {
        const double theta = rng.Uniform(0.0, 2.0 * M_PI);
        const double rad = h.radius() * std::sqrt(rng.NextDouble());
        return Point{h.center()[0] + rad * std::cos(theta),
                     h.center()[1] + rad * std::sin(theta)};
      };
      const Point q = sample(sq);
      std::vector<double> dists(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        dists[i] = Dist(sample(data[i]), q);
      }
      const double target_dist = dists[target];
      uint64_t rank = 1;
      for (size_t i = 0; i < data.size(); ++i) {
        if (i != target && dists[i] < target_dist) ++rank;
      }
      EXPECT_GE(rank, iv.best_rank) << "target " << target;
      EXPECT_LE(rank, iv.worst_rank) << "target " << target;
    }
  }
}

}  // namespace
}  // namespace hyperdom
