// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Query deadlines with graceful degradation (common/deadline.h). The
// contract under test, for every driver: an unbounded deadline changes
// nothing; an expired one yields a result flagged kBestEffort whose
// answers are a subset of the exact answer set — certified membership,
// never a guess (docs/robustness.md §7).

#include "common/deadline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <vector>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "index/m_tree.h"
#include "index/rstar_tree.h"
#include "index/ss_tree.h"
#include "index/vp_tree.h"
#include "query/index_knn.h"
#include "query/knn.h"
#include "query/nn_iterator.h"
#include "query/range.h"
#include "query/rknn.h"

namespace hyperdom {
namespace {

std::vector<Hypersphere> TestData(uint64_t seed, size_t n = 1500) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

std::set<uint64_t> Ids(const std::vector<DataEntry>& entries) {
  std::set<uint64_t> ids;
  for (const auto& e : entries) ids.insert(e.id);
  return ids;
}

bool IsSubset(const std::set<uint64_t>& sub, const std::set<uint64_t>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

TEST(DeadlineTest, UnboundedNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.unbounded());
  EXPECT_FALSE(d.Expired(0));
  EXPECT_FALSE(d.Expired(1u << 30));
}

TEST(DeadlineTest, NodeBudgetTripsAtTheBudget) {
  const Deadline d = Deadline::WithNodeBudget(5);
  EXPECT_FALSE(d.unbounded());
  EXPECT_FALSE(d.Expired(4));
  EXPECT_TRUE(d.Expired(5));
  EXPECT_TRUE(d.Expired(6));
}

TEST(DeadlineTest, WallClockExpires) {
  const Deadline d = Deadline::AfterDuration(std::chrono::nanoseconds(0));
  EXPECT_TRUE(d.Expired(0));
  const Deadline far = Deadline::AfterDuration(std::chrono::hours(1));
  EXPECT_FALSE(far.Expired(0));
}

TEST(TraversalGuardTest, StickyExpiryAndPendingBound) {
  const Deadline d = Deadline::WithNodeBudget(2);
  TraversalGuard guard(d);
  EXPECT_FALSE(guard.ShouldStop(0));
  EXPECT_FALSE(guard.ShouldStop(1));
  EXPECT_TRUE(guard.ShouldStop(2));
  EXPECT_TRUE(guard.ShouldStop(0));  // sticky: stays expired
  EXPECT_TRUE(guard.expired());
  guard.NoteSkipped(7.0);
  guard.NoteSkipped(3.0);
  guard.NoteSkipped(9.0);
  EXPECT_EQ(guard.pending_bound(), 3.0);
}

TEST(TraversalGuardTest, GuardBuiltFromATemporaryDeadlineDoesNotDangle) {
  // Regression: the guard once held `const Deadline&`, so binding a
  // temporary (or moving the guard out of the frame that built it, as the
  // batch engine's pool tasks do) dangled. It now owns the Deadline by
  // value.
  auto make_guard = [] {
    return TraversalGuard(Deadline::WithNodeBudget(2));
  };
  TraversalGuard guard = make_guard();
  EXPECT_FALSE(guard.ShouldStop(0));
  EXPECT_FALSE(guard.ShouldStop(1));
  EXPECT_TRUE(guard.ShouldStop(2));
}

TEST(TraversalGuardTest, BudgetOnlyDeadlineNeverReadsTheClock) {
  const Deadline d = Deadline::WithNodeBudget(10'000);
  TraversalGuard guard(d);
  const uint64_t before = Deadline::WallClockReads();
  for (uint64_t i = 0; i < 5'000; ++i) {
    ASSERT_FALSE(guard.ShouldStop(i));
  }
  EXPECT_TRUE(guard.ShouldStop(10'000));
  EXPECT_EQ(Deadline::WallClockReads(), before)
      << "a budget-only deadline must stay clock-free";
}

TEST(TraversalGuardTest, UnboundedDeadlineNeverReadsTheClock) {
  TraversalGuard guard{Deadline::Unbounded()};
  const uint64_t before = Deadline::WallClockReads();
  for (uint64_t i = 0; i < 1'000; ++i) {
    ASSERT_FALSE(guard.ShouldStop(i));
  }
  EXPECT_EQ(Deadline::WallClockReads(), before);
}

TEST(TraversalGuardTest, WallClockPollingIsRateLimited) {
  const Deadline far = Deadline::AfterDuration(std::chrono::hours(1));
  const uint64_t before = Deadline::WallClockReads();
  TraversalGuard guard(far);
  constexpr uint64_t kPolls = 1000;
  for (uint64_t i = 0; i < kPolls; ++i) {
    ASSERT_FALSE(guard.ShouldStop(i));
  }
  const uint64_t reads = Deadline::WallClockReads() - before;
  // One read per stride, starting at the very first poll.
  constexpr uint64_t kStride = TraversalGuard::kWallPollStride;
  EXPECT_EQ(reads, (kPolls + kStride - 1) / kStride);
}

TEST(TraversalGuardTest, FirstPollChecksTheClockImmediately) {
  // An already-expired wall deadline must stop the traversal before any
  // node expands — rate limiting must not defer the first check.
  TraversalGuard guard(
      Deadline::AfterDuration(std::chrono::nanoseconds(0)));
  EXPECT_TRUE(guard.ShouldStop(0));
  EXPECT_TRUE(guard.expired());
}

class KnnDeadlineTest
    : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(KnnDeadlineTest, SsTreeBudgetYieldsFlaggedSubset) {
  const auto data = TestData(3100);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  HyperbolaCriterion exact;
  KnnOptions options;
  options.strategy = GetParam();
  KnnSearcher unbounded_searcher(&exact, options);

  for (const auto& sq : MakeKnnQueries(data, 6, 3101)) {
    const KnnResult full = unbounded_searcher.Search(tree, sq);
    ASSERT_EQ(full.completeness, Completeness::kExact);
    const auto truth = Ids(full.answers);

    for (uint64_t budget : {uint64_t{1}, uint64_t{3}, uint64_t{8},
                            full.stats.nodes_visited / 2,
                            full.stats.nodes_visited}) {
      KnnOptions bounded = options;
      bounded.deadline = Deadline::WithNodeBudget(budget);
      KnnSearcher searcher(&exact, bounded);
      const KnnResult result = searcher.Search(tree, sq);
      EXPECT_LE(result.stats.nodes_visited, budget);
      if (result.completeness == Completeness::kExact) {
        EXPECT_EQ(Ids(result.answers), truth);
        EXPECT_EQ(result.stats.nodes_deadline_skipped, 0u);
      } else {
        EXPECT_TRUE(IsSubset(Ids(result.answers), truth))
            << "best-effort answers must be certified members of the exact"
               " answer (budget "
            << budget << ")";
        EXPECT_GT(result.stats.nodes_deadline_skipped, 0u);
      }
    }
    // A budget matching the full traversal must stay exact.
    KnnOptions ample = options;
    ample.deadline = Deadline::WithNodeBudget(full.stats.nodes_visited + 1);
    const KnnResult whole = KnnSearcher(&exact, ample).Search(tree, sq);
    EXPECT_EQ(whole.completeness, Completeness::kExact);
    EXPECT_EQ(Ids(whole.answers), truth);
  }
}

TEST_P(KnnDeadlineTest, AlternativeIndexesYieldFlaggedSubsets) {
  const auto data = TestData(3200, 1200);
  RStarTree rstar(4);
  ASSERT_TRUE(rstar.BulkLoad(data).ok());
  VpTree vp;
  ASSERT_TRUE(vp.Build(data).ok());
  MTree mtree(4);
  ASSERT_TRUE(mtree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  KnnOptions options;
  options.strategy = GetParam();

  for (const auto& sq : MakeKnnQueries(data, 4, 3201)) {
    const auto check = [&](const KnnResult& full, const KnnResult& bounded,
                           const char* index) {
      ASSERT_EQ(full.completeness, Completeness::kExact) << index;
      if (bounded.completeness == Completeness::kExact) {
        EXPECT_EQ(Ids(bounded.answers), Ids(full.answers)) << index;
      } else {
        EXPECT_TRUE(IsSubset(Ids(bounded.answers), Ids(full.answers)))
            << index;
        EXPECT_GT(bounded.stats.nodes_deadline_skipped, 0u) << index;
      }
    };
    KnnOptions bounded = options;
    bounded.deadline = Deadline::WithNodeBudget(4);
    check(RStarKnnSearch(rstar, sq, exact, options),
          RStarKnnSearch(rstar, sq, exact, bounded), "R*-tree");
    check(VpTreeKnnSearch(vp, sq, exact, options),
          VpTreeKnnSearch(vp, sq, exact, bounded), "VP-tree");
    check(MTreeKnnSearch(mtree, sq, exact, options),
          MTreeKnnSearch(mtree, sq, exact, bounded), "M-tree");
  }
}

TEST_P(KnnDeadlineTest, ZeroWallBudgetStillFlagsAndStaysSafe) {
  const auto data = TestData(3300, 400);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  HyperbolaCriterion exact;
  KnnOptions options;
  options.strategy = GetParam();
  options.deadline = Deadline::AfterDuration(std::chrono::nanoseconds(0));
  const Hypersphere sq = MakeKnnQueries(data, 1, 3301).front();
  const KnnResult result = KnnSearcher(&exact, options).Search(tree, sq);
  EXPECT_EQ(result.completeness, Completeness::kBestEffort);
  EXPECT_EQ(result.stats.nodes_visited, 0u);
  EXPECT_TRUE(result.answers.empty());
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, KnnDeadlineTest,
                         ::testing::Values(SearchStrategy::kDepthFirst,
                                           SearchStrategy::kBestFirst));

TEST(RangeDeadlineTest, BudgetYieldsFlaggedSubsets) {
  const auto data = TestData(3400, 1200);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const Hypersphere sq = MakeKnnQueries(data, 1, 3401).front();
  const double range = 40.0;

  const RangeResult full = RangeSearch(tree, sq, range);
  ASSERT_EQ(full.completeness, Completeness::kExact);

  for (uint64_t budget : {uint64_t{1}, uint64_t{4}, uint64_t{16}}) {
    const RangeResult part =
        RangeSearch(tree, sq, range, Deadline::WithNodeBudget(budget));
    EXPECT_LE(part.stats.nodes_visited, budget);
    if (part.completeness == Completeness::kExact) {
      EXPECT_EQ(Ids(part.possible), Ids(full.possible));
    } else {
      EXPECT_TRUE(IsSubset(Ids(part.certain), Ids(full.certain)));
      EXPECT_TRUE(IsSubset(Ids(part.possible), Ids(full.possible)));
      EXPECT_GT(part.stats.nodes_deadline_skipped, 0u);
    }
  }
  const RangeResult whole = RangeSearch(
      tree, sq, range, Deadline::WithNodeBudget(full.stats.nodes_visited + 1));
  EXPECT_EQ(whole.completeness, Completeness::kExact);
  EXPECT_EQ(Ids(whole.possible), Ids(full.possible));
}

TEST(RknnDeadlineTest, FilterAndSearchYieldFlaggedSubsets) {
  const auto data = TestData(3500, 300);
  const Hypersphere sq = MakeKnnQueries(data, 1, 3501).front();
  HyperbolaCriterion exact;
  const size_t k = 4;

  const RknnResult full = RknnFilter(data, sq, k, exact);
  ASSERT_EQ(full.completeness, Completeness::kExact);
  const std::set<uint64_t> truth(full.answers.begin(), full.answers.end());

  // Candidate-budget cut: processed candidates are decided exactly.
  const RknnResult part =
      RknnFilter(data, sq, k, exact, Deadline::WithNodeBudget(40));
  EXPECT_EQ(part.completeness, Completeness::kBestEffort);
  EXPECT_GT(part.stats.candidates_deadline_skipped, 0u);
  const std::set<uint64_t> part_ids(part.answers.begin(), part.answers.end());
  EXPECT_TRUE(IsSubset(part_ids, truth));

  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const RknnIndexResult full_idx = RknnSearch(tree, sq, k, exact);
  ASSERT_EQ(full_idx.completeness, Completeness::kExact);
  EXPECT_EQ(std::set<uint64_t>(full_idx.answers.begin(),
                               full_idx.answers.end()),
            truth);

  const RknnIndexResult part_idx = RknnSearch(
      tree, sq, k, exact,
      Deadline::WithNodeBudget(full_idx.stats.nodes_visited / 4 + 1));
  if (part_idx.completeness == Completeness::kBestEffort) {
    EXPECT_GT(part_idx.stats.candidates_deadline_skipped, 0u);
  }
  EXPECT_TRUE(IsSubset(std::set<uint64_t>(part_idx.answers.begin(),
                                          part_idx.answers.end()),
                       truth));
}

TEST(NnIteratorDeadlineTest, BudgetCutsStreamToAPrefix) {
  const auto data = TestData(3600, 800);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const Hypersphere sq = MakeKnnQueries(data, 1, 3601).front();

  // The unbounded reference stream.
  NearestNeighborIterator full(&tree, sq);
  std::vector<uint64_t> full_ids;
  std::vector<double> full_dists;
  while (auto item = full.Next()) {
    full_ids.push_back(item->entry.id);
    full_dists.push_back(item->min_dist);
  }
  ASSERT_EQ(full_ids.size(), data.size());
  EXPECT_FALSE(full.expired());

  NearestNeighborIterator bounded(&tree, sq, Deadline::WithNodeBudget(6));
  std::vector<uint64_t> bounded_ids;
  double last_dist = 0.0;
  while (auto item = bounded.Next()) {
    bounded_ids.push_back(item->entry.id);
    last_dist = item->min_dist;
  }
  EXPECT_TRUE(bounded.expired());
  EXPECT_LT(bounded_ids.size(), full_ids.size());
  // The cut stream is exactly a prefix of the full one...
  ASSERT_LE(bounded_ids.size(), full_ids.size());
  EXPECT_TRUE(std::equal(bounded_ids.begin(), bounded_ids.end(),
                         full_ids.begin()));
  // ...and PendingBound stays a valid floor on everything unstreamed.
  EXPECT_GE(bounded.PendingBound(), last_dist);
  for (size_t i = bounded_ids.size(); i < full_dists.size(); ++i) {
    EXPECT_GE(full_dists[i], bounded.PendingBound());
  }
  // Expired is permanent.
  EXPECT_FALSE(bounded.Next().has_value());
}

}  // namespace
}  // namespace hyperdom
