// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The batch query engine (src/exec/batch.h). The central contract: a
// batch run is bit-identical to the serial single-query drivers at ANY
// thread count — same answers in the same order, same completeness flags,
// same traversal counters — for every index, in exact and best-effort
// (deadline-bounded) runs, and with the fault registry armed. Best-effort
// determinism is tested with node budgets and zero wall budgets only;
// both expire deterministically (a live wall clock would not).

#include "exec/batch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/fault.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "query/index_knn.h"
#include "query/knn.h"

namespace hyperdom {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

std::vector<Hypersphere> TestData(uint64_t seed, size_t n = 1200) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

void ExpectSameKnnResult(const KnnResult& a, const KnnResult& b,
                         size_t qi, size_t threads) {
  ASSERT_EQ(a.answers.size(), b.answers.size())
      << "query " << qi << " at " << threads << " threads";
  for (size_t j = 0; j < a.answers.size(); ++j) {
    EXPECT_EQ(a.answers[j].id, b.answers[j].id)
        << "query " << qi << " answer " << j << " at " << threads
        << " threads";
  }
  EXPECT_EQ(a.completeness, b.completeness) << "query " << qi;
  EXPECT_EQ(a.stats.nodes_visited, b.stats.nodes_visited) << "query " << qi;
  EXPECT_EQ(a.stats.nodes_pruned, b.stats.nodes_pruned) << "query " << qi;
  EXPECT_EQ(a.stats.entries_accessed, b.stats.entries_accessed)
      << "query " << qi;
  EXPECT_EQ(a.stats.dominance_checks, b.stats.dominance_checks)
      << "query " << qi;
  EXPECT_EQ(a.stats.pruned_case2, b.stats.pruned_case2) << "query " << qi;
  EXPECT_EQ(a.stats.pruned_case3, b.stats.pruned_case3) << "query " << qi;
  EXPECT_EQ(a.stats.removed_case1, b.stats.removed_case1) << "query " << qi;
  EXPECT_EQ(a.stats.uncertain_verdicts, b.stats.uncertain_verdicts)
      << "query " << qi;
  EXPECT_EQ(a.stats.nodes_deadline_skipped, b.stats.nodes_deadline_skipped)
      << "query " << qi;
}

// The batch result must equal the plain serial driver loop (reference),
// and its aggregate stats must be the arithmetic sum of the per-query
// stats it returned.
void CheckKnnBatchAgainstReference(
    const std::vector<KnnResult>& reference, const BatchKnnResult& batch,
    size_t threads) {
  ASSERT_EQ(batch.results.size(), reference.size());
  for (size_t qi = 0; qi < reference.size(); ++qi) {
    ExpectSameKnnResult(reference[qi], batch.results[qi], qi, threads);
  }
  KnnStats sum;
  uint64_t best_effort = 0;
  for (const KnnResult& r : batch.results) {
    sum.nodes_visited += r.stats.nodes_visited;
    sum.nodes_pruned += r.stats.nodes_pruned;
    sum.entries_accessed += r.stats.entries_accessed;
    sum.dominance_checks += r.stats.dominance_checks;
    sum.nodes_deadline_skipped += r.stats.nodes_deadline_skipped;
    if (r.completeness == Completeness::kBestEffort) ++best_effort;
  }
  EXPECT_EQ(batch.stats.queries, reference.size());
  EXPECT_EQ(batch.stats.best_effort, best_effort);
  EXPECT_EQ(batch.stats.totals.nodes_visited, sum.nodes_visited);
  EXPECT_EQ(batch.stats.totals.nodes_pruned, sum.nodes_pruned);
  EXPECT_EQ(batch.stats.totals.entries_accessed, sum.entries_accessed);
  EXPECT_EQ(batch.stats.totals.dominance_checks, sum.dominance_checks);
  EXPECT_EQ(batch.stats.totals.nodes_deadline_skipped,
            sum.nodes_deadline_skipped);
}

class BatchKnnIdenticalTest : public ::testing::TestWithParam<bool> {
 protected:
  // Exact runs with the parameter false, deadline-bounded best-effort
  // runs (node budget) with true.
  KnnOptions Options() const {
    KnnOptions options;
    options.k = 5;
    if (GetParam()) options.deadline = Deadline::WithNodeBudget(12);
    return options;
  }
};

TEST_P(BatchKnnIdenticalTest, SsTreeMatchesSerialAtEveryThreadCount) {
  const auto data = TestData(7100);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  HyperbolaCriterion criterion;
  const KnnOptions options = Options();
  const auto queries = MakeKnnQueries(data, 40, 7101);

  const KnnSearcher searcher(&criterion, options);
  std::vector<KnnResult> reference;
  for (const auto& sq : queries) reference.push_back(searcher.Search(tree, sq));

  for (size_t threads : kThreadCounts) {
    BatchOptions exec;
    exec.threads = threads;
    const BatchKnnResult batch =
        BatchKnn(tree, queries, criterion, options, exec);
    CheckKnnBatchAgainstReference(reference, batch, threads);
  }
}

TEST_P(BatchKnnIdenticalTest, AlternativeIndexesMatchSerial) {
  const auto data = TestData(7200, 800);
  RStarTree rstar(4);
  ASSERT_TRUE(rstar.BulkLoad(data).ok());
  VpTree vp;
  ASSERT_TRUE(vp.Build(data).ok());
  MTree mtree(4);
  ASSERT_TRUE(mtree.BulkLoad(data).ok());
  HyperbolaCriterion criterion;
  const KnnOptions options = Options();
  const auto queries = MakeKnnQueries(data, 25, 7201);

  std::vector<KnnResult> ref_rstar, ref_vp, ref_mtree;
  for (const auto& sq : queries) {
    ref_rstar.push_back(RStarKnnSearch(rstar, sq, criterion, options));
    ref_vp.push_back(VpTreeKnnSearch(vp, sq, criterion, options));
    ref_mtree.push_back(MTreeKnnSearch(mtree, sq, criterion, options));
  }

  for (size_t threads : kThreadCounts) {
    BatchOptions exec;
    exec.threads = threads;
    CheckKnnBatchAgainstReference(
        ref_rstar, BatchKnn(rstar, queries, criterion, options, exec),
        threads);
    CheckKnnBatchAgainstReference(
        ref_vp, BatchKnn(vp, queries, criterion, options, exec), threads);
    CheckKnnBatchAgainstReference(
        ref_mtree, BatchKnn(mtree, queries, criterion, options, exec),
        threads);
  }
}

INSTANTIATE_TEST_SUITE_P(ExactAndBestEffort, BatchKnnIdenticalTest,
                         ::testing::Values(false, true));

TEST(BatchKnnTest, ZeroWallDeadlineIsDeterministicallyBestEffort) {
  const auto data = TestData(7300, 400);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  HyperbolaCriterion criterion;
  KnnOptions options;
  options.k = 5;
  // Already expired at construction: every query stops at its first poll,
  // deterministically, without depending on a live clock race.
  options.deadline = Deadline::AfterDuration(std::chrono::nanoseconds(0));
  const auto queries = MakeKnnQueries(data, 12, 7301);

  for (size_t threads : kThreadCounts) {
    BatchOptions exec;
    exec.threads = threads;
    const BatchKnnResult batch =
        BatchKnn(tree, queries, criterion, options, exec);
    EXPECT_EQ(batch.stats.best_effort, queries.size());
    for (const KnnResult& r : batch.results) {
      EXPECT_EQ(r.completeness, Completeness::kBestEffort);
      EXPECT_EQ(r.stats.nodes_visited, 0u);
      EXPECT_TRUE(r.answers.empty());
    }
  }
}

TEST(BatchRangeTest, MatchesSerialAtEveryThreadCount) {
  const auto data = TestData(7400, 900);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const auto queries = MakeKnnQueries(data, 30, 7401);
  const double range = 35.0;

  for (const Deadline& deadline :
       {Deadline::Unbounded(), Deadline::WithNodeBudget(10)}) {
    std::vector<RangeResult> reference;
    for (const auto& sq : queries) {
      reference.push_back(RangeSearch(tree, sq, range, deadline));
    }
    for (size_t threads : kThreadCounts) {
      BatchOptions exec;
      exec.threads = threads;
      const BatchRangeResult batch =
          BatchRange(tree, queries, range, deadline, exec);
      ASSERT_EQ(batch.results.size(), reference.size());
      RangeStats sum;
      uint64_t best_effort = 0;
      for (size_t qi = 0; qi < reference.size(); ++qi) {
        const RangeResult& want = reference[qi];
        const RangeResult& got = batch.results[qi];
        EXPECT_EQ(got.completeness, want.completeness) << "query " << qi;
        ASSERT_EQ(got.certain.size(), want.certain.size()) << "query " << qi;
        ASSERT_EQ(got.possible.size(), want.possible.size())
            << "query " << qi;
        for (size_t j = 0; j < want.possible.size(); ++j) {
          EXPECT_EQ(got.possible[j].id, want.possible[j].id)
              << "query " << qi;
        }
        EXPECT_EQ(got.stats.nodes_visited, want.stats.nodes_visited);
        sum.nodes_visited += got.stats.nodes_visited;
        sum.nodes_pruned += got.stats.nodes_pruned;
        sum.entries_accessed += got.stats.entries_accessed;
        sum.nodes_deadline_skipped += got.stats.nodes_deadline_skipped;
        if (got.completeness == Completeness::kBestEffort) ++best_effort;
      }
      EXPECT_EQ(batch.queries, queries.size());
      EXPECT_EQ(batch.best_effort, best_effort);
      EXPECT_EQ(batch.totals.nodes_visited, sum.nodes_visited);
      EXPECT_EQ(batch.totals.nodes_pruned, sum.nodes_pruned);
      EXPECT_EQ(batch.totals.entries_accessed, sum.entries_accessed);
      EXPECT_EQ(batch.totals.nodes_deadline_skipped,
                sum.nodes_deadline_skipped);
    }
  }
}

TEST(BatchKnnTest, ExternallyOwnedPoolIsUsedAndResultsMatch) {
  const auto data = TestData(7500, 500);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  HyperbolaCriterion criterion;
  KnnOptions options;
  options.k = 3;
  const auto queries = MakeKnnQueries(data, 10, 7501);

  BatchOptions serial;
  serial.threads = 1;
  const BatchKnnResult want =
      BatchKnn(tree, queries, criterion, options, serial);

  ThreadPool pool(4);
  BatchOptions exec;
  exec.pool = &pool;
  exec.threads = 99;  // must be ignored in favor of the pool's size
  const BatchKnnResult got =
      BatchKnn(tree, queries, criterion, options, exec);
  EXPECT_EQ(got.stats.threads, 4u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameKnnResult(want.results[qi], got.results[qi], qi, 4);
  }
}

#if defined(HYPERDOM_FAULT_INJECTION_ENABLED)

// With ArmRandom active, the certified criterion's degrade sites fire
// inside query execution. FaultQueryScope must make which queries get hit
// a pure function of (seed, query index) — so batch runs are identical at
// every thread count AND across repeated runs from the seed alone.
TEST(BatchKnnFaultTest, ArmedRandomFaultsAreThreadCountInvariant) {
  const auto data = TestData(7600, 600);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const auto criterion = MakeCriterion(CriterionKind::kCertified);
  KnnOptions options;
  options.k = 5;
  const auto queries = MakeKnnQueries(data, 30, 7601);

  auto run_batch = [&](size_t threads) {
    FaultRegistry::Instance().ArmRandom(0xFA117, 0.05);
    BatchOptions exec;
    exec.threads = threads;
    const BatchKnnResult batch =
        BatchKnn(tree, queries, *criterion, options, exec);
    FaultRegistry::Instance().Reset();
    return batch;
  };

  const BatchKnnResult want = run_batch(1);
  // Faults really fired somewhere, or the test proves nothing: with p=5%
  // over thousands of certified escalations some uncertain verdicts are
  // forced. (uncertain_verdicts is also populated without faults; the
  // invariance checks below are what matter.)
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const BatchKnnResult got = run_batch(threads);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectSameKnnResult(want.results[qi], got.results[qi], qi, threads);
    }
  }
  // Reproducible from the seed alone: a second 8-thread run is identical.
  const BatchKnnResult again = run_batch(8);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameKnnResult(want.results[qi], again.results[qi], qi, 8);
  }
}

#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

TEST(RunBatchTest, ForksIndependentPerQueryRngStreams) {
  constexpr size_t kN = 16;
  std::vector<uint64_t> draws(kN, 0);
  BatchOptions exec;
  exec.threads = 1;
  exec.seed = 42;
  RunBatch(kN, exec, [&draws](QueryContext& ctx) {
    draws[ctx.index] = ctx.rng.NextU64();
  });
  // Streams match Rng(seed).Fork(i) exactly and are pairwise distinct.
  const Rng base(42);
  for (size_t i = 0; i < kN; ++i) {
    Rng expected = base.Fork(i);
    EXPECT_EQ(draws[i], expected.NextU64()) << "stream " << i;
    for (size_t j = i + 1; j < kN; ++j) {
      EXPECT_NE(draws[i], draws[j]) << i << " vs " << j;
    }
  }
  // And the same streams at 8 threads.
  std::vector<uint64_t> threaded(kN, 0);
  exec.threads = 8;
  RunBatch(kN, exec, [&threaded](QueryContext& ctx) {
    threaded[ctx.index] = ctx.rng.NextU64();
  });
  EXPECT_EQ(draws, threaded);
}

}  // namespace
}  // namespace hyperdom
