// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "data/datasets.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hyperdom {
namespace {

TEST(DatasetsTest, InfoMatchesThePaper) {
  const RealDatasetInfo nba = GetRealDatasetInfo(RealDataset::kNba);
  EXPECT_EQ(nba.name, "NBA");
  EXPECT_EQ(nba.n, 17'265u);
  EXPECT_EQ(nba.dim, 17u);

  const RealDatasetInfo color = GetRealDatasetInfo(RealDataset::kColor);
  EXPECT_EQ(color.name, "Color");
  EXPECT_EQ(color.n, 68'040u);
  EXPECT_EQ(color.dim, 9u);

  const RealDatasetInfo texture = GetRealDatasetInfo(RealDataset::kTexture);
  EXPECT_EQ(texture.name, "Texture");
  EXPECT_EQ(texture.n, 68'040u);
  EXPECT_EQ(texture.dim, 16u);

  const RealDatasetInfo forest = GetRealDatasetInfo(RealDataset::kForest);
  EXPECT_EQ(forest.name, "Forest");
  EXPECT_EQ(forest.n, 82'012u);
  EXPECT_EQ(forest.dim, 10u);
}

TEST(DatasetsTest, AllRealDatasetsHasFourInFigureTenOrder) {
  const auto& all = AllRealDatasets();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], RealDataset::kNba);
  EXPECT_EQ(all[1], RealDataset::kForest);
  EXPECT_EQ(all[2], RealDataset::kColor);
  EXPECT_EQ(all[3], RealDataset::kTexture);
}

TEST(DatasetsTest, SampleCapRespected) {
  const auto points = LoadRealStandIn(RealDataset::kNba, 500);
  EXPECT_EQ(points.size(), 500u);
  for (const auto& p : points) EXPECT_EQ(p.size(), 17u);
}

TEST(DatasetsTest, FullSizeMatchesInfo) {
  const auto points = LoadRealStandIn(RealDataset::kNba);
  EXPECT_EQ(points.size(), GetRealDatasetInfo(RealDataset::kNba).n);
}

TEST(DatasetsTest, Deterministic) {
  const auto a = LoadRealStandIn(RealDataset::kColor, 300);
  const auto b = LoadRealStandIn(RealDataset::kColor, 300);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DatasetsTest, DatasetsDifferFromEachOther) {
  const auto color = LoadRealStandIn(RealDataset::kColor, 100);
  const auto nba = LoadRealStandIn(RealDataset::kNba, 100);
  EXPECT_NE(color[0].size(), nba[0].size());
}

TEST(DatasetsTest, ForestRangesLookLikeCovertype) {
  const auto points = LoadRealStandIn(RealDataset::kForest, 5000);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 10u);
    EXPECT_GE(p[0], 1800.0);  // elevation
    EXPECT_LE(p[0], 3900.0);
    EXPECT_GE(p[1], 0.0);  // aspect (degrees)
    EXPECT_LE(p[1], 360.0);
  }
}

TEST(DatasetsTest, StandInsAreClustered) {
  // Clustered data has much lower mean nearest-neighbor distance than a
  // uniform scattering of the same bounding box would give. Cheap proxy:
  // the variance of pairwise distances is substantial (multiple scales).
  const auto points = LoadRealStandIn(RealDataset::kTexture, 800);
  double sum = 0.0, sum_sq = 0.0;
  int count = 0;
  for (size_t i = 0; i < points.size(); i += 7) {
    for (size_t j = i + 1; j < points.size(); j += 13) {
      const double d = Dist(points[i], points[j]);
      sum += d;
      sum_sq += d * d;
      ++count;
    }
  }
  const double mean = sum / count;
  const double cv = std::sqrt(sum_sq / count - mean * mean) / mean;
  EXPECT_GT(cv, 0.2) << "pairwise distances look single-scale (unclustered)";
}

}  // namespace
}  // namespace hyperdom
