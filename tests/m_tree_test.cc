// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/m_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(MTreeTest, EmptyTree) {
  MTree tree(3);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(MTreeTest, SingleInsert) {
  MTree tree(2);
  ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 2.0}, 3.0), 9).ok());
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_NE(tree.root(), nullptr);
  // The covering radius covers the sphere's far edge from the pivot.
  EXPECT_GE(tree.root()->covering_radius(), 3.0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(MTreeTest, DimensionMismatchRejected) {
  MTree tree(2);
  EXPECT_EQ(tree.Insert(Hypersphere({1.0}, 0.5), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(MTreeTest, BadOptionsRejected) {
  MTreeOptions options;
  options.max_entries = 2;
  MTree tree(2, options);
  EXPECT_EQ(tree.Insert(Hypersphere({0.0, 0.0}, 1.0), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(MTreeTest, SplitsGrowTheTree) {
  MTreeOptions options;
  options.max_entries = 4;
  MTree tree(2, options);
  Rng rng(2000);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(test::RandomSphere(&rng, 2, 3.0), i).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << "after insert " << i << ": " << tree.CheckInvariants().ToString();
  }
  EXPECT_GT(tree.Height(), 2u);
}

class MTreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MTreeInvariantTest, InvariantsHoldAfterBulkLoad) {
  const auto [dim, max_entries] = GetParam();
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = dim;
  spec.radius_mean = 10.0;
  spec.seed = 2001 + dim;
  const auto data = GenerateSynthetic(spec);
  MTreeOptions options;
  options.max_entries = max_entries;
  MTree tree(dim, options);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  // The root ball covers every data sphere.
  const Hypersphere root_ball = tree.root()->bounding_sphere();
  for (const auto& s : data) {
    EXPECT_LE(Dist(root_ball.center(), s.center()) + s.radius(),
              root_ball.radius() * (1.0 + 1e-9) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MTreeInvariantTest,
    ::testing::Combine(::testing::Values<size_t>(2, 4, 10),
                       ::testing::Values<size_t>(4, 8, 24)));

TEST(MTreeTest, AllIdsPresent) {
  SyntheticSpec spec;
  spec.n = 700;
  spec.dim = 3;
  spec.seed = 2002;
  MTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(GenerateSynthetic(spec)).ok());
  std::set<uint64_t> ids;
  std::vector<const MTreeNode*> stack = {tree.root()};
  while (!stack.empty()) {
    const MTreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      for (const auto& e : node->entries()) {
        EXPECT_TRUE(ids.insert(e.id).second);
      }
    } else {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  EXPECT_EQ(ids.size(), 700u);
}

TEST(MTreeTest, DuplicateCentersHandled) {
  MTree tree(2);
  for (uint64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 1.0}, 0.5), i).ok());
  }
  EXPECT_EQ(tree.size(), 150u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(MTreeTest, HeightStaysLogarithmic) {
  SyntheticSpec spec;
  spec.n = 20'000;
  spec.dim = 4;
  spec.seed = 2003;
  MTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(GenerateSynthetic(spec)).ok());
  EXPECT_LE(tree.Height(), 9u);
  EXPECT_GE(tree.Height(), 3u);
}

}  // namespace
}  // namespace hyperdom
