// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// HDNP v1 <-> v2 interop: frame-level accept/reject matrix, the request-ID
// prefix roundtrip, a v2 client transparently (and stickily) downgrading
// against a v1-only server, a v1-only client against a v2 server, and the
// guarantee that error/shed frames echo the request ID.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "dominance/criterion.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace hyperdom {
namespace server {
namespace {

// DecodeFrameHeader validates exactly kFrameHeaderSize bytes.
std::string_view HeaderBytes(const std::string& frame) {
  return std::string_view(frame.data(), kFrameHeaderSize);
}

TEST(ProtocolV2Test, HeaderVersionMatrix) {
  // v1 frame: accepted by default and by a v1-capped decoder.
  const std::string v1 = EncodeFrame(FrameKind::kPingRequest, {});
  auto header = DecodeFrameHeader(HeaderBytes(v1), kDefaultMaxPayloadBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_TRUE(DecodeFrameHeader(HeaderBytes(v1), kDefaultMaxPayloadBytes,
                                kProtocolVersion)
                  .ok());

  // v2 frame: accepted by default, rejected by a v1-capped decoder (the
  // v1-only-server emulation).
  const std::string v2 = EncodeFrameV2(FrameKind::kPingRequest, 7, {});
  header = DecodeFrameHeader(HeaderBytes(v2), kDefaultMaxPayloadBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersionV2);
  auto rejected = DecodeFrameHeader(HeaderBytes(v2), kDefaultMaxPayloadBytes,
                                    kProtocolVersion);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(rejected.status().message().find("version"), std::string::npos);

  // A version above everything this build knows is rejected everywhere.
  std::string future = v2;
  const uint32_t unknown = kProtocolVersionMax + 1;
  std::memcpy(future.data() + 4, &unknown, sizeof(unknown));
  EXPECT_FALSE(
      DecodeFrameHeader(HeaderBytes(future), kDefaultMaxPayloadBytes).ok());
}

TEST(ProtocolV2Test, RequestIdRoundTrip) {
  const std::string payload = "the payload";
  const uint64_t id = 0xDEADBEEFCAFEF00Dull;
  const std::string frame =
      EncodeFrameV2(FrameKind::kKnnRequest, id, payload);
  auto header = DecodeFrameHeader(HeaderBytes(frame), kDefaultMaxPayloadBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersionV2);
  EXPECT_EQ(header->kind, FrameKind::kKnnRequest);
  // The wire payload is the 8-byte ID prefix plus the caller's payload,
  // and the CRC covers both.
  const std::string wire_payload = frame.substr(kFrameHeaderSize);
  ASSERT_EQ(wire_payload.size(), sizeof(uint64_t) + payload.size());
  ASSERT_TRUE(VerifyPayloadCrc(*header, wire_payload).ok());
  std::string_view body(wire_payload);
  uint64_t extracted = 0;
  ASSERT_TRUE(ExtractRequestId(*header, &body, &extracted).ok());
  EXPECT_EQ(extracted, id);
  EXPECT_EQ(body, payload);

  // v1 frames extract to "no ID" with the payload untouched.
  const std::string v1 = EncodeFrame(FrameKind::kKnnRequest, payload);
  auto v1_header = DecodeFrameHeader(HeaderBytes(v1), kDefaultMaxPayloadBytes);
  ASSERT_TRUE(v1_header.ok());
  std::string_view v1_body(v1.data() + kFrameHeaderSize,
                           v1.size() - kFrameHeaderSize);
  extracted = 99;
  ASSERT_TRUE(ExtractRequestId(*v1_header, &v1_body, &extracted).ok());
  EXPECT_EQ(extracted, 0u);
  EXPECT_EQ(v1_body, payload);

  // A v2 frame whose payload cannot hold the ID prefix is malformed.
  FrameHeader short_header = *header;
  short_header.payload_size = 4;
  std::string_view short_body("abcd");
  EXPECT_EQ(ExtractRequestId(short_header, &short_body, &extracted).code(),
            StatusCode::kProtocolError);
}

class InteropTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.n = 2'000;
    spec.dim = 3;
    spec.radius_mean = 10.0;
    spec.center_mean = 100.0;
    spec.center_stddev = 30.0;
    spec.seed = 9'100;
    data_ = GenerateSynthetic(spec);
    tree_ = std::make_unique<SsTree>(spec.dim);
    ASSERT_TRUE(tree_->BulkLoad(data_).ok());
    criterion_ = MakeCriterion(CriterionKind::kHyperbola);
    queries_ = MakeKnnQueries(data_, 8, 9'200);
  }

  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    auto server =
        std::make_unique<Server>(tree_.get(), criterion_.get(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  KnnRequest MakeRequest(size_t i = 0) const {
    KnnRequest request;
    request.query = queries_[i % queries_.size()];
    request.k = 5;
    return request;
  }

  std::vector<Hypersphere> data_;
  std::unique_ptr<SsTree> tree_;
  std::unique_ptr<const DominanceCriterion> criterion_;
  std::vector<Hypersphere> queries_;
};

TEST_F(InteropTest, V2ClientAgainstV2ServerCarriesIds) {
  auto server = StartServer();
  ClientOptions options;
  options.port = server->port();
  Client client(options);
  ASSERT_TRUE(client.Knn(MakeRequest()).ok());
  const uint64_t first_id = client.last_request_id();
  EXPECT_NE(first_id, 0u) << "v2 exchange must carry a request ID";
  ASSERT_TRUE(client.Knn(MakeRequest(1)).ok());
  EXPECT_NE(client.last_request_id(), 0u);
  EXPECT_NE(client.last_request_id(), first_id)
      << "each logical call gets a fresh ID";
}

TEST_F(InteropTest, V2ClientDowngradesAgainstV1OnlyServer) {
  ServerOptions server_options;
  server_options.max_protocol_version = kProtocolVersion;  // v1-only peer
  auto server = StartServer(server_options);
  ClientOptions options;
  options.port = server->port();
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 20;
  Client client(options);
  // First call triggers the rejection + transparent downgrade; the
  // answer must still come back correct.
  auto response = client.Knn(MakeRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(client.last_request_id(), 0u)
      << "a v1 wire carries no request IDs";
  EXPECT_FALSE(response->answers.empty());
  // The downgrade is sticky: later calls go straight out as v1, no
  // desync, no extra rejection round-trips.
  for (size_t i = 1; i < 4; ++i) {
    auto again = client.Knn(MakeRequest(i));
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(client.last_request_id(), 0u);
    EXPECT_EQ(client.last_attempts(), 1);
  }
  EXPECT_EQ(server->counters().requests_served.load(), 4u);
}

TEST_F(InteropTest, V1ClientAgainstV2Server) {
  auto server = StartServer();  // accepts both versions
  ClientOptions options;
  options.port = server->port();
  options.max_protocol_version = kProtocolVersion;  // v1-only client
  Client client(options);
  for (size_t i = 0; i < 3; ++i) {
    auto response = client.Knn(MakeRequest(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(client.last_request_id(), 0u);
  }
  EXPECT_EQ(server->counters().requests_served.load(), 3u);
  EXPECT_EQ(server->counters().protocol_errors.load(), 0u);
}

// Raw v2 exchange helper: sends one pre-encoded frame, returns the
// response header + raw wire payload (ID prefix NOT stripped).
Status RawExchange(uint16_t port, const std::string& frame,
                   FrameHeader* header_out, std::string* payload_out) {
  Result<int> fd = ConnectWithTimeout("127.0.0.1", port, 2000);
  HYPERDOM_RETURN_NOT_OK(fd.status());
  Status wrote = WriteFull(*fd, frame.data(), frame.size(), 2000);
  if (!wrote.ok()) {
    CloseSocket(*fd);
    return wrote;
  }
  char header_bytes[kFrameHeaderSize];
  Status read = ReadFull(*fd, header_bytes, sizeof(header_bytes), 2000);
  if (!read.ok()) {
    CloseSocket(*fd);
    return read;
  }
  Result<FrameHeader> header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)),
      kDefaultMaxPayloadBytes);
  if (!header.ok()) {
    CloseSocket(*fd);
    return header.status();
  }
  payload_out->assign(header->payload_size, '\0');
  if (header->payload_size > 0) {
    read = ReadFull(*fd, payload_out->data(), payload_out->size(), 2000);
    if (!read.ok()) {
      CloseSocket(*fd);
      return read;
    }
  }
  CloseSocket(*fd);
  HYPERDOM_RETURN_NOT_OK(VerifyPayloadCrc(*header, *payload_out));
  *header_out = *header;
  return Status::OK();
}

TEST_F(InteropTest, ErrorFramesEchoTheRequestId) {
  auto server = StartServer();
  // A malformed v2 request (undecodable payload) must come back as a v2
  // error frame echoing the ID.
  const uint64_t id = 0xABCDEF12345678ull;
  const std::string bad =
      EncodeFrameV2(FrameKind::kKnnRequest, id, "not a knn payload");
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(RawExchange(server->port(), bad, &header, &payload).ok());
  EXPECT_EQ(header.kind, FrameKind::kErrorResponse);
  ASSERT_EQ(header.version, kProtocolVersionV2);
  std::string_view body(payload);
  uint64_t echoed = 0;
  ASSERT_TRUE(ExtractRequestId(header, &body, &echoed).ok());
  EXPECT_EQ(echoed, id);
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(std::string(body), &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kProtocolError);
}

TEST_F(InteropTest, ShedFramesEchoTheRequestId) {
  // Queue bound 1 + a parked worker: the second concurrent request is
  // shed, and its kOverloaded frame must echo the second request's ID.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  options.worker_start_hook = [released] { released.wait(); };
  auto server = StartServer(options);

  // Fill the queue with one request (worker is parked, so it stays).
  const std::string filler = EncodeFrameV2(
      FrameKind::kKnnRequest, 11, EncodeKnnRequest(MakeRequest()));
  std::thread fill_thread([&] {
    FrameHeader header;
    std::string payload;
    (void)RawExchange(server->port(), filler, &header, &payload);
  });
  // Wait for it to be admitted.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->QueueDepth() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server->QueueDepth(), 1u);

  const uint64_t shed_id = 4242;
  const std::string overflow = EncodeFrameV2(
      FrameKind::kKnnRequest, shed_id, EncodeKnnRequest(MakeRequest(1)));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(
      RawExchange(server->port(), overflow, &header, &payload).ok());
  EXPECT_EQ(header.kind, FrameKind::kErrorResponse);
  ASSERT_EQ(header.version, kProtocolVersionV2);
  std::string_view body(payload);
  uint64_t echoed = 0;
  ASSERT_TRUE(ExtractRequestId(header, &body, &echoed).ok());
  EXPECT_EQ(echoed, shed_id);
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(std::string(body), &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kOverloaded);

  release.set_value();
  fill_thread.join();
}

}  // namespace
}  // namespace server
}  // namespace hyperdom
