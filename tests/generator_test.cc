// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hyperdom {
namespace {

TEST(GeneratorTest, ProducesRequestedShape) {
  SyntheticSpec spec;
  spec.n = 1000;
  spec.dim = 7;
  const auto data = GenerateSynthetic(spec);
  ASSERT_EQ(data.size(), 1000u);
  for (const auto& s : data) {
    EXPECT_EQ(s.dim(), 7u);
    EXPECT_GE(s.radius(), 0.0);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 3;
  spec.seed = 42;
  const auto a = GenerateSynthetic(spec);
  const auto b = GenerateSynthetic(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 3;
  spec.seed = 1;
  const auto a = GenerateSynthetic(spec);
  spec.seed = 2;
  const auto b = GenerateSynthetic(spec);
  int identical = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(GeneratorTest, GaussianCenterMoments) {
  SyntheticSpec spec;
  spec.n = 50'000;
  spec.dim = 2;
  const auto data = GenerateSynthetic(spec);
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& s : data) {
    sum += s.center()[0];
    sum_sq += s.center()[0] * s.center()[0];
  }
  const double n = static_cast<double>(data.size());
  const double mean = sum / n;
  EXPECT_NEAR(mean, 100.0, 0.5);  // paper: Gaussian(100, 25)
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 25.0, 0.5);
}

TEST(GeneratorTest, GaussianRadiusMoments) {
  SyntheticSpec spec;
  spec.n = 50'000;
  spec.dim = 2;
  spec.radius_mean = 50.0;
  const auto data = GenerateSynthetic(spec);
  double sum = 0.0;
  for (const auto& s : data) sum += s.radius();
  // sigma = mu/4 and clamping at zero barely moves the mean (4 sigma away).
  EXPECT_NEAR(sum / static_cast<double>(data.size()), 50.0, 0.5);
}

TEST(GeneratorTest, UniformCentersStayInRange) {
  SyntheticSpec spec;
  spec.n = 10'000;
  spec.dim = 3;
  spec.center_distribution = Distribution::kUniform;
  const auto data = GenerateSynthetic(spec);
  for (const auto& s : data) {
    for (double v : s.center()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 200.0);
    }
  }
}

TEST(GeneratorTest, UniformRadiiStayInRange) {
  SyntheticSpec spec;
  spec.n = 10'000;
  spec.dim = 2;
  spec.radius_distribution = Distribution::kUniform;
  const auto data = GenerateSynthetic(spec);
  for (const auto& s : data) {
    EXPECT_GE(s.radius(), 0.0);
    EXPECT_LT(s.radius(), 200.0);
  }
}

TEST(GeneratorTest, RadiiNeverNegativeEvenAtTinyMean) {
  SyntheticSpec spec;
  spec.n = 20'000;
  spec.dim = 2;
  spec.radius_mean = 0.1;
  spec.radius_sigma_ratio = 5.0;  // wild sigma forces negatives pre-clamp
  const auto data = GenerateSynthetic(spec);
  int zeros = 0;
  for (const auto& s : data) {
    ASSERT_GE(s.radius(), 0.0);
    if (s.radius() == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 0);  // the clamp actually triggered
}

TEST(MakeUncertainTest, WrapsPointsWithRadii) {
  const std::vector<Point> points = {{1.0, 2.0}, {3.0, 4.0}};
  const auto spheres = MakeUncertain(points, 10.0, 0.25, 99);
  ASSERT_EQ(spheres.size(), 2u);
  EXPECT_EQ(spheres[0].center(), points[0]);
  EXPECT_EQ(spheres[1].center(), points[1]);
  EXPECT_GE(spheres[0].radius(), 0.0);
}

TEST(MakeUncertainTest, DeterministicInSeed) {
  const std::vector<Point> points(100, Point{0.0, 0.0});
  const auto a = MakeUncertain(points, 10.0, 0.25, 5);
  const auto b = MakeUncertain(points, 10.0, 0.25, 5);
  const auto c = MakeUncertain(points, 10.0, 0.25, 6);
  int diff_ab = 0, diff_ac = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (a[i].radius() != b[i].radius()) ++diff_ab;
    if (a[i].radius() != c[i].radius()) ++diff_ac;
  }
  EXPECT_EQ(diff_ab, 0);
  EXPECT_GT(diff_ac, 90);
}

TEST(MakeUncertainTest, RadiusMeanTracksMu) {
  std::vector<Point> points(20'000, Point{0.0});
  const auto spheres = MakeUncertain(points, 10.0, 0.25, 7);
  double sum = 0.0;
  for (const auto& s : spheres) sum += s.radius();
  EXPECT_NEAR(sum / 20'000.0, 10.0, 0.1);
}

}  // namespace
}  // namespace hyperdom
