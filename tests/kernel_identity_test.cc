// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Bit-identity sweep over the span kernels (geometry/kernel_core.h
// contract): in every build — portable scalar or HYPERDOM_NATIVE/AVX2 —
// the dispatched kernels, the always-scalar reference TU
// (geometry/scalar_kernels.cc), the batched forms, and the inline
// SphereView kernels of geometry/hypersphere.h must all return the SAME
// BITS for the same inputs. Comparisons go through the raw uint64_t
// representation so a one-ulp divergence (an FMA contraction, a
// reassociated sum, a drifted copy of a kernel body) fails loudly
// instead of hiding under an EXPECT_DOUBLE_EQ tolerance.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/hypersphere.h"
#include "geometry/kernel_core.h"
#include "geometry/point.h"
#include "storage/sphere_store.h"
#include "test_util.h"

namespace hyperdom {
namespace {

// Bit-level equality: also distinguishes +0.0 / -0.0 and NaN payloads.
::testing::AssertionResult SameBits(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << std::hexfloat << a << " vs " << b << " (bits differ)";
}

// The sweep dims: both sides of the strided cutover (8), every tail
// length mod 4, and the odd dims that land SphereStore rows on arbitrary
// 8-byte boundaries.
const size_t kDims[] = {1,  2,  3,  4,  5,  7,  8,   9,   15, 16,
                        31, 32, 50, 63, 64, 65, 67, 100, 128};

std::vector<double> RandomSpan(Rng* rng, size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->Uniform(-100.0, 100.0);
  return v;
}

TEST(KernelIdentityTest, DispatchNameMatchesBuildIsa) {
  // The test TU compiles with the same global flags as point.cc, so the
  // ISA macro visible here must agree with the library's dispatch.
#if defined(__AVX2__)
  EXPECT_STREQ(KernelDispatchName(), "avx2");
#else
  EXPECT_STREQ(KernelDispatchName(), "scalar");
#endif
}

TEST(KernelIdentityTest, DispatchedEqualsScalarReferenceEverywhere) {
  Rng rng(77001);
  for (size_t dim : kDims) {
    // Several offsets into a shared pool so vector loads see many
    // different (mis)alignments, not just the allocator's favorite.
    const std::vector<double> pool_a = RandomSpan(&rng, dim + 16);
    const std::vector<double> pool_b = RandomSpan(&rng, dim + 16);
    for (size_t off = 0; off < 8; ++off) {
      const double* a = pool_a.data() + off;
      const double* b = pool_b.data() + off;
      EXPECT_TRUE(SameBits(DotSpan(a, b, dim),
                           scalar_ref::DotSpan(a, b, dim)))
          << "dot dim=" << dim << " off=" << off;
      EXPECT_TRUE(SameBits(SquaredNormSpan(a, dim),
                           scalar_ref::SquaredNormSpan(a, dim)))
          << "sqnorm dim=" << dim << " off=" << off;
      EXPECT_TRUE(SameBits(NormSpan(a, dim), scalar_ref::NormSpan(a, dim)))
          << "norm dim=" << dim << " off=" << off;
      EXPECT_TRUE(SameBits(SquaredDistSpan(a, b, dim),
                           scalar_ref::SquaredDistSpan(a, b, dim)))
          << "sqdist dim=" << dim << " off=" << off;
      EXPECT_TRUE(SameBits(DistSpan(a, b, dim),
                           scalar_ref::DistSpan(a, b, dim)))
          << "dist dim=" << dim << " off=" << off;
    }
  }
}

TEST(KernelIdentityTest, BatchedEqualsSerialAndScalarReference) {
  Rng rng(77002);
  constexpr size_t kCount = 37;  // not a multiple of any lane width
  for (size_t dim : kDims) {
    const std::vector<double> rows = RandomSpan(&rng, kCount * dim);
    const std::vector<double> q = RandomSpan(&rng, dim);
    std::vector<double> radii(kCount);
    for (auto& r : radii) r = rng.Uniform(0.0, 5.0);
    const double qr = rng.Uniform(0.0, 5.0);

    std::vector<double> sq(kCount), mx(kCount), mn(kCount);
    std::vector<double> fused_mn(kCount), fused_mx(kCount);
    std::vector<double> ref(kCount), ref2(kCount);

    BatchedSqDistSpan(rows.data(), dim, kCount, q.data(), sq.data());
    BatchedMaxDistSpan(rows.data(), radii.data(), dim, kCount, q.data(), qr,
                       mx.data());
    BatchedMinDistSpan(rows.data(), radii.data(), dim, kCount, q.data(), qr,
                       mn.data());
    BatchedMinMaxDistSpan(rows.data(), radii.data(), dim, kCount, q.data(),
                          qr, fused_mn.data(), fused_mx.data());

    for (size_t r = 0; r < kCount; ++r) {
      const double* row = rows.data() + r * dim;
      const double d = DistSpan(row, q.data(), dim);
      EXPECT_TRUE(SameBits(sq[r], SquaredDistSpan(row, q.data(), dim)))
          << "sqdist dim=" << dim << " row=" << r;
      EXPECT_TRUE(
          SameBits(mx[r], kernel_core::CombineMaxDist(d, radii[r], qr)))
          << "maxdist dim=" << dim << " row=" << r;
      EXPECT_TRUE(
          SameBits(mn[r], kernel_core::CombineMinDist(d, radii[r], qr)))
          << "mindist dim=" << dim << " row=" << r;
      // Fused = separate, bit for bit.
      EXPECT_TRUE(SameBits(fused_mn[r], mn[r])) << "fused min row=" << r;
      EXPECT_TRUE(SameBits(fused_mx[r], mx[r])) << "fused max row=" << r;
    }

    // The scalar-reference batched forms agree with the dispatched ones.
    scalar_ref::BatchedSqDistSpan(rows.data(), dim, kCount, q.data(),
                                  ref.data());
    for (size_t r = 0; r < kCount; ++r) {
      EXPECT_TRUE(SameBits(ref[r], sq[r])) << "scalar_ref sq row=" << r;
    }
    scalar_ref::BatchedMinMaxDistSpan(rows.data(), radii.data(), dim, kCount,
                                      q.data(), qr, ref.data(), ref2.data());
    for (size_t r = 0; r < kCount; ++r) {
      EXPECT_TRUE(SameBits(ref[r], fused_mn[r]))
          << "scalar_ref min row=" << r;
      EXPECT_TRUE(SameBits(ref2[r], fused_mx[r]))
          << "scalar_ref max row=" << r;
    }
  }
}

TEST(KernelIdentityTest, ViewKernelsMatchSpanKernelCombines) {
  // The PR-5 lesson: the hypersphere.h view kernels are inline for ABI
  // reasons, which historically invited their bodies to drift from the
  // out-of-line span kernels. They now contain no local arithmetic; this
  // pins them, bit for bit, to the kernel_core combines over DistSpan —
  // and to the batched gather forms that claim identity with them.
  Rng rng(77003);
  for (size_t dim : kDims) {
    constexpr size_t kPairs = 64;
    std::vector<Hypersphere> spheres;
    spheres.reserve(kPairs + 1);
    for (size_t i = 0; i <= kPairs; ++i) {
      spheres.push_back(test::RandomSphere(&rng, dim, 3.0));
    }
    const SphereView q = spheres[kPairs].view();
    std::vector<SphereView> views(kPairs);
    for (size_t i = 0; i < kPairs; ++i) views[i] = spheres[i].view();

    std::vector<double> bmax(kPairs), bmin(kPairs), bmax2(kPairs);
    BatchedMinMaxDist(views.data(), kPairs, q, bmin.data(), bmax.data());
    BatchedMaxDist(views.data(), kPairs, q, bmax2.data());

    for (size_t i = 0; i < kPairs; ++i) {
      const SphereView a = views[i];
      const double d = DistSpan(a.center, q.center, a.dim);
      EXPECT_TRUE(SameBits(
          MaxDist(a, q),
          kernel_core::CombineMaxDist(d, a.radius, q.radius)))
          << "view maxdist dim=" << dim << " i=" << i;
      EXPECT_TRUE(SameBits(
          MinDist(a, q),
          kernel_core::CombineMinDist(d, a.radius, q.radius)))
          << "view mindist dim=" << dim << " i=" << i;
      EXPECT_EQ(Overlaps(a, q),
                kernel_core::OverlapFromSquared(
                    SquaredDistSpan(a.center, q.center, a.dim), a.radius,
                    q.radius))
          << "overlap dim=" << dim << " i=" << i;
      // Point-span overloads: rb folded as literal 0.0.
      EXPECT_TRUE(SameBits(
          MaxDist(a, q.center),
          kernel_core::CombineMaxDist(d, a.radius, 0.0)))
          << "view-point maxdist dim=" << dim;
      EXPECT_TRUE(SameBits(bmax[i], MaxDist(a, q))) << "gather max i=" << i;
      EXPECT_TRUE(SameBits(bmax2[i], MaxDist(a, q)))
          << "gather max-only i=" << i;
      EXPECT_TRUE(SameBits(bmin[i], MinDist(a, q))) << "gather min i=" << i;
    }
  }
}

TEST(KernelIdentityTest, OddDimStoreRowsNoFaultAndBitIdentical) {
  // SphereStore aligns only the arena BASE to 64 bytes; at odd dims every
  // subsequent row sits on an arbitrary 8-byte boundary. The vector path
  // must use unaligned loads by contract — this fuzz sweep would segfault
  // under -march=native if an aligned-load instruction ever crept in, and
  // the bit comparison catches value drift on the tails.
  Rng rng(77004);
  for (size_t dim : {size_t{1}, size_t{3}, size_t{7}, size_t{63}, size_t{65},
                     size_t{67}}) {
    constexpr size_t kRows = 129;
    SphereStore store(dim);
    store.Reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      store.Add(test::RandomSphere(&rng, dim, 2.0));
    }
    const std::vector<double> q = RandomSpan(&rng, dim);
    const double qr = rng.Uniform(0.0, 5.0);

    // Sub-ranges starting at every row offset: each start lands the block
    // base on a different 8-byte phase of the 64-byte arena alignment.
    std::vector<double> mn(kRows), mx(kRows);
    for (uint32_t start = 0; start < kRows; start += 7) {
      const size_t count = kRows - start;
      BatchedMinMaxDistSpan(store.center(start), store.radii_data() + start,
                            dim, count, q.data(), qr, mn.data(), mx.data());
      for (size_t r = 0; r < count; ++r) {
        const uint32_t slot = start + static_cast<uint32_t>(r);
        const double d = DistSpan(store.center(slot), q.data(), dim);
        EXPECT_TRUE(SameBits(
            mn[r],
            kernel_core::CombineMinDist(d, store.radius(slot), qr)))
            << "dim=" << dim << " start=" << start << " r=" << r;
        EXPECT_TRUE(SameBits(
            mx[r],
            kernel_core::CombineMaxDist(d, store.radius(slot), qr)))
            << "dim=" << dim << " start=" << start << " r=" << r;
        EXPECT_TRUE(SameBits(DistSpan(store.center(slot), q.data(), dim),
                             scalar_ref::DistSpan(store.center(slot),
                                                  q.data(), dim)))
            << "dim=" << dim << " slot=" << slot;
      }
    }
  }
}

}  // namespace
}  // namespace hyperdom
