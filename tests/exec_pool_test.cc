// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// ThreadPool and ParallelFor (src/exec/). The contracts under test: every
// submitted task runs exactly once, Wait() rethrows the first task
// exception and leaves the pool reusable, the destructor drains pending
// work, and ParallelFor covers [0, n) exactly once at any pool size.

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.h"

namespace hyperdom {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ResolveThreadsPicksHardwareConcurrencyForZero) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first batch fails"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);

  // The error is cleared: the next batch runs and waits cleanly.
  std::atomic<int> runs{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&runs] { runs.fetch_add(1); });
  }
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(runs.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&runs] { runs.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(runs.load(), 20);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();
  pool.Wait();  // idempotent
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    ParallelFor(&pool, kN, [&counts](size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> touched(64, 0);
  ParallelFor(nullptr, touched.size(),
              [&touched](size_t i) { touched[i] = 1; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 64);
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int runs = 0;
  ParallelFor(&pool, 0, [&runs](size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  ParallelFor(&pool, 1, [&runs](size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ParallelForTest, BodyExceptionPropagatesAndStopsNewClaims) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      ParallelFor(&pool, kN,
                  [&ran](size_t i) {
                    if (i == 5) throw std::runtime_error("body boom");
                    ran.fetch_add(1, std::memory_order_relaxed);
                  }),
      std::runtime_error);
  // Abandonment is best-effort but must cut well short of the full range.
  EXPECT_LT(ran.load(), kN);
}

}  // namespace
}  // namespace hyperdom
