// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/minmax.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hyperdom {
namespace {

TEST(MinMaxTest, Metadata) {
  MinMaxCriterion c;
  EXPECT_EQ(c.name(), "MinMax");
  EXPECT_TRUE(c.is_correct());
  EXPECT_FALSE(c.is_sound());
}

TEST(MinMaxTest, ObviousDominance) {
  MinMaxCriterion c;
  // Sa hugs the query, Sb is far: MaxDist(Sa,Sq)=3 < MinDist(Sb,Sq)=17.
  EXPECT_TRUE(c.Dominates(Hypersphere({2.0, 0.0}, 1.0),
                          Hypersphere({20.0, 0.0}, 2.0),
                          Hypersphere({0.0, 0.0}, 0.0)));
}

TEST(MinMaxTest, ObviousNonDominance) {
  MinMaxCriterion c;
  EXPECT_FALSE(c.Dominates(Hypersphere({20.0, 0.0}, 2.0),
                           Hypersphere({2.0, 0.0}, 1.0),
                           Hypersphere({0.0, 0.0}, 0.0)));
}

TEST(MinMaxTest, StrictInequalityAtTie) {
  MinMaxCriterion c;
  // MaxDist(Sa,Sq) = 5 = MinDist(Sb,Sq): a point of Sq is equidistant.
  EXPECT_FALSE(c.Dominates(Hypersphere({5.0, 0.0}, 0.0),
                           Hypersphere({-5.0, 0.0}, 0.0),
                           Hypersphere({0.0, 0.0}, 0.0)));
}

// Paper Lemma 3's construction: point objects on a vertical line, fat query
// sphere on Sa's side of the bisector. Dominance holds but MinMax says no.
TEST(MinMaxTest, Lemma3FalseNegativeWitness) {
  MinMaxCriterion c;
  const Hypersphere sa({0.0, 2.0}, 0.0);
  const Hypersphere sb({0.0, -2.0}, 0.0);
  const Hypersphere sq({0.0, 10.0}, 6.0);  // big radius, fully above bisector
  const test::Scene scene{sa, sb, sq};
  ASSERT_TRUE(test::OracleDominates(scene));   // truly dominates
  EXPECT_FALSE(c.Dominates(sa, sb, sq));       // ...but MinMax cannot see it
}

// With a point query (rq = 0) MinMax is exact (paper: "sound only when Sq
// is a point").
class MinMaxPointQueryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MinMaxPointQueryTest, ExactForPointQueries) {
  const size_t dim = GetParam();
  Rng rng(900 + dim);
  MinMaxCriterion c;
  int checked = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    test::Scene s = test::RandomScene(&rng, dim, 10.0);
    s.sq = Hypersphere(s.sq.center(), 0.0);  // collapse query to a point
    if (test::IsBorderline(s)) continue;
    ++checked;
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 3000);
}

INSTANTIATE_TEST_SUITE_P(Dims, MinMaxPointQueryTest,
                         ::testing::Values(2, 3, 6, 10));

TEST(MinMaxTest, OverlappingSpheresNeverDominate) {
  Rng rng(901);
  MinMaxCriterion c;
  for (int iter = 0; iter < 1000; ++iter) {
    // Force overlap by nesting Sb's center inside Sa.
    const Hypersphere sa = test::RandomSphere(&rng, 3, 20.0);
    const Hypersphere sb(sa.center(), rng.Uniform(0.0, 5.0));
    const Hypersphere sq = test::RandomSphere(&rng, 3, 10.0);
    EXPECT_FALSE(c.Dominates(sa, sb, sq));
  }
}

}  // namespace
}  // namespace hyperdom
