// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Tracer/Span tests: parent linkage, annotation, instant events, ring
// eviction, and record consistency under concurrent spans. Run under
// ASan/UBSan and TSan via the `obs` ctest label.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace hyperdom {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Instance().Enable(); }
  void TearDown() override { Tracer::Instance().Disable(); }
};

TEST(TraceDisabledTest, SpanIsInertWhileDisabled) {
  Tracer::Instance().Disable();
  Tracer::Instance().Clear();
  {
    Span span("should/not/record");
    EXPECT_FALSE(span.active());
    span.Annotate("key", "value");
    span.Event("nope");
  }
  EXPECT_TRUE(Tracer::Instance().Records().empty());
}

TEST_F(TraceTest, NestedSpansLinkToParent) {
  {
    Span outer("outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner("inner");
      EXPECT_TRUE(inner.active());
    }
  }
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 2u);
  // Inner completes (and records) first.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].parent, 0u);
  EXPECT_EQ(records[0].parent, records[1].id);
  EXPECT_EQ(records[0].tid, records[1].tid);
  EXPECT_GE(records[0].start_ns, records[1].start_ns);
  EXPECT_LE(records[0].dur_ns, records[1].dur_ns);
}

TEST_F(TraceTest, AnnotationsAreRecorded) {
  {
    Span span("annotated");
    span.Annotate("index", "ss");
    span.Annotate("nodes_visited", uint64_t{42});
  }
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].args.size(), 2u);
  EXPECT_EQ(records[0].args[0].key, "index");
  EXPECT_EQ(records[0].args[0].value, "ss");
  EXPECT_FALSE(records[0].args[0].numeric);
  EXPECT_EQ(records[0].args[1].key, "nodes_visited");
  EXPECT_EQ(records[0].args[1].value, "42");
  EXPECT_TRUE(records[0].args[1].numeric);
}

TEST_F(TraceTest, EventsAttachToEnclosingSpan) {
  {
    Span span("with/event");
    span.Event("deadline_expired");
  }
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].instant);
  EXPECT_EQ(records[0].name, "deadline_expired");
  EXPECT_EQ(records[0].parent, records[1].id);
}

TEST_F(TraceTest, CurrentEventFindsActiveSpan) {
  {
    Span span("enclosing");
    Span::CurrentEvent("fault/test_site");
  }
  Span::CurrentEvent("orphan_event");  // no active span: top-level instant
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "fault/test_site");
  EXPECT_EQ(records[0].parent, records[1].id);
  EXPECT_EQ(records[2].name, "orphan_event");
  EXPECT_EQ(records[2].parent, 0u);
}

TEST(TraceRingTest, EvictsOldestAndCountsDropped) {
  Tracer::Instance().Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span span("span_" + std::to_string(i));
  }
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(Tracer::Instance().dropped(), 6u);
  // The survivors are the newest four, still in arrival order.
  EXPECT_EQ(records[0].name, "span_6");
  EXPECT_EQ(records[3].name, "span_9");
  Tracer::Instance().Disable();
}

TEST_F(TraceTest, ConcurrentSpansStayConsistent) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer("outer");
        Span inner("inner");
        inner.Annotate("i", static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), size_t{kThreads} * kSpansPerThread * 2);
  // Ids are unique; every inner span's parent is an outer span recorded on
  // the same thread.
  std::map<uint64_t, const TraceRecord*> by_id;
  for (const auto& r : records) {
    EXPECT_TRUE(by_id.emplace(r.id, &r).second) << "duplicate span id";
  }
  size_t inner_count = 0;
  for (const auto& r : records) {
    if (r.name != "inner") continue;
    ++inner_count;
    auto parent = by_id.find(r.parent);
    ASSERT_NE(parent, by_id.end());
    EXPECT_EQ(parent->second->name, "outer");
    EXPECT_EQ(parent->second->tid, r.tid);
  }
  EXPECT_EQ(inner_count, size_t{kThreads} * kSpansPerThread);
}

TEST_F(TraceTest, ChromeTraceRenderShape) {
  {
    Span span("render/me");
    span.Annotate("count", uint64_t{3});
    span.Event("ping");
  }
  const std::string json = Tracer::Instance().RenderChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"render/me\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace hyperdom
