// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/polynomial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hyperdom {
namespace {

void ExpectRootsNear(const std::vector<double>& actual,
                     std::vector<double> expected, double tol = 1e-8) {
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(actual.size(), expected.size())
      << "got " << actual.size() << " roots, want " << expected.size();
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i],
                tol * std::max(1.0, std::fabs(expected[i])));
  }
}

TEST(LinearTest, Solves) {
  ExpectRootsNear(SolveLinear(2.0, -6.0), {3.0});
  ExpectRootsNear(SolveLinear(-1.0, 5.0), {5.0});
}

TEST(LinearTest, DegenerateHasNoRoots) {
  EXPECT_TRUE(SolveLinear(0.0, 3.0).empty());
  EXPECT_TRUE(SolveLinear(0.0, 0.0).empty());
}

TEST(QuadraticTest, TwoRoots) {
  ExpectRootsNear(SolveQuadratic(1.0, -3.0, 2.0), {1.0, 2.0});
  ExpectRootsNear(SolveQuadratic(2.0, 0.0, -8.0), {-2.0, 2.0});
}

TEST(QuadraticTest, DoubleRoot) {
  ExpectRootsNear(SolveQuadratic(1.0, -4.0, 4.0), {2.0});
}

TEST(QuadraticTest, NoRealRoots) {
  EXPECT_TRUE(SolveQuadratic(1.0, 0.0, 1.0).empty());
}

TEST(QuadraticTest, FallsBackToLinear) {
  ExpectRootsNear(SolveQuadratic(0.0, 2.0, -4.0), {2.0});
}

TEST(QuadraticTest, CancellationStability) {
  // x^2 - 1e8 x + 1 = 0: naive formula loses the small root entirely.
  const auto roots = SolveQuadratic(1.0, -1e8, 1.0);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 1e-8, 1e-14);
  EXPECT_NEAR(roots[1], 1e8, 1.0);
}

TEST(CubicTest, ThreeRealRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
  ExpectRootsNear(SolveCubic(1.0, -6.0, 11.0, -6.0), {1.0, 2.0, 3.0});
}

TEST(CubicTest, OneRealRoot) {
  // (x-2)(x^2+1) = x^3 - 2x^2 + x - 2
  ExpectRootsNear(SolveCubic(1.0, -2.0, 1.0, -2.0), {2.0});
}

TEST(CubicTest, TripleRoot) {
  // (x+1)^3 = x^3 + 3x^2 + 3x + 1
  ExpectRootsNear(SolveCubic(1.0, 3.0, 3.0, 1.0), {-1.0}, 1e-5);
}

TEST(CubicTest, DoublePlusSingleRoot) {
  // (x-1)^2 (x-4) = x^3 - 6x^2 + 9x - 4
  ExpectRootsNear(SolveCubic(1.0, -6.0, 9.0, -4.0), {1.0, 4.0}, 1e-6);
}

TEST(CubicTest, FallsBackToQuadratic) {
  ExpectRootsNear(SolveCubic(0.0, 1.0, -3.0, 2.0), {1.0, 2.0});
}

TEST(QuarticTest, FourRealRoots) {
  // (x-1)(x-2)(x-3)(x-4) = x^4 - 10x^3 + 35x^2 - 50x + 24
  ExpectRootsNear(SolveQuartic(1.0, -10.0, 35.0, -50.0, 24.0),
                  {1.0, 2.0, 3.0, 4.0});
}

TEST(QuarticTest, TwoRealRoots) {
  // (x^2+1)(x-1)(x+2) = x^4 + x^3 - x^2 + x - 2
  ExpectRootsNear(SolveQuartic(1.0, 1.0, -1.0, 1.0, -2.0), {-2.0, 1.0});
}

TEST(QuarticTest, NoRealRoots) {
  // (x^2+1)(x^2+4)
  EXPECT_TRUE(SolveQuartic(1.0, 0.0, 5.0, 0.0, 4.0).empty());
}

TEST(QuarticTest, Biquadratic) {
  // x^4 - 5x^2 + 4 = (x^2-1)(x^2-4)
  ExpectRootsNear(SolveQuartic(1.0, 0.0, -5.0, 0.0, 4.0),
                  {-2.0, -1.0, 1.0, 2.0});
}

TEST(QuarticTest, QuadrupleRoot) {
  // (x-1)^4 = x^4 - 4x^3 + 6x^2 - 4x + 1
  const auto roots = SolveQuartic(1.0, -4.0, 6.0, -4.0, 1.0);
  ASSERT_FALSE(roots.empty());
  for (double r : roots) EXPECT_NEAR(r, 1.0, 1e-3);
}

TEST(QuarticTest, FallsBackToCubic) {
  ExpectRootsNear(SolveQuartic(0.0, 1.0, -6.0, 11.0, -6.0), {1.0, 2.0, 3.0});
}

TEST(QuarticTest, LargeCoefficientScale) {
  // 1e9 * (x-1)(x-2)(x-3)(x-4): scaling must not change the roots.
  ExpectRootsNear(
      SolveQuartic(1e9, -10e9, 35e9, -50e9, 24e9), {1.0, 2.0, 3.0, 4.0},
      1e-6);
}

TEST(EvaluateTest, HornerMatchesDirect) {
  const std::vector<double> coeffs = {2.0, -3.0, 0.5, 7.0};  // cubic
  const double x = 1.7;
  const double direct = 2.0 * x * x * x - 3.0 * x * x + 0.5 * x + 7.0;
  EXPECT_NEAR(EvaluatePolynomial(coeffs, x), direct, 1e-12);
}

TEST(EvaluateTest, DerivativeMatchesFiniteDifference) {
  const std::vector<double> coeffs = {1.0, -2.0, 3.0, -4.0, 5.0};  // quartic
  const double x = 0.9;
  const double h = 1e-6;
  const double fd = (EvaluatePolynomial(coeffs, x + h) -
                     EvaluatePolynomial(coeffs, x - h)) /
                    (2.0 * h);
  EXPECT_NEAR(EvaluatePolynomialDerivative(coeffs, x), fd, 1e-5);
}

TEST(EvaluateTest, ConstantDerivativeIsZero) {
  EXPECT_DOUBLE_EQ(EvaluatePolynomialDerivative({5.0}, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(EvaluatePolynomialDerivative({}, 3.0), 0.0);
}

TEST(PolishTest, ImprovesPerturbedRoot) {
  const std::vector<double> coeffs = {1.0, -10.0, 35.0, -50.0, 24.0};
  const double polished = PolishRoot(coeffs, 2.9);  // true root at 3
  EXPECT_NEAR(polished, 3.0, 1e-9);
}

TEST(PolishTest, NeverWorsens) {
  const std::vector<double> coeffs = {1.0, 0.0, 1.0};  // no real root
  const double x = PolishRoot(coeffs, 0.5);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_LE(std::fabs(EvaluatePolynomial(coeffs, x)),
            std::fabs(EvaluatePolynomial(coeffs, 0.5)) + 1e-15);
}

// Property sweep: construct quartics from known random roots and verify the
// solver recovers all of them.
class QuarticRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(QuarticRoundTripTest, RecoversConstructedRoots) {
  Rng rng(1000 + GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    double r[4];
    for (double& v : r) v = rng.Uniform(-20.0, 20.0);
    std::sort(r, r + 4);
    // Reject near-duplicate roots: multiplicity makes exact counting a
    // floating-point coin flip, which is not what this sweep pins.
    bool distinct = true;
    for (int i = 0; i < 3; ++i) {
      if (r[i + 1] - r[i] < 0.05) distinct = false;
    }
    if (!distinct) continue;
    const double scale = rng.Uniform(0.5, 2.0);
    // Expand (x-r0)(x-r1)(x-r2)(x-r3) * scale.
    const double e1 = r[0] + r[1] + r[2] + r[3];
    const double e2 = r[0] * r[1] + r[0] * r[2] + r[0] * r[3] +
                      r[1] * r[2] + r[1] * r[3] + r[2] * r[3];
    const double e3 = r[0] * r[1] * r[2] + r[0] * r[1] * r[3] +
                      r[0] * r[2] * r[3] + r[1] * r[2] * r[3];
    const double e4 = r[0] * r[1] * r[2] * r[3];
    const auto roots =
        SolveQuartic(scale, -scale * e1, scale * e2, -scale * e3, scale * e4);
    ASSERT_EQ(roots.size(), 4u) << "iter " << iter;
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(roots[i], r[i], 1e-6 * std::max(1.0, std::fabs(r[i])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuarticRoundTripTest,
                         ::testing::Values(0, 1, 2, 3));

// Property sweep: for random coefficients, every returned root must have a
// small residual relative to the polynomial's scale at that point.
class QuarticResidualTest : public ::testing::TestWithParam<int> {};

TEST_P(QuarticResidualTest, ResidualsAreSmall) {
  Rng rng(2000 + GetParam());
  for (int iter = 0; iter < 1000; ++iter) {
    const double a = rng.Uniform(-100.0, 100.0);
    const double b = rng.Uniform(-100.0, 100.0);
    const double c = rng.Uniform(-100.0, 100.0);
    const double d = rng.Uniform(-100.0, 100.0);
    const double e = rng.Uniform(-100.0, 100.0);
    for (double x : SolveQuartic(a, b, c, d, e)) {
      ASSERT_TRUE(std::isfinite(x));
      const double x2 = x * x;
      const double scale = std::fabs(a) * x2 * x2 + std::fabs(b) * x2 * std::fabs(x) +
                           std::fabs(c) * x2 + std::fabs(d) * std::fabs(x) +
                           std::fabs(e) + 1.0;
      const double residual = EvaluatePolynomial({a, b, c, d, e}, x);
      EXPECT_LE(std::fabs(residual), 1e-7 * scale) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuarticResidualTest,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace hyperdom
