// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/polynomial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hyperdom {
namespace {

void ExpectRootsNear(const std::vector<double>& actual,
                     std::vector<double> expected, double tol = 1e-8) {
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(actual.size(), expected.size())
      << "got " << actual.size() << " roots, want " << expected.size();
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i],
                tol * std::max(1.0, std::fabs(expected[i])));
  }
}

TEST(LinearTest, Solves) {
  ExpectRootsNear(SolveLinear(2.0, -6.0), {3.0});
  ExpectRootsNear(SolveLinear(-1.0, 5.0), {5.0});
}

TEST(LinearTest, DegenerateHasNoRoots) {
  EXPECT_TRUE(SolveLinear(0.0, 3.0).empty());
  EXPECT_TRUE(SolveLinear(0.0, 0.0).empty());
}

TEST(QuadraticTest, TwoRoots) {
  ExpectRootsNear(SolveQuadratic(1.0, -3.0, 2.0), {1.0, 2.0});
  ExpectRootsNear(SolveQuadratic(2.0, 0.0, -8.0), {-2.0, 2.0});
}

TEST(QuadraticTest, DoubleRoot) {
  ExpectRootsNear(SolveQuadratic(1.0, -4.0, 4.0), {2.0});
}

TEST(QuadraticTest, NoRealRoots) {
  EXPECT_TRUE(SolveQuadratic(1.0, 0.0, 1.0).empty());
}

TEST(QuadraticTest, FallsBackToLinear) {
  ExpectRootsNear(SolveQuadratic(0.0, 2.0, -4.0), {2.0});
}

TEST(QuadraticTest, CancellationStability) {
  // x^2 - 1e8 x + 1 = 0: naive formula loses the small root entirely.
  const auto roots = SolveQuadratic(1.0, -1e8, 1.0);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 1e-8, 1e-14);
  EXPECT_NEAR(roots[1], 1e8, 1.0);
}

TEST(CubicTest, ThreeRealRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
  ExpectRootsNear(SolveCubic(1.0, -6.0, 11.0, -6.0), {1.0, 2.0, 3.0});
}

TEST(CubicTest, OneRealRoot) {
  // (x-2)(x^2+1) = x^3 - 2x^2 + x - 2
  ExpectRootsNear(SolveCubic(1.0, -2.0, 1.0, -2.0), {2.0});
}

TEST(CubicTest, TripleRoot) {
  // (x+1)^3 = x^3 + 3x^2 + 3x + 1
  ExpectRootsNear(SolveCubic(1.0, 3.0, 3.0, 1.0), {-1.0}, 1e-5);
}

TEST(CubicTest, DoublePlusSingleRoot) {
  // (x-1)^2 (x-4) = x^3 - 6x^2 + 9x - 4
  ExpectRootsNear(SolveCubic(1.0, -6.0, 9.0, -4.0), {1.0, 4.0}, 1e-6);
}

TEST(CubicTest, FallsBackToQuadratic) {
  ExpectRootsNear(SolveCubic(0.0, 1.0, -3.0, 2.0), {1.0, 2.0});
}

TEST(QuarticTest, FourRealRoots) {
  // (x-1)(x-2)(x-3)(x-4) = x^4 - 10x^3 + 35x^2 - 50x + 24
  ExpectRootsNear(SolveQuartic(1.0, -10.0, 35.0, -50.0, 24.0),
                  {1.0, 2.0, 3.0, 4.0});
}

TEST(QuarticTest, TwoRealRoots) {
  // (x^2+1)(x-1)(x+2) = x^4 + x^3 - x^2 + x - 2
  ExpectRootsNear(SolveQuartic(1.0, 1.0, -1.0, 1.0, -2.0), {-2.0, 1.0});
}

TEST(QuarticTest, NoRealRoots) {
  // (x^2+1)(x^2+4)
  EXPECT_TRUE(SolveQuartic(1.0, 0.0, 5.0, 0.0, 4.0).empty());
}

TEST(QuarticTest, Biquadratic) {
  // x^4 - 5x^2 + 4 = (x^2-1)(x^2-4)
  ExpectRootsNear(SolveQuartic(1.0, 0.0, -5.0, 0.0, 4.0),
                  {-2.0, -1.0, 1.0, 2.0});
}

TEST(QuarticTest, QuadrupleRoot) {
  // (x-1)^4 = x^4 - 4x^3 + 6x^2 - 4x + 1
  const auto roots = SolveQuartic(1.0, -4.0, 6.0, -4.0, 1.0);
  ASSERT_FALSE(roots.empty());
  for (double r : roots) EXPECT_NEAR(r, 1.0, 1e-3);
}

TEST(QuarticTest, FallsBackToCubic) {
  ExpectRootsNear(SolveQuartic(0.0, 1.0, -6.0, 11.0, -6.0), {1.0, 2.0, 3.0});
}

TEST(QuarticTest, RelativelyTinyLeadingCoefficientFallsBackToCubic) {
  // The leading coefficient is nonzero but ~1e-13 of the coefficient scale:
  // treating the quartic as genuine would divide everything by it and
  // manufacture a wild spurious root. The solver must degrade by relative
  // magnitude, not by an exact a == 0 test.
  const double tiny = 1e-13;
  ExpectRootsNear(SolveQuartic(tiny, 1.0, -6.0, 11.0, -6.0),
                  {1.0, 2.0, 3.0}, 1e-6);
}

TEST(CubicTest, RelativelyTinyLeadingCoefficientFallsBackToQuadratic) {
  const double tiny = 1e-13;
  ExpectRootsNear(SolveCubic(tiny, 1.0, -3.0, 2.0), {1.0, 2.0}, 1e-6);
}

TEST(QuarticTest, TinyButGenuineLeadingCoefficientIsKept) {
  // A uniformly tiny quartic is NOT degenerate: all coefficients share the
  // scale, so the relative test keeps degree 4.
  ExpectRootsNear(
      SolveQuartic(1e-13, -10e-13, 35e-13, -50e-13, 24e-13),
      {1.0, 2.0, 3.0, 4.0}, 1e-6);
}

TEST(QuarticTest, LargeCoefficientScale) {
  // 1e9 * (x-1)(x-2)(x-3)(x-4): scaling must not change the roots.
  ExpectRootsNear(
      SolveQuartic(1e9, -10e9, 35e9, -50e9, 24e9), {1.0, 2.0, 3.0, 4.0},
      1e-6);
}

TEST(EvaluateTest, HornerMatchesDirect) {
  const std::vector<double> coeffs = {2.0, -3.0, 0.5, 7.0};  // cubic
  const double x = 1.7;
  const double direct = 2.0 * x * x * x - 3.0 * x * x + 0.5 * x + 7.0;
  EXPECT_NEAR(EvaluatePolynomial(coeffs, x), direct, 1e-12);
}

TEST(EvaluateTest, DerivativeMatchesFiniteDifference) {
  const std::vector<double> coeffs = {1.0, -2.0, 3.0, -4.0, 5.0};  // quartic
  const double x = 0.9;
  const double h = 1e-6;
  const double fd = (EvaluatePolynomial(coeffs, x + h) -
                     EvaluatePolynomial(coeffs, x - h)) /
                    (2.0 * h);
  EXPECT_NEAR(EvaluatePolynomialDerivative(coeffs, x), fd, 1e-5);
}

TEST(EvaluateTest, ConstantDerivativeIsZero) {
  EXPECT_DOUBLE_EQ(EvaluatePolynomialDerivative({5.0}, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(EvaluatePolynomialDerivative({}, 3.0), 0.0);
}

TEST(PolishTest, ImprovesPerturbedRoot) {
  const std::vector<double> coeffs = {1.0, -10.0, 35.0, -50.0, 24.0};
  const double polished = PolishRoot(coeffs, 2.9);  // true root at 3
  EXPECT_NEAR(polished, 3.0, 1e-9);
}

TEST(PolishTest, NeverWorsens) {
  const std::vector<double> coeffs = {1.0, 0.0, 1.0};  // no real root
  const double x = PolishRoot(coeffs, 0.5);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_LE(std::fabs(EvaluatePolynomial(coeffs, x)),
            std::fabs(EvaluatePolynomial(coeffs, 0.5)) + 1e-15);
}

// Property sweep: construct quartics from known random roots and verify the
// solver recovers all of them.
class QuarticRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(QuarticRoundTripTest, RecoversConstructedRoots) {
  Rng rng(1000 + GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    double r[4];
    for (double& v : r) v = rng.Uniform(-20.0, 20.0);
    std::sort(r, r + 4);
    // Reject near-duplicate roots: multiplicity makes exact counting a
    // floating-point coin flip, which is not what this sweep pins.
    bool distinct = true;
    for (int i = 0; i < 3; ++i) {
      if (r[i + 1] - r[i] < 0.05) distinct = false;
    }
    if (!distinct) continue;
    const double scale = rng.Uniform(0.5, 2.0);
    // Expand (x-r0)(x-r1)(x-r2)(x-r3) * scale.
    const double e1 = r[0] + r[1] + r[2] + r[3];
    const double e2 = r[0] * r[1] + r[0] * r[2] + r[0] * r[3] +
                      r[1] * r[2] + r[1] * r[3] + r[2] * r[3];
    const double e3 = r[0] * r[1] * r[2] + r[0] * r[1] * r[3] +
                      r[0] * r[2] * r[3] + r[1] * r[2] * r[3];
    const double e4 = r[0] * r[1] * r[2] * r[3];
    const auto roots =
        SolveQuartic(scale, -scale * e1, scale * e2, -scale * e3, scale * e4);
    ASSERT_EQ(roots.size(), 4u) << "iter " << iter;
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(roots[i], r[i], 1e-6 * std::max(1.0, std::fabs(r[i])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuarticRoundTripTest,
                         ::testing::Values(0, 1, 2, 3));

// Property sweep: for random coefficients, every returned root must have a
// small residual relative to the polynomial's scale at that point.
class QuarticResidualTest : public ::testing::TestWithParam<int> {};

TEST_P(QuarticResidualTest, ResidualsAreSmall) {
  Rng rng(2000 + GetParam());
  for (int iter = 0; iter < 1000; ++iter) {
    const double a = rng.Uniform(-100.0, 100.0);
    const double b = rng.Uniform(-100.0, 100.0);
    const double c = rng.Uniform(-100.0, 100.0);
    const double d = rng.Uniform(-100.0, 100.0);
    const double e = rng.Uniform(-100.0, 100.0);
    for (double x : SolveQuartic(a, b, c, d, e)) {
      ASSERT_TRUE(std::isfinite(x));
      const double x2 = x * x;
      const double scale = std::fabs(a) * x2 * x2 + std::fabs(b) * x2 * std::fabs(x) +
                           std::fabs(c) * x2 + std::fabs(d) * std::fabs(x) +
                           std::fabs(e) + 1.0;
      const double residual = EvaluatePolynomial({a, b, c, d, e}, x);
      EXPECT_LE(std::fabs(residual), 1e-7 * scale) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuarticResidualTest,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Error-bounded evaluation and certified roots.
// ---------------------------------------------------------------------------

// The running-error bound must dominate the true rounding error. Compare
// the double Horner value against a long double reference evaluation.
TEST(EvaluateWithErrorTest, BoundDominatesTrueError) {
  Rng rng(3100);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<double> coeffs(5);
    for (double& c : coeffs) c = rng.Uniform(-100.0, 100.0);
    const double x = rng.Uniform(-50.0, 50.0);
    const PolynomialEval ev = EvaluatePolynomialWithError(coeffs, x);
    EXPECT_DOUBLE_EQ(ev.value, EvaluatePolynomial(coeffs, x));
    long double exact = 0.0L;
    for (double c : coeffs) exact = exact * static_cast<long double>(x) + c;
    const long double true_err =
        std::fabs(static_cast<long double>(ev.value) - exact);
    EXPECT_GE(static_cast<long double>(ev.error_bound), true_err)
        << "x=" << x;
    EXPECT_GE(ev.error_bound, 0.0);
  }
}

TEST(EvaluateWithErrorTest, ExactCasesHaveTinyBounds) {
  // Small-integer arithmetic is exact, and the bound must reflect that the
  // error is at most a few ULPs of the running magnitude.
  const PolynomialEval ev = EvaluatePolynomialWithError({1.0, -3.0, 2.0}, 2.0);
  EXPECT_DOUBLE_EQ(ev.value, 0.0);
  EXPECT_LT(ev.error_bound, 1e-14);
}

TEST(CertifiedRootsTest, BoundsEncloseTrueRoots) {
  // Well-separated constructed roots: each certified interval must contain
  // the exact root, and the bounds must be tight (far below the root gap).
  const auto certified = SolveQuarticWithBounds(1.0, -10.0, 35.0, -50.0, 24.0);
  ASSERT_EQ(certified.size(), 4u);
  const double expected[] = {1.0, 2.0, 3.0, 4.0};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(certified[i].error_bound));
    EXPECT_LE(std::fabs(certified[i].root - expected[i]),
              certified[i].error_bound + 1e-12);
    EXPECT_LT(certified[i].error_bound, 1e-6);
  }
}

TEST(CertifiedRootsTest, ClusteredRootsGetInfiniteBound) {
  // (x-1)^4: Newton's bound is meaningless at a quadruple root, so the
  // certificate must refuse (bound = +inf) rather than pretend precision.
  const auto certified = SolveQuarticWithBounds(1.0, -4.0, 6.0, -4.0, 1.0);
  ASSERT_FALSE(certified.empty());
  bool any_refused = false;
  for (const auto& cr : certified) {
    if (std::isinf(cr.error_bound)) any_refused = true;
  }
  EXPECT_TRUE(any_refused);
}

TEST(CertifiedRootsTest, RandomRootsStayInsideBounds) {
  Rng rng(3200);
  for (int iter = 0; iter < 500; ++iter) {
    double r[4];
    for (double& v : r) v = rng.Uniform(-20.0, 20.0);
    std::sort(r, r + 4);
    bool distinct = true;
    for (int i = 0; i < 3; ++i) {
      if (r[i + 1] - r[i] < 0.1) distinct = false;
    }
    if (!distinct) continue;
    const double e1 = r[0] + r[1] + r[2] + r[3];
    const double e2 = r[0] * r[1] + r[0] * r[2] + r[0] * r[3] + r[1] * r[2] +
                      r[1] * r[3] + r[2] * r[3];
    const double e3 = r[0] * r[1] * r[2] + r[0] * r[1] * r[3] +
                      r[0] * r[2] * r[3] + r[1] * r[2] * r[3];
    const double e4 = r[0] * r[1] * r[2] * r[3];
    const auto certified = SolveQuarticWithBounds(1.0, -e1, e2, -e3, e4);
    ASSERT_EQ(certified.size(), 4u) << "iter " << iter;
    for (size_t i = 0; i < 4; ++i) {
      // The coefficients themselves are rounded, so allow the constructed
      // root to sit a hair outside the certificate for the rounded quartic.
      const double slack = 1e-9 * std::max(1.0, std::fabs(r[i]));
      EXPECT_LE(std::fabs(certified[i].root - r[i]),
                certified[i].error_bound + slack)
          << "iter " << iter << " root " << i;
    }
  }
}

}  // namespace
}  // namespace hyperdom
