// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/sampling.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hyperdom {
namespace {

TEST(SampleUnitBallTest, StaysInsideTheBall) {
  Rng rng(3000);
  for (size_t dim : {1u, 2u, 3u, 10u}) {
    for (int i = 0; i < 2000; ++i) {
      const Point p = SampleUnitBall(&rng, dim);
      ASSERT_EQ(p.size(), dim);
      EXPECT_LE(Norm(p), 1.0 + 1e-12);
    }
  }
}

TEST(SampleUnitBallTest, MeanIsTheCenter) {
  Rng rng(3001);
  const size_t dim = 3;
  Point sum(dim, 0.0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum = Add(sum, SampleUnitBall(&rng, dim));
  for (double v : sum) EXPECT_NEAR(v / n, 0.0, 0.01);
}

TEST(SampleUnitBallTest, RadialDistributionIsUniformInVolume) {
  // In d dimensions, P[ ||X|| <= r ] = r^d; check the median.
  Rng rng(3002);
  for (size_t dim : {2u, 5u}) {
    const int n = 50'000;
    int below_median_radius = 0;
    const double median_radius = std::pow(0.5, 1.0 / dim);
    for (int i = 0; i < n; ++i) {
      if (Norm(SampleUnitBall(&rng, dim)) <= median_radius) {
        ++below_median_radius;
      }
    }
    EXPECT_NEAR(static_cast<double>(below_median_radius) / n, 0.5, 0.01)
        << "dim " << dim;
  }
}

TEST(SampleInBallTest, RespectsCenterAndRadius) {
  Rng rng(3003);
  const Hypersphere ball({10.0, -5.0, 2.0}, 7.0);
  Point sum(3, 0.0);
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const Point p = SampleInBall(&rng, ball);
    EXPECT_TRUE(ball.Contains(p));
    sum = Add(sum, p);
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sum[i] / n, ball.center()[i], 0.1);
  }
}

TEST(SampleInBallTest, ZeroRadiusReturnsCenter) {
  Rng rng(3004);
  const Hypersphere point_ball({1.0, 2.0}, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SampleInBall(&rng, point_ball), (Point{1, 2}));
  }
}

TEST(SampleOnSphereTest, LandsExactlyOnTheBoundary) {
  Rng rng(3005);
  const Hypersphere ball({3.0, 4.0, 5.0, 6.0}, 2.5);
  for (int i = 0; i < 2000; ++i) {
    const Point p = SampleOnSphere(&rng, ball);
    EXPECT_NEAR(Dist(p, ball.center()), 2.5, 1e-9);
  }
}

TEST(SampleOnSphereTest, DirectionallyBalanced) {
  Rng rng(3006);
  const Hypersphere ball({0.0, 0.0}, 1.0);
  int quadrant_counts[4] = {0, 0, 0, 0};
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    const Point p = SampleOnSphere(&rng, ball);
    const int q = (p[0] >= 0 ? 0 : 1) + (p[1] >= 0 ? 0 : 2);
    ++quadrant_counts[q];
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(static_cast<double>(quadrant_counts[q]) / n, 0.25, 0.01);
  }
}

}  // namespace
}  // namespace hyperdom
