// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hyperdom {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.Uniform(-5.0, 17.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 17.0);
  }
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = rng.UniformU64(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // every residue hit over 10k draws
}

TEST(RngTest, UniformU64OfOneIsZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(12);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.5);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 2.5, 0.05);
}

TEST(RngTest, UniformMeanRoughlyCentered) {
  Rng rng(13);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 200.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  Rng child1_again = parent.Fork(1);
  // Same stream id -> same stream; different ids -> different streams.
  EXPECT_EQ(child1.NextU64(), child1_again.NextU64());
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextU64() == c2.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
  (void)child2;
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.Fork(9);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, BitsLookBalanced) {
  Rng rng(77);
  int ones = 0;
  const int draws = 10'000;
  for (int i = 0; i < draws; ++i) {
    ones += __builtin_popcountll(rng.NextU64());
  }
  const double frac = static_cast<double>(ones) / (64.0 * draws);
  EXPECT_NEAR(frac, 0.5, 0.005);
}

}  // namespace
}  // namespace hyperdom
