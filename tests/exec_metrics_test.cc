// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Reconciliation between the batch engine's returned aggregates and the
// process-wide metrics registry: per-query stats recorded by the kNN/range
// drivers from worker threads must merge through the sharded registry into
// exactly the sums BatchStats reports, at any thread count. This is the
// export-facing half of the determinism contract — an operator reading
// --metrics-out sees numbers that add up.

#include <gtest/gtest.h>

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

#include <atomic>
#include <vector>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "exec/batch.h"
#include "obs/metrics.h"

namespace hyperdom {
namespace {

std::vector<Hypersphere> TestData(uint64_t seed, size_t n) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

uint64_t CounterValue(const obs::MetricDef& def, std::string_view key,
                      std::string_view value) {
  return obs::MetricsRegistry::Instance()
      .GetCounter(def, key, value)
      ->Value();
}

TEST(ExecMetricsTest, BatchKnnCountersMatchReturnedTotals) {
  const auto data = TestData(8100, 800);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  HyperbolaCriterion criterion;
  KnnOptions options;
  options.k = 5;
  const auto queries = MakeKnnQueries(data, 24, 8101);

  for (size_t threads : {size_t{1}, size_t{8}}) {
    obs::MetricsRegistry::Instance().ResetAll();
    BatchOptions exec;
    exec.threads = threads;
    const BatchKnnResult batch =
        BatchKnn(tree, queries, criterion, options, exec);

    // Driver-side per-query counters, merged across worker shards, must
    // equal the arithmetic sums the batch returned.
    EXPECT_EQ(CounterValue(obs::kKnnQueries, "index", "ss"),
              batch.stats.queries)
        << threads << " threads";
    EXPECT_EQ(CounterValue(obs::kKnnNodesVisited, "index", "ss"),
              batch.stats.totals.nodes_visited)
        << threads << " threads";
    EXPECT_EQ(CounterValue(obs::kKnnNodesPruned, "index", "ss"),
              batch.stats.totals.nodes_pruned)
        << threads << " threads";
    EXPECT_EQ(CounterValue(obs::kKnnEntriesAccessed, "index", "ss"),
              batch.stats.totals.entries_accessed)
        << threads << " threads";
    EXPECT_EQ(CounterValue(obs::kKnnDominanceChecks, "index", "ss"),
              batch.stats.totals.dominance_checks)
        << threads << " threads";

    // Batch-engine counters.
    EXPECT_EQ(CounterValue(obs::kBatchRuns, "kind", "knn"), 1u);
    EXPECT_EQ(CounterValue(obs::kBatchQueries, "kind", "knn"),
              queries.size());
  }
}

TEST(ExecMetricsTest, BatchRangeCountersMatchReturnedTotals) {
  const auto data = TestData(8200, 600);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const auto queries = MakeKnnQueries(data, 15, 8201);

  obs::MetricsRegistry::Instance().ResetAll();
  BatchOptions exec;
  exec.threads = 8;
  const BatchRangeResult batch =
      BatchRange(tree, queries, 30.0, Deadline::Unbounded(), exec);

  EXPECT_EQ(obs::MetricsRegistry::Instance()
                .GetCounter(obs::kRangeQueries)
                ->Value(),
            queries.size());
  EXPECT_EQ(CounterValue(obs::kBatchRuns, "kind", "range"), 1u);
  EXPECT_EQ(CounterValue(obs::kBatchQueries, "kind", "range"),
            queries.size());
  EXPECT_EQ(batch.queries, queries.size());
}

TEST(ExecMetricsTest, PoolRegistersItsInstruments) {
  obs::MetricsRegistry::Instance().ResetAll();
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  for (int i = 0; i < 5; ++i) pool.Submit([&runs] { runs.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(runs.load(), 5);
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::Instance().GetGauge(obs::kExecPoolThreads.name)
          ->Value(),
      3.0);
  EXPECT_EQ(obs::MetricsRegistry::Instance()
                .GetCounter(obs::kExecTasks)
                ->Value(),
            5u);
}

}  // namespace
}  // namespace hyperdom

#else

TEST(ExecMetricsTest, SkippedWithoutObservability) {
  GTEST_SKIP() << "observability compiled out";
}

#endif  // HYPERDOM_OBSERVABILITY_ENABLED
