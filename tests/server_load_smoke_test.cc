// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Smoke job for the server load generator: runs bench/server_load in
// --smoke mode and validates the emitted hyperdom-bench-v1 JSON — the CI
// guard for bench/results/BENCH_server.json and the check that the whole
// client/server request path works when driven as a subprocess.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace hyperdom {
namespace {

#if !defined(HYPERDOM_SERVER_LOAD_BINARY)
#error "server_load_smoke_test requires HYPERDOM_SERVER_LOAD_BINARY"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ServerLoadSmokeTest, EmitsValidBenchArtifact) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/BENCH_server_smoke.json";
  const std::string command = std::string(HYPERDOM_SERVER_LOAD_BINARY) +
                              " --smoke --json-out=" + json_path +
                              " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string json = ReadFileOrDie(json_path);
  EXPECT_NE(json.find("\"schema\": \"hyperdom-bench-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"server_load\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"throughput\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"overload shedding\""),
            std::string::npos);
  EXPECT_NE(json.find("\"concurrency\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"qps\": "), std::string::npos);
  EXPECT_NE(json.find("\"p50_micros\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99_micros\": "), std::string::npos);
  EXPECT_NE(json.find("\"shed_rate\": "), std::string::npos);
  EXPECT_NE(json.find("\"best_effort_rate\": "), std::string::npos);
}

}  // namespace
}  // namespace hyperdom
