// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/status.h"

#include <gtest/gtest.h>

namespace hyperdom {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* prefix;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad"), StatusCode::kInvalidArgument,
       "Invalid argument"},
      {Status::NotFound("missing"), StatusCode::kNotFound, "Not found"},
      {Status::IOError("disk"), StatusCode::kIOError, "IO error"},
      {Status::OutOfRange("idx"), StatusCode::kOutOfRange, "Out of range"},
      {Status::Corruption("bits"), StatusCode::kCorruption, "Corruption"},
      {Status::NotSupported("nope"), StatusCode::kNotSupported,
       "Not supported"},
      {Status::Internal("bug"), StatusCode::kInternal, "Internal"},
      {Status::Overloaded("shed"), StatusCode::kOverloaded, "Overloaded"},
      {Status::DeadlineExceeded("late"), StatusCode::kDeadlineExceeded,
       "Deadline exceeded"},
      {Status::ProtocolError("junk"), StatusCode::kProtocolError,
       "Protocol error"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString().rfind(c.prefix, 0), 0u)
        << c.status.ToString();
    EXPECT_NE(c.status.ToString().find(": "), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  EXPECT_EQ(Status::NotFound("thing x").ToString(), "Not found: thing x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    HYPERDOM_RETURN_NOT_OK(Status::Corruption("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kCorruption);

  auto succeeds = []() -> Status {
    HYPERDOM_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace hyperdom
