// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Smoke job for the mutation benchmark: runs bench/mutation_throughput
// in --smoke mode and validates the emitted hyperdom-bench-v1 JSON — the
// CI guard for bench/results/BENCH_mutation.json and a subprocess-level
// check that concurrent mutators and epoch-pinned readers coexist.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace hyperdom {
namespace {

#if !defined(HYPERDOM_MUTATION_BENCH_BINARY)
#error "mutation_bench_smoke_test requires HYPERDOM_MUTATION_BENCH_BINARY"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MutationBenchSmokeTest, EmitsValidBenchArtifact) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/BENCH_mutation_smoke.json";
  const std::string command = std::string(HYPERDOM_MUTATION_BENCH_BINARY) +
                              " --smoke --json-out=" + json_path +
                              " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string json = ReadFileOrDie(json_path);
  EXPECT_NE(json.find("\"schema\": \"hyperdom-bench-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"mutation\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"pure insert\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"mixed read/write\""),
            std::string::npos);
  EXPECT_NE(json.find("\"insert_qps\": "), std::string::npos);
  EXPECT_NE(json.find("\"write_ratio\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"mutation_qps\": "), std::string::npos);
  EXPECT_NE(json.find("\"query_p50_micros\": "), std::string::npos);
  EXPECT_NE(json.find("\"query_p99_micros\": "), std::string::npos);
  EXPECT_NE(json.find("\"epoch_lag_max\": "), std::string::npos);
}

}  // namespace
}  // namespace hyperdom
