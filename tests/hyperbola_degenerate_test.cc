// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regression suite for the numerically nasty corners of the Hyperbola
// kernel — each family here broke a draft implementation at least once
// during development:
//   * near-degenerate hyperbolas (ra + rb approaching Dist(ca, cb), i.e.
//     eccentricity -> 1, vanishing semi-minor axis),
//   * queries exactly on / within rounding of the focal axis, where the
//     Lagrange system's denominators vanish (the "singular branches"),
//   * queries on the bisector plane,
//   * extreme coordinate scales (the quartic coefficients grow like the
//     12th power of the scene scale).

#include <gtest/gtest.h>

#include <cmath>

#include "dominance/hyperbola.h"
#include "geometry/focal_frame.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(HyperbolaDegenerateTest, NearDegenerateEccentricitySweep) {
  // rab/2alpha in {0.5, 0.9, 0.99, 0.999, 0.999999}: the semi-minor axis
  // B = sqrt(alpha^2 - (rab/2)^2) collapses; the kernel must stay within
  // reference tolerance everywhere.
  Rng rng(5000);
  for (double ecc : {0.5, 0.9, 0.99, 0.999, 0.999999}) {
    for (int iter = 0; iter < 400; ++iter) {
      const double alpha = rng.Uniform(0.5, 20.0);
      const double rab = 2.0 * alpha * ecc;
      const double y1 = rng.Uniform(-4.0 * alpha, 4.0 * alpha);
      const double y2 = rng.Uniform(0.0, 4.0 * alpha);
      const double dq = HyperbolaMinDistQuartic(alpha, rab, y1, y2);
      const double dp = HyperbolaMinDistParametric(alpha, rab, y1, y2);
      // The quartic must never report a distance BELOW the truth (that
      // breaks soundness); small overestimates versus the scan reference
      // are tolerable at extreme eccentricity.
      EXPECT_GE(dq, dp - 1e-5 * (1.0 + alpha))
          << "ecc=" << ecc << " alpha=" << alpha << " y1=" << y1
          << " y2=" << y2;
      EXPECT_LE(dq, dp + 2e-4 * (1.0 + alpha))
          << "ecc=" << ecc << " alpha=" << alpha << " y1=" << y1
          << " y2=" << y2;
    }
  }
}

TEST(HyperbolaDegenerateTest, DiagonalTouchingFamilyDecisions) {
  // The Lemma-5 style family that produced the historical false negatives:
  // three equal-radius spheres along the diagonal with the middle gap a
  // hair over tangency, query radius equal to the object radius.
  Rng rng(5001);
  HyperbolaCriterion c;
  int checked = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    const double r = rng.Uniform(0.2, 8.0);
    const double delta = rng.Uniform(1e-4, 0.8);
    const double diag = 1.0 / std::sqrt(2.0);
    const test::Scene s{
        Hypersphere({4.0 * r * diag, 4.0 * r * diag}, r),
        Hypersphere({(6.0 * r + delta) * diag, (6.0 * r + delta) * diag}, r),
        Hypersphere({0.0, 0.0}, r)};
    if (test::IsBorderline(s)) continue;
    ++checked;
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 2500);
}

TEST(HyperbolaDegenerateTest, QueriesExactlyOnTheFocalAxis) {
  // 3-d scenes with all three centers collinear: y2 == 0 after reduction.
  Rng rng(5002);
  HyperbolaCriterion c;
  int checked = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    Point dir = test::RandomPoint(&rng, 3, 0.0, 1.0);
    if (Norm(dir) < 1e-9) continue;
    dir = Normalized(dir);
    const Point origin = test::RandomPoint(&rng, 3);
    auto at = [&](double t) { return AddScaled(origin, t, dir); };
    const test::Scene s{Hypersphere(at(rng.Uniform(-50, 50)),
                                    rng.Uniform(0.0, 10.0)),
                        Hypersphere(at(rng.Uniform(-50, 50)),
                                    rng.Uniform(0.0, 10.0)),
                        Hypersphere(at(rng.Uniform(-80, 80)),
                                    rng.Uniform(0.0, 20.0))};
    if (test::IsBorderline(s)) continue;
    ++checked;
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 2000);
}

TEST(HyperbolaDegenerateTest, QueriesOnTheBisectorPlane) {
  // cq equidistant from the foci: y1 == 0 (never dominant, but the kernel
  // is exercised via the exposed functions; the criterion path must also
  // answer false without tripping on the singular branch).
  Rng rng(5003);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 1000; ++iter) {
    Point ca = test::RandomPoint(&rng, 3);
    Point cb = test::RandomPoint(&rng, 3);
    if (Dist(ca, cb) < 1e-6) continue;
    Point mid = Midpoint(ca, cb);
    // Any point of the bisector plane: mid + component orthogonal to axis.
    Point axis = Normalized(Sub(cb, ca));
    Point off = test::RandomPoint(&rng, 3, 0.0, 20.0);
    off = AddScaled(off, -Dot(off, axis), axis);
    const Point cq = Add(mid, off);
    const Hypersphere sa(ca, rng.Uniform(0.0, 3.0));
    const Hypersphere sb(cb, rng.Uniform(0.0, 3.0));
    const Hypersphere sq(cq, rng.Uniform(0.0, 3.0));
    EXPECT_FALSE(c.Dominates(sa, sb, sq));
  }
}

TEST(HyperbolaDegenerateTest, ExtremeSceneScales) {
  // The same logical scene across 12 orders of magnitude of coordinates.
  HyperbolaCriterion c;
  const test::Scene base{Hypersphere({4.0, 1.0, 0.0}, 1.0),
                         Hypersphere({12.0, -2.0, 3.0}, 1.0),
                         Hypersphere({0.0, 0.0, 0.5}, 1.5)};
  const bool expected = c.Dominates(base.sa, base.sb, base.sq);
  for (double exp10 : {-6.0, -3.0, 0.0, 3.0, 6.0}) {
    const double k = std::pow(10.0, exp10);
    auto scale = [&](const Hypersphere& h) {
      return Hypersphere(Scale(h.center(), k), h.radius() * k);
    };
    EXPECT_EQ(c.Dominates(scale(base.sa), scale(base.sb), scale(base.sq)),
              expected)
        << "scale 1e" << exp10;
  }
}

TEST(HyperbolaDegenerateTest, TinyRadiiSumJustAboveZero) {
  // rab barely positive: the hyperbola is nearly the bisector hyperplane;
  // the quartic path and the rab == 0 closed form must agree in the limit.
  HyperbolaCriterion c;
  const Point ca = {0.0, 2.0};
  const Point cb = {0.0, -2.0};
  for (double tiny : {1e-12, 1e-9, 1e-6}) {
    const Hypersphere sa(ca, tiny);
    const Hypersphere sb(cb, tiny);
    // Safely inside Ra (margin far above rab).
    EXPECT_TRUE(c.Dominates(sa, sb, Hypersphere({0.0, 10.0}, 6.0)));
    // Crossing the bisector.
    EXPECT_FALSE(c.Dominates(sa, sb, Hypersphere({0.0, 10.0}, 11.0)));
  }
}

TEST(HyperbolaDegenerateTest, QueryCenterOnTheCurveItself) {
  // cq exactly on the boundary sheet: dmin == 0, so any rq > 0 fails and
  // rq == 0 fails too (the margin is not strict).
  const double alpha = 5.0;
  const double rab = 4.0;
  const double a = rab / 2.0;
  const double b = std::sqrt(alpha * alpha - a * a);
  HyperbolaCriterion c;
  for (double t : {0.0, 0.7, 1.9}) {
    // Build a 2-d scene with foci on the x-axis and cq on the near sheet.
    const Hypersphere sa(Point{-alpha, 0.0}, rab / 2.0);
    const Hypersphere sb(Point{alpha, 0.0}, rab / 2.0);
    const Point cq = {-a * std::cosh(t), b * std::sinh(t)};
    EXPECT_FALSE(c.Dominates(sa, sb, Hypersphere(cq, 0.5))) << "t=" << t;
  }
}

}  // namespace
}  // namespace hyperdom
