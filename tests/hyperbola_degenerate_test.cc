// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regression suite for the numerically nasty corners of the Hyperbola
// kernel — each family here broke a draft implementation at least once
// during development:
//   * near-degenerate hyperbolas (ra + rb approaching Dist(ca, cb), i.e.
//     eccentricity -> 1, vanishing semi-minor axis),
//   * queries exactly on / within rounding of the focal axis, where the
//     Lagrange system's denominators vanish (the "singular branches"),
//   * queries on the bisector plane,
//   * extreme coordinate scales (the quartic coefficients grow like the
//     12th power of the scene scale).

#include <gtest/gtest.h>

#include <cmath>

#include "dominance/certified.h"
#include "dominance/hyperbola.h"
#include "geometry/focal_frame.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(HyperbolaDegenerateTest, NearDegenerateEccentricitySweep) {
  // rab/2alpha in {0.5, 0.9, 0.99, 0.999, 0.999999}: the semi-minor axis
  // B = sqrt(alpha^2 - (rab/2)^2) collapses; the kernel must stay within
  // reference tolerance everywhere.
  Rng rng(5000);
  for (double ecc : {0.5, 0.9, 0.99, 0.999, 0.999999}) {
    for (int iter = 0; iter < 400; ++iter) {
      const double alpha = rng.Uniform(0.5, 20.0);
      const double rab = 2.0 * alpha * ecc;
      const double y1 = rng.Uniform(-4.0 * alpha, 4.0 * alpha);
      const double y2 = rng.Uniform(0.0, 4.0 * alpha);
      const double dq = HyperbolaMinDistQuartic(alpha, rab, y1, y2);
      const double dp = HyperbolaMinDistParametric(alpha, rab, y1, y2);
      // The quartic must never report a distance BELOW the truth (that
      // breaks soundness); small overestimates versus the scan reference
      // are tolerable at extreme eccentricity.
      EXPECT_GE(dq, dp - 1e-5 * (1.0 + alpha))
          << "ecc=" << ecc << " alpha=" << alpha << " y1=" << y1
          << " y2=" << y2;
      EXPECT_LE(dq, dp + 2e-4 * (1.0 + alpha))
          << "ecc=" << ecc << " alpha=" << alpha << " y1=" << y1
          << " y2=" << y2;
    }
  }
}

TEST(HyperbolaDegenerateTest, DiagonalTouchingFamilyDecisions) {
  // The Lemma-5 style family that produced the historical false negatives:
  // three equal-radius spheres along the diagonal with the middle gap a
  // hair over tangency, query radius equal to the object radius.
  Rng rng(5001);
  HyperbolaCriterion c;
  int checked = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    const double r = rng.Uniform(0.2, 8.0);
    const double delta = rng.Uniform(1e-4, 0.8);
    const double diag = 1.0 / std::sqrt(2.0);
    const test::Scene s{
        Hypersphere({4.0 * r * diag, 4.0 * r * diag}, r),
        Hypersphere({(6.0 * r + delta) * diag, (6.0 * r + delta) * diag}, r),
        Hypersphere({0.0, 0.0}, r)};
    if (test::IsBorderline(s)) continue;
    ++checked;
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 2500);
}

TEST(HyperbolaDegenerateTest, QueriesExactlyOnTheFocalAxis) {
  // 3-d scenes with all three centers collinear: y2 == 0 after reduction.
  Rng rng(5002);
  HyperbolaCriterion c;
  int checked = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    Point dir = test::RandomPoint(&rng, 3, 0.0, 1.0);
    if (Norm(dir) < 1e-9) continue;
    dir = Normalized(dir);
    const Point origin = test::RandomPoint(&rng, 3);
    auto at = [&](double t) { return AddScaled(origin, t, dir); };
    const test::Scene s{Hypersphere(at(rng.Uniform(-50, 50)),
                                    rng.Uniform(0.0, 10.0)),
                        Hypersphere(at(rng.Uniform(-50, 50)),
                                    rng.Uniform(0.0, 10.0)),
                        Hypersphere(at(rng.Uniform(-80, 80)),
                                    rng.Uniform(0.0, 20.0))};
    if (test::IsBorderline(s)) continue;
    ++checked;
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 2000);
}

TEST(HyperbolaDegenerateTest, QueriesOnTheBisectorPlane) {
  // cq equidistant from the foci: y1 == 0 (never dominant, but the kernel
  // is exercised via the exposed functions; the criterion path must also
  // answer false without tripping on the singular branch).
  Rng rng(5003);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 1000; ++iter) {
    Point ca = test::RandomPoint(&rng, 3);
    Point cb = test::RandomPoint(&rng, 3);
    if (Dist(ca, cb) < 1e-6) continue;
    Point mid = Midpoint(ca, cb);
    // Any point of the bisector plane: mid + component orthogonal to axis.
    Point axis = Normalized(Sub(cb, ca));
    Point off = test::RandomPoint(&rng, 3, 0.0, 20.0);
    off = AddScaled(off, -Dot(off, axis), axis);
    const Point cq = Add(mid, off);
    const Hypersphere sa(ca, rng.Uniform(0.0, 3.0));
    const Hypersphere sb(cb, rng.Uniform(0.0, 3.0));
    const Hypersphere sq(cq, rng.Uniform(0.0, 3.0));
    EXPECT_FALSE(c.Dominates(sa, sb, sq));
  }
}

TEST(HyperbolaDegenerateTest, ExtremeSceneScales) {
  // The same logical scene across 12 orders of magnitude of coordinates.
  HyperbolaCriterion c;
  const test::Scene base{Hypersphere({4.0, 1.0, 0.0}, 1.0),
                         Hypersphere({12.0, -2.0, 3.0}, 1.0),
                         Hypersphere({0.0, 0.0, 0.5}, 1.5)};
  const bool expected = c.Dominates(base.sa, base.sb, base.sq);
  for (double exp10 : {-6.0, -3.0, 0.0, 3.0, 6.0}) {
    const double k = std::pow(10.0, exp10);
    auto scale = [&](const Hypersphere& h) {
      return Hypersphere(Scale(h.center(), k), h.radius() * k);
    };
    EXPECT_EQ(c.Dominates(scale(base.sa), scale(base.sb), scale(base.sq)),
              expected)
        << "scale 1e" << exp10;
  }
}

TEST(HyperbolaDegenerateTest, TinyRadiiSumJustAboveZero) {
  // rab barely positive: the hyperbola is nearly the bisector hyperplane;
  // the quartic path and the rab == 0 closed form must agree in the limit.
  HyperbolaCriterion c;
  const Point ca = {0.0, 2.0};
  const Point cb = {0.0, -2.0};
  for (double tiny : {1e-12, 1e-9, 1e-6}) {
    const Hypersphere sa(ca, tiny);
    const Hypersphere sb(cb, tiny);
    // Safely inside Ra (margin far above rab).
    EXPECT_TRUE(c.Dominates(sa, sb, Hypersphere({0.0, 10.0}, 6.0)));
    // Crossing the bisector.
    EXPECT_FALSE(c.Dominates(sa, sb, Hypersphere({0.0, 10.0}, 11.0)));
  }
}

TEST(HyperbolaDegenerateTest, QueryCenterOnTheCurveItself) {
  // cq exactly on the boundary sheet: dmin == 0, so any rq > 0 fails and
  // rq == 0 fails too (the margin is not strict).
  const double alpha = 5.0;
  const double rab = 4.0;
  const double a = rab / 2.0;
  const double b = std::sqrt(alpha * alpha - a * a);
  HyperbolaCriterion c;
  for (double t : {0.0, 0.7, 1.9}) {
    // Build a 2-d scene with foci on the x-axis and cq on the near sheet.
    const Hypersphere sa(Point{-alpha, 0.0}, rab / 2.0);
    const Hypersphere sb(Point{alpha, 0.0}, rab / 2.0);
    const Point cq = {-a * std::cosh(t), b * std::sinh(t)};
    EXPECT_FALSE(c.Dominates(sa, sb, Hypersphere(cq, 0.5))) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Degenerate inputs through the certified engine: the three-valued verdict
// must stay decisive where the geometry is clear and honest (kUncertain)
// where no finite precision can break a tie — never confidently wrong.
// ---------------------------------------------------------------------------

TEST(CertifiedDegenerateTest, CoincidentCenters) {
  const CertifiedDominance engine;
  // Same center, positive radii: Sa and Sb overlap, so dominance is
  // decisively impossible.
  const Hypersphere sa({1.0, 2.0}, 1.0);
  const Hypersphere sb({1.0, 2.0}, 0.5);
  const Hypersphere sq({5.0, 5.0}, 1.0);
  EXPECT_EQ(engine.Decide(sa, sb, sq), Verdict::kNotDominates);
  // Same center, zero radii: an exact tie no precision can resolve.
  const Hypersphere pa = Hypersphere::FromPoint({1.0, 2.0});
  EXPECT_EQ(engine.Decide(pa, pa, sq), Verdict::kUncertain);
}

TEST(CertifiedDegenerateTest, ZeroRadiusQuery) {
  const CertifiedDominance engine;
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({20.0, 0.0}, 1.0);
  EXPECT_EQ(engine.Decide(sa, sb, Hypersphere::FromPoint({-2.0, 0.0})),
            Verdict::kDominates);
  EXPECT_EQ(engine.Decide(sa, sb, Hypersphere::FromPoint({18.0, 0.0})),
            Verdict::kNotDominates);
}

TEST(CertifiedDegenerateTest, OneDimensionalScenes) {
  const CertifiedDominance engine;
  Rng rng(5004);
  const auto oracle = MakeCriterion(CriterionKind::kNumericOracle);
  int checked = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 1, 10.0);
    if (test::IsBorderline(s)) continue;
    ++checked;
    const Verdict v = engine.Decide(s.sa, s.sb, s.sq);
    if (v == Verdict::kUncertain) continue;
    EXPECT_EQ(v == Verdict::kDominates, test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 1500);
  EXPECT_LT(engine.stats().UncertainRate(), 0.01);
}

TEST(CertifiedDegenerateTest, DenormalAndHugeCoordinates) {
  const CertifiedDominance engine;
  // Denormal-scale scene: all quantities around 1e-308. The engine may
  // not be able to certify (bands collapse with the scale), but it must
  // never be decisively wrong, and must not crash or emit NaN verdicts.
  const double tiny = 1e-308;
  const Hypersphere sa_tiny({0.0, 0.0}, tiny);
  const Hypersphere sb_tiny({20.0 * tiny, 0.0}, tiny);
  const Hypersphere sq_tiny({-5.0 * tiny, 0.0}, tiny);
  const Verdict v_tiny = engine.Decide(sa_tiny, sb_tiny, sq_tiny);
  EXPECT_NE(v_tiny, Verdict::kNotDominates);  // geometry clearly dominates
  // Huge-but-finite scene: around 1e150 (squares stay finite in double
  // only as long doubles; the distance accumulation must not overflow the
  // verdict into nonsense).
  const double huge = 1e150;
  const Hypersphere sa_huge({0.0, 0.0}, huge * 0.05);
  const Hypersphere sb_huge({20.0 * huge, 0.0}, huge * 0.05);
  const Hypersphere sq_huge({-5.0 * huge, 0.0}, huge * 0.05);
  EXPECT_EQ(engine.Decide(sa_huge, sb_huge, sq_huge), Verdict::kDominates);
  const Hypersphere sq_far({30.0 * huge, 0.0}, huge * 0.05);
  EXPECT_EQ(engine.Decide(sa_huge, sb_huge, sq_far), Verdict::kNotDominates);
}

}  // namespace
}  // namespace hyperdom
