// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// MutableSsTree unit semantics: version-valued tombstones, snapshot
// isolation of pinned views, the kConflict protocol around Freeze and
// compaction, and answer-set equivalence between the mutable store and a
// serial linear scan of its visible rows.

#include "index/mutable_ss_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "query/knn.h"
#include "query/mut_query.h"
#include "query/range.h"
#include "test_util.h"

namespace hyperdom {
namespace {

Hypersphere S2(double x, double y, double r) {
  return Hypersphere({x, y}, r);
}

std::set<uint64_t> Ids(const KnnResult& result) {
  std::set<uint64_t> ids;
  for (const auto& e : result.answers) ids.insert(e.id);
  return ids;
}

// Materializes the view's visible rows as an id-keyed map.
std::map<uint64_t, Hypersphere> Visible(const MutableSsTree& tree) {
  std::vector<Hypersphere> spheres;
  std::vector<uint64_t> ids;
  tree.Pin().CollectLive(&spheres, &ids);
  std::map<uint64_t, Hypersphere> rows;
  for (size_t i = 0; i < ids.size(); ++i) rows.emplace(ids[i], spheres[i]);
  return rows;
}

TEST(MutableSsTreeTest, FreshTreeIsEmptyAtVersionZero) {
  MutableSsTree tree(2);
  EXPECT_EQ(tree.version(), 0u);
  EXPECT_EQ(tree.live_size(), 0u);
  EXPECT_EQ(tree.delta_rows(), 0u);
  HyperbolaCriterion c;
  const auto answer = MutableKnn(tree, c, KnnOptions{}, S2(0, 0, 1));
  EXPECT_TRUE(answer.result.answers.empty());
  EXPECT_EQ(answer.version, 0u);
}

TEST(MutableSsTreeTest, InsertPublishesANewVersion) {
  MutableSsTree tree(2);
  ASSERT_TRUE(tree.Insert(S2(1, 1, 0.5), 7).ok());
  EXPECT_EQ(tree.version(), 1u);
  EXPECT_EQ(tree.live_size(), 1u);
  const auto rows = Visible(tree);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.count(7), 1u);
}

TEST(MutableSsTreeTest, InsertRejectsDuplicateIdAndWrongDim) {
  MutableSsTree tree(2);
  ASSERT_TRUE(tree.Insert(S2(1, 1, 0.5), 7).ok());
  EXPECT_EQ(tree.Insert(S2(2, 2, 0.5), 7).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.Insert(Hypersphere({1.0, 2.0, 3.0}, 0.1), 8).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.live_size(), 1u);
}

TEST(MutableSsTreeTest, RemoveMissingIdIsNotFound) {
  MutableSsTree tree(2);
  EXPECT_EQ(tree.Remove(42).code(), StatusCode::kNotFound);
  ASSERT_TRUE(tree.Insert(S2(1, 1, 0.5), 42).ok());
  ASSERT_TRUE(tree.Remove(42).ok());
  // A tombstoned id is gone: removing again is NotFound, re-inserting is
  // allowed.
  EXPECT_EQ(tree.Remove(42).code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.Insert(S2(3, 3, 0.5), 42).ok());
}

TEST(MutableSsTreeTest, PinnedViewIsImmuneToLaterMutations) {
  MutableSsTree tree(2);
  ASSERT_TRUE(tree.Insert(S2(1, 1, 0.5), 1).ok());
  ASSERT_TRUE(tree.Insert(S2(2, 2, 0.5), 2).ok());

  const MutableSsTree::ReadView view = tree.Pin();
  EXPECT_EQ(view.version(), 2u);
  EXPECT_EQ(view.live_size(), 2u);

  // Mutate underneath the pin: the view's answer set must not move.
  ASSERT_TRUE(tree.Remove(1).ok());
  ASSERT_TRUE(tree.Insert(S2(9, 9, 0.5), 3).ok());
  EXPECT_EQ(view.live_size(), 2u);
  std::vector<Hypersphere> spheres;
  std::vector<uint64_t> ids;
  view.CollectLive(&spheres, &ids);
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()),
            (std::set<uint64_t>{1, 2}));

  // A fresh pin sees the new state.
  EXPECT_EQ(tree.Pin().live_size(), 2u);
  const auto rows = Visible(tree);
  EXPECT_EQ(rows.count(1), 0u);
  EXPECT_EQ(rows.count(3), 1u);
}

TEST(MutableSsTreeTest, BuildSeedsABaseAndPreservesIds) {
  Rng rng(401);
  std::vector<Hypersphere> data;
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 200; ++i) {
    data.push_back(test::RandomSphere(&rng, 3, 5.0));
    ids.push_back(1000 + i);
  }
  MutableSsTree tree(3);
  ASSERT_TRUE(tree.Build(data, ids).ok());
  EXPECT_EQ(tree.live_size(), 200u);
  EXPECT_EQ(tree.delta_rows(), 0u);
  const auto rows = Visible(tree);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(rows.count(1000 + i), 1u) << "lost id " << 1000 + i;
  }
}

TEST(MutableSsTreeTest, FreezeRejectsMutationsWithConflict) {
  MutableSsTree tree(2);
  ASSERT_TRUE(tree.Insert(S2(1, 1, 0.5), 1).ok());
  tree.Freeze();
  EXPECT_TRUE(tree.frozen());
  EXPECT_EQ(tree.Insert(S2(2, 2, 0.5), 2).code(), StatusCode::kConflict);
  EXPECT_EQ(tree.Remove(1).code(), StatusCode::kConflict);
  EXPECT_EQ(tree.Compact().code(), StatusCode::kConflict);
  // Queries keep working while frozen.
  HyperbolaCriterion c;
  EXPECT_EQ(MutableKnn(tree, c, KnnOptions{}, S2(0, 0, 1)).version, 1u);
  tree.Thaw();
  EXPECT_TRUE(tree.Insert(S2(2, 2, 0.5), 2).ok());
}

TEST(MutableSsTreeTest, CompactionPreservesTheVisibleSet) {
  Rng rng(402);
  MutableSsTreeOptions options;
  options.auto_compact = false;
  MutableSsTree tree(3, options);
  std::map<uint64_t, Hypersphere> expect;
  for (uint64_t i = 0; i < 300; ++i) {
    const Hypersphere s = test::RandomSphere(&rng, 3, 5.0);
    ASSERT_TRUE(tree.Insert(s, i).ok());
    expect.emplace(i, s);
  }
  for (uint64_t i = 0; i < 300; i += 3) {
    ASSERT_TRUE(tree.Remove(i).ok());
    expect.erase(i);
  }
  const uint64_t before = tree.version();
  ASSERT_TRUE(tree.Compact().ok());
  EXPECT_GT(tree.version(), before);
  EXPECT_EQ(tree.delta_rows(), 0u);
  EXPECT_EQ(tree.tombstones(), 0u);
  EXPECT_EQ(tree.live_size(), expect.size());

  const auto rows = Visible(tree);
  ASSERT_EQ(rows.size(), expect.size());
  for (const auto& [id, sphere] : expect) {
    auto it = rows.find(id);
    ASSERT_NE(it, rows.end()) << "compaction lost id " << id;
    EXPECT_EQ(it->second.center(), sphere.center());
    EXPECT_EQ(it->second.radius(), sphere.radius());
  }
  // The store keeps mutating fine after a compaction.
  ASSERT_TRUE(tree.Insert(test::RandomSphere(&rng, 3, 5.0), 9999).ok());
  EXPECT_TRUE(tree.Remove(9999).ok());
}

TEST(MutableSsTreeTest, MutationsDuringCompactionBuildAreConflicts) {
  MutableSsTreeOptions options;
  options.auto_compact = false;
  bool hook_ran = false;
  MutableSsTree* self = nullptr;
  options.compaction_hook = [&] {
    hook_ran = true;
    // The build phase runs with the writer mutex released but
    // compacting_ set: concurrent mutations must observe kConflict and
    // leave the store untouched.
    EXPECT_EQ(self->Insert(S2(50, 50, 1), 777).code(),
              StatusCode::kConflict);
    EXPECT_EQ(self->Remove(0).code(), StatusCode::kConflict);
    EXPECT_EQ(self->Compact().code(), StatusCode::kConflict);
  };
  MutableSsTree tree(2, options);
  self = &tree;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        tree.Insert(S2(double(i), double(i % 7), 0.5), i).ok());
  }
  ASSERT_TRUE(tree.Compact().ok());
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(tree.live_size(), 50u);
  EXPECT_EQ(Visible(tree).count(777), 0u);
}

TEST(MutableSsTreeTest, AutoCompactionTriggersOnTombstoneRatio) {
  MutableSsTreeOptions options;
  options.compact_min_delta = 1u << 30;  // only the ratio can trigger
  options.compact_tombstone_ratio = 0.5;
  MutableSsTree tree(2, options);
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(tree.Insert(S2(double(i), 0, 0.5), i).ok());
  }
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(tree.Remove(i).ok());
  }
  // The ratio trigger bounds tombstone debt: whenever tombstones reached
  // half the live count a compaction reset them, so they can never have
  // accumulated anywhere near the 30 removes — and the delta log shrank.
  EXPECT_EQ(tree.live_size(), 10u);
  EXPECT_LT(tree.tombstones(), 6u);
  EXPECT_LT(tree.delta_rows(), 40u);
}

// The serial-equivalence property on one thread: after every mutation the
// mutable store's kNN answer set equals a linear scan over its visible
// rows (the same reference the static tree is tested against).
TEST(MutableSsTreeTest, KnnMatchesLinearScanAcrossMutations) {
  Rng rng(403);
  MutableSsTreeOptions options;
  options.compact_min_delta = 64;  // force compactions mid-run
  MutableSsTree tree(3, options);
  HyperbolaCriterion exact;
  KnnOptions kopt;
  kopt.k = 5;

  std::vector<Hypersphere> live;
  std::vector<uint64_t> live_ids;
  uint64_t next_id = 0;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.UniformU64(4) == 0) {
      const size_t victim = rng.UniformU64(live.size());
      ASSERT_TRUE(tree.Remove(live_ids[victim]).ok());
      live.erase(live.begin() + victim);
      live_ids.erase(live_ids.begin() + victim);
    } else {
      const Hypersphere s = test::RandomSphere(&rng, 3, 6.0);
      ASSERT_TRUE(tree.Insert(s, next_id).ok());
      live.push_back(s);
      live_ids.push_back(next_id);
      ++next_id;
    }
    if (step % 20 != 0 || live.empty()) continue;
    const Hypersphere sq = test::RandomSphere(&rng, 3, 6.0);
    const auto from_store = MutableKnn(tree, exact, kopt, sq);
    const KnnResult from_scan = KnnLinearScan(live, sq, kopt.k, exact);
    std::set<uint64_t> scan_ids;
    for (const auto& e : from_scan.answers) {
      scan_ids.insert(live_ids[e.id]);  // scan ids index into `live`
    }
    EXPECT_EQ(Ids(from_store.result), scan_ids) << "step " << step;
  }
}

TEST(MutableSsTreeTest, RangeQuerySeesDeltaAndSkipsTombstones) {
  MutableSsTree tree(2);
  ASSERT_TRUE(tree.Insert(S2(0, 0, 1), 1).ok());
  ASSERT_TRUE(tree.Insert(S2(3, 0, 1), 2).ok());
  ASSERT_TRUE(tree.Insert(S2(100, 100, 1), 3).ok());
  ASSERT_TRUE(tree.Remove(2).ok());
  const auto result = MutableRange(tree, S2(0, 0, 0.5), 6.0);
  std::set<uint64_t> possible;
  for (const auto& e : result.result.possible) possible.insert(e.id);
  EXPECT_EQ(possible.count(1), 1u);
  EXPECT_EQ(possible.count(2), 0u) << "tombstoned row leaked into range";
  EXPECT_EQ(possible.count(3), 0u);
}

}  // namespace
}  // namespace hyperdom
