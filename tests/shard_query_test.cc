// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The scatter-gather contract of src/shard/sharded_query.h: sharded kNN
// answers are BIT-IDENTICAL to a single unsharded index over the same
// dataset — for every shard count, partitioning policy, index kind and
// scatter thread count — and sharded range queries match the unsharded
// answer in canonical id order. Plus the robustness edges: best-effort
// subsets under deadlines, fair node-budget splitting, and shard/scatter
// fault propagation.

#include "shard/sharded_query.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/fault.h"
#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "exec/thread_pool.h"
#include "query/index_knn.h"
#include "query/knn.h"
#include "query/range.h"

namespace hyperdom {
namespace shard {
namespace {

constexpr size_t kDim = 3;

std::vector<Hypersphere> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypersphere> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point c(kDim);
    for (size_t d = 0; d < kDim; ++d) c[d] = rng.Gaussian(0.0, 25.0);
    data.emplace_back(c, rng.Uniform(0.0, 3.0));
  }
  return data;
}

std::vector<Hypersphere> MakeQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypersphere> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point c(kDim);
    for (size_t d = 0; d < kDim; ++d) c[d] = rng.Gaussian(0.0, 10.0);
    queries.emplace_back(c, rng.Uniform(0.0, 2.0));
  }
  return queries;
}

bool SameBits(const Hypersphere& a, const Hypersphere& b) {
  if (a.dim() != b.dim()) return false;
  const double ra = a.radius();
  const double rb = b.radius();
  if (std::memcmp(&ra, &rb, sizeof(double)) != 0) return false;
  return std::memcmp(a.center().data(), b.center().data(),
                     a.dim() * sizeof(double)) == 0;
}

void ExpectIdentical(const std::vector<DataEntry>& got,
                     const std::vector<DataEntry>& want,
                     const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " position " << i;
    EXPECT_TRUE(SameBits(got[i].sphere, want[i].sphere))
        << context << " position " << i;
  }
}

KnnResult UnshardedKnn(const std::vector<Hypersphere>& data,
                       ShardIndexKind kind, const Hypersphere& sq,
                       const DominanceCriterion& criterion,
                       const KnnOptions& options) {
  switch (kind) {
    case ShardIndexKind::kSsTree: {
      SsTree tree(kDim);
      EXPECT_TRUE(tree.BulkLoadStr(data).ok());
      const KnnSearcher searcher(&criterion, options);
      return searcher.Search(tree, sq);
    }
    case ShardIndexKind::kRStarTree: {
      RStarTree tree(kDim);
      for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_TRUE(tree.Insert(data[i], i).ok());
      }
      return RStarKnnSearch(tree, sq, criterion, options);
    }
    case ShardIndexKind::kVpTree: {
      VpTree tree;
      EXPECT_TRUE(tree.Build(data).ok());
      return VpTreeKnnSearch(tree, sq, criterion, options);
    }
    case ShardIndexKind::kMTree: {
      MTree tree(kDim);
      for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_TRUE(tree.Insert(data[i], i).ok());
      }
      return MTreeKnnSearch(tree, sq, criterion, options);
    }
  }
  return {};
}

class ShardedQueryTest : public ::testing::Test {
 protected:
  HyperbolaCriterion criterion_;
};

TEST_F(ShardedQueryTest, KnnBitIdenticalAcrossShardAndThreadCounts) {
  const auto data = MakeData(800, 101);
  const auto queries = MakeQueries(6, 202);
  KnnOptions options;
  options.k = 8;

  // Unsharded SS-tree reference, computed once per query.
  std::vector<KnnResult> expected;
  for (const auto& sq : queries) {
    expected.push_back(
        UnshardedKnn(data, ShardIndexKind::kSsTree, sq, criterion_, options));
  }

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ShardingOptions sharding;
    sharding.shards = shards;
    ShardedStore store;
    ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
      for (size_t q = 0; q < queries.size(); ++q) {
        Result<KnnResult> got =
            ShardedKnn(store, queries[q], criterion_, options, pool_ptr);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got->completeness, Completeness::kExact);
        ExpectIdentical(got->answers, expected[q].answers,
                        "K=" + std::to_string(shards) + " threads=" +
                            std::to_string(threads) + " q=" +
                            std::to_string(q));
      }
    }
  }
}

TEST_F(ShardedQueryTest, KnnBitIdenticalAcrossPoliciesKindsAndStrategies) {
  const auto data = MakeData(500, 303);
  const auto queries = MakeQueries(4, 404);

  for (ShardIndexKind kind :
       {ShardIndexKind::kSsTree, ShardIndexKind::kRStarTree,
        ShardIndexKind::kVpTree, ShardIndexKind::kMTree}) {
    for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kKmeans}) {
      for (SearchStrategy strategy :
           {SearchStrategy::kBestFirst, SearchStrategy::kDepthFirst}) {
        KnnOptions options;
        options.k = 5;
        options.strategy = strategy;
        ShardingOptions sharding;
        sharding.shards = 4;
        sharding.policy = policy;
        sharding.index = kind;
        ShardedStore store;
        ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
        ThreadPool pool(2);
        for (size_t q = 0; q < queries.size(); ++q) {
          const KnnResult expected =
              UnshardedKnn(data, kind, queries[q], criterion_, options);
          Result<KnnResult> got =
              ShardedKnn(store, queries[q], criterion_, options, &pool);
          ASSERT_TRUE(got.ok());
          ExpectIdentical(
              got->answers, expected.answers,
              std::string(ShardIndexKindName(kind)) + "/" +
                  std::string(ShardPolicyName(policy)) + "/strategy=" +
                  (strategy == SearchStrategy::kBestFirst ? "hs" : "df") +
                  " q=" + std::to_string(q));
        }
      }
    }
  }
}

TEST_F(ShardedQueryTest, KnnRejectsEagerPruning) {
  const auto data = MakeData(50, 1);
  ShardingOptions sharding;
  sharding.shards = 2;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
  KnnOptions options;
  options.pruning_mode = KnnPruningMode::kEager;
  const auto result =
      ShardedKnn(store, MakeQueries(1, 2)[0], criterion_, options);
  EXPECT_FALSE(result.ok());
}

TEST_F(ShardedQueryTest, PerShardStatsCoverEveryShard) {
  const auto data = MakeData(400, 21);
  ShardingOptions sharding;
  sharding.shards = 4;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
  KnnOptions options;
  options.k = 4;
  std::vector<KnnStats> per_shard;
  Result<KnnResult> got = ShardedKnn(store, MakeQueries(1, 22)[0], criterion_,
                                     options, nullptr, &per_shard);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(per_shard.size(), 4u);
  uint64_t total_nodes = 0;
  for (const KnnStats& s : per_shard) {
    EXPECT_GT(s.nodes_visited, 0u);  // every shard really ran
    total_nodes += s.nodes_visited;
  }
  // The merged stats fold the per-shard traversal counters in (plus the
  // merge/filter work, which adds no node visits).
  EXPECT_EQ(got->stats.nodes_visited, total_nodes);
}

TEST_F(ShardedQueryTest, BestEffortAnswersAreCertifiedSubsets) {
  const auto data = MakeData(800, 55);
  const auto queries = MakeQueries(5, 56);
  KnnOptions exact_options;
  exact_options.k = 8;

  ShardingOptions sharding;
  sharding.shards = 4;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());

  for (const auto& sq : queries) {
    const KnnResult exact = UnshardedKnn(data, ShardIndexKind::kSsTree, sq,
                                         criterion_, exact_options);
    std::set<uint64_t> exact_ids;
    for (const auto& e : exact.answers) exact_ids.insert(e.id);

    KnnOptions tight = exact_options;
    tight.deadline = Deadline::WithNodeBudget(8);
    Result<KnnResult> got = ShardedKnn(store, sq, criterion_, tight);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->completeness, Completeness::kBestEffort);
    for (const auto& e : got->answers) {
      EXPECT_TRUE(exact_ids.count(e.id))
          << "best-effort answer " << e.id << " not in the exact answer";
    }
  }
}

// The budget-skew regression: under a serial scatter an unsplit budget
// would let shard 0 spend it all and starve shards 1..K-1. The fair split
// caps every shard at budget/K (+1) nodes and every shard still runs.
TEST_F(ShardedQueryTest, NodeBudgetSplitsFairlyAcrossShardsInSerialMode) {
  const auto data = MakeData(1200, 77);
  ShardingOptions sharding;
  sharding.shards = 4;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());

  const uint64_t budget = 40;
  KnnOptions options;
  options.k = 4;
  options.deadline = Deadline::WithNodeBudget(budget);
  std::vector<KnnStats> per_shard;
  Result<KnnResult> got = ShardedKnn(store, MakeQueries(1, 78)[0], criterion_,
                                     options, /*pool=*/nullptr, &per_shard);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(per_shard.size(), 4u);
  const uint64_t share = budget / 4 + 1;
  for (size_t j = 0; j < per_shard.size(); ++j) {
    // No shard — in particular not shard 0 — exceeds its fair share.
    EXPECT_LE(per_shard[j].nodes_visited, share) << "shard " << j;
    // And no shard was starved: each got to expand nodes of its own.
    EXPECT_GT(per_shard[j].nodes_visited, 0u) << "shard " << j;
  }
}

TEST_F(ShardedQueryTest, RangeMatchesUnshardedInIdOrder) {
  const auto data = MakeData(600, 99);
  const auto queries = MakeQueries(4, 98);
  SsTree unsharded(kDim);
  ASSERT_TRUE(unsharded.BulkLoadStr(data).ok());

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ShardingOptions sharding;
    sharding.shards = shards;
    ShardedStore store;
    ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
    ThreadPool pool(2);
    for (const auto& sq : queries) {
      const double range = 20.0;
      RangeResult expected = RangeSearch(unsharded, sq, range);
      auto by_id = [](const DataEntry& a, const DataEntry& b) {
        return a.id < b.id;
      };
      std::sort(expected.certain.begin(), expected.certain.end(), by_id);
      std::sort(expected.possible.begin(), expected.possible.end(), by_id);

      Result<RangeResult> got = ShardedRange(store, sq, range,
                                             Deadline::Unbounded(), &pool);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->completeness, Completeness::kExact);
      ExpectIdentical(got->certain, expected.certain,
                      "certain K=" + std::to_string(shards));
      ExpectIdentical(got->possible, expected.possible,
                      "possible K=" + std::to_string(shards));
    }
  }
}

TEST_F(ShardedQueryTest, RangeRequiresSsTreeShards) {
  const auto data = MakeData(50, 5);
  ShardingOptions sharding;
  sharding.shards = 2;
  sharding.index = ShardIndexKind::kVpTree;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
  const auto result = ShardedRange(store, MakeQueries(1, 6)[0], 10.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

#if defined(HYPERDOM_FAULT_INJECTION_ENABLED)
TEST_F(ShardedQueryTest, ScatterFaultPropagatesAsError) {
  const auto data = MakeData(200, 31);
  ShardingOptions sharding;
  sharding.shards = 4;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, sharding, &store).ok());
  const auto queries = MakeQueries(1, 32);
  KnnOptions options;

  // shard/scatter fires once per (query, shard): any of the four
  // executions failing must surface as the query's error.
  for (uint64_t nth = 1; nth <= 4; ++nth) {
    FaultRegistry::Instance().ArmSite("shard/scatter", nth);
    const auto result = ShardedKnn(store, queries[0], criterion_, options);
    EXPECT_FALSE(result.ok()) << "nth=" << nth;
  }
  FaultRegistry::Instance().Reset();
  EXPECT_TRUE(ShardedKnn(store, queries[0], criterion_, options).ok());
}
#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace shard
}  // namespace hyperdom
