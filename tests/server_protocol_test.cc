// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Wire-level tests for the HDNP protocol (server/protocol.h): frame
// round-trips, and rejection of every corruption class — bit flips,
// truncation, oversized declarations, bad magic/version/kind, malformed
// payload fields — always as kProtocolError, never a crash or an
// over-allocation.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace hyperdom {
namespace server {
namespace {

KnnRequest SampleRequest() {
  KnnRequest request;
  request.budget_micros = 2'500;
  request.node_budget = 77;
  request.k = 5;
  request.strategy = SearchStrategy::kDepthFirst;
  request.query = Hypersphere({1.5, -2.25, 0.125}, 3.75);
  return request;
}

KnnResponse SampleResponse() {
  KnnResponse response;
  response.completeness = Completeness::kBestEffort;
  // Awkward doubles on purpose: the codec must round-trip them bit for
  // bit (host-endian memcpy, no text formatting in the path).
  response.answers.push_back(
      {Hypersphere({0.1, 0.2, 0.30000000000000004}, 1e-12), 42});
  response.answers.push_back(
      {Hypersphere({-1e308, 3.141592653589793, 2.220446049250313e-16}, 7.0),
       7});
  return response;
}

TEST(FrameTest, HeaderRoundTrip) {
  const std::string payload = "hello hyperdom";
  const std::string frame = EncodeFrame(FrameKind::kKnnRequest, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());

  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize),
      kDefaultMaxPayloadBytes);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->kind, FrameKind::kKnnRequest);
  EXPECT_EQ(header->payload_size, payload.size());
  EXPECT_TRUE(
      VerifyPayloadCrc(*header, std::string_view(frame).substr(
                                    kFrameHeaderSize))
          .ok());
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  const std::string frame = EncodeFrame(FrameKind::kPingRequest, {});
  ASSERT_EQ(frame.size(), kFrameHeaderSize);
  auto header = DecodeFrameHeader(frame, kDefaultMaxPayloadBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->kind, FrameKind::kPingRequest);
  EXPECT_EQ(header->payload_size, 0u);
  EXPECT_TRUE(VerifyPayloadCrc(*header, {}).ok());
}

TEST(FrameTest, EveryPayloadBitFlipIsDetected) {
  const std::string payload = "crc-protected bytes";
  const std::string frame = EncodeFrame(FrameKind::kKnnResponse, payload);
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize),
      kDefaultMaxPayloadBytes);
  ASSERT_TRUE(header.ok());
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = payload;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      const Status crc = VerifyPayloadCrc(*header, corrupted);
      EXPECT_EQ(crc.code(), StatusCode::kProtocolError)
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(FrameTest, RejectsTruncatedHeader) {
  const std::string frame = EncodeFrame(FrameKind::kPingRequest, {});
  for (size_t len = 0; len < kFrameHeaderSize; ++len) {
    auto header = DecodeFrameHeader(std::string_view(frame).substr(0, len),
                                    kDefaultMaxPayloadBytes);
    EXPECT_FALSE(header.ok()) << "accepted " << len << "-byte header";
    EXPECT_EQ(header.status().code(), StatusCode::kProtocolError);
  }
}

TEST(FrameTest, RejectsBadMagic) {
  std::string frame = EncodeFrame(FrameKind::kPingRequest, {});
  frame[0] = 'X';
  auto header = DecodeFrameHeader(frame, kDefaultMaxPayloadBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(header.status().message().find("magic"), std::string::npos);
}

TEST(FrameTest, RejectsUnsupportedVersion) {
  std::string frame = EncodeFrame(FrameKind::kPingRequest, {});
  const uint32_t bad_version = kProtocolVersionMax + 1;
  std::memcpy(frame.data() + 4, &bad_version, sizeof(bad_version));
  auto header = DecodeFrameHeader(frame, kDefaultMaxPayloadBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("version"), std::string::npos);
}

TEST(FrameTest, RejectsUnknownKind) {
  for (uint32_t kind : {0u, 9u, 0xFFFFFFFFu}) {
    std::string frame = EncodeFrame(FrameKind::kPingRequest, {});
    std::memcpy(frame.data() + 8, &kind, sizeof(kind));
    auto header = DecodeFrameHeader(frame, kDefaultMaxPayloadBytes);
    EXPECT_FALSE(header.ok()) << "accepted kind " << kind;
  }
}

TEST(FrameTest, RejectsOversizedDeclarationBeforeAllocation) {
  // A header declaring a huge payload must be refused at header-decode
  // time — the receiver never allocates from an unvalidated size field.
  std::string frame = EncodeFrame(FrameKind::kKnnRequest, "tiny");
  const uint64_t huge = 1ull << 60;
  std::memcpy(frame.data() + 12, &huge, sizeof(huge));
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize),
      kDefaultMaxPayloadBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(header.status().message().find("exceeds limit"),
            std::string::npos);

  // Exactly at the cap is fine (the cap bounds, it does not exclude).
  auto at_cap = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderSize), huge);
  EXPECT_TRUE(at_cap.ok());
}

TEST(KnnRequestCodecTest, RoundTripPreservesEveryField) {
  const KnnRequest request = SampleRequest();
  auto decoded = DecodeKnnRequest(EncodeKnnRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->budget_micros, request.budget_micros);
  EXPECT_EQ(decoded->node_budget, request.node_budget);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->strategy, request.strategy);
  ASSERT_EQ(decoded->query.dim(), request.query.dim());
  // Bit-identical doubles: the exact-answer contract depends on it.
  EXPECT_EQ(std::memcmp(decoded->query.center().data(),
                        request.query.center().data(),
                        request.query.dim() * sizeof(double)),
            0);
  EXPECT_EQ(decoded->query.radius(), request.query.radius());
}

TEST(KnnRequestCodecTest, RejectsEveryTruncation) {
  const std::string payload = EncodeKnnRequest(SampleRequest());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded =
        DecodeKnnRequest(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "accepted " << len << " of "
                               << payload.size() << " bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
}

TEST(KnnRequestCodecTest, OverflowingDimCannotDefeatBoundsCheck) {
  // For dim >= 2^61, dim * sizeof(double) wraps to a tiny value. If the
  // decoder compared the product against the remaining bytes, the check
  // would pass and resize(dim) would throw length_error — on the server a
  // remote crash from one valid-CRC frame. The decoder must compare by
  // division and reject cleanly.
  std::string payload = EncodeKnnRequest(SampleRequest());
  for (uint64_t dim : {1ull << 61, (1ull << 61) + 1, (1ull << 62) + 3,
                       0xFFFFFFFFFFFFFFFFull}) {
    std::memcpy(payload.data() + 24, &dim, sizeof(dim));
    auto decoded = DecodeKnnRequest(payload);
    ASSERT_FALSE(decoded.ok()) << "accepted dim " << dim;
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
}

TEST(KnnRequestCodecTest, RejectsTrailingBytes) {
  std::string payload = EncodeKnnRequest(SampleRequest());
  payload.push_back('\0');
  auto decoded = DecodeKnnRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(KnnRequestCodecTest, RejectsSemanticGarbage) {
  {
    KnnRequest request = SampleRequest();
    request.k = 0;
    EXPECT_FALSE(DecodeKnnRequest(EncodeKnnRequest(request)).ok());
  }
  {
    // Unknown strategy tag.
    std::string payload = EncodeKnnRequest(SampleRequest());
    const uint32_t bad = 99;
    std::memcpy(payload.data() + 20, &bad, sizeof(bad));
    EXPECT_FALSE(DecodeKnnRequest(payload).ok());
  }
  {
    // Negative radius fails Hypersphere::Validate via the decoder.
    std::string payload = EncodeKnnRequest(SampleRequest());
    const double bad = -1.0;
    std::memcpy(payload.data() + payload.size() - sizeof(double), &bad,
                sizeof(bad));
    auto decoded = DecodeKnnRequest(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
}

TEST(KnnResponseCodecTest, RoundTripIsBitIdentical) {
  const KnnResponse response = SampleResponse();
  auto decoded = DecodeKnnResponse(EncodeKnnResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->completeness, response.completeness);
  ASSERT_EQ(decoded->answers.size(), response.answers.size());
  for (size_t i = 0; i < response.answers.size(); ++i) {
    EXPECT_EQ(decoded->answers[i].id, response.answers[i].id);
    EXPECT_EQ(std::memcmp(decoded->answers[i].sphere.center().data(),
                          response.answers[i].sphere.center().data(),
                          response.answers[i].sphere.dim() * sizeof(double)),
              0);
    EXPECT_EQ(decoded->answers[i].sphere.radius(),
              response.answers[i].sphere.radius());
  }
}

TEST(KnnResponseCodecTest, EmptyAnswerSetRoundTrips) {
  KnnResponse response;
  response.completeness = Completeness::kExact;
  auto decoded = DecodeKnnResponse(EncodeKnnResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->completeness, Completeness::kExact);
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(KnnResponseCodecTest, LyingCountCannotDriveAllocation) {
  // A response claiming 2^60 entries but carrying none: the decoder walks
  // entry by entry, so it fails on the first missing entry instead of
  // resizing a vector from the count field.
  std::string payload = EncodeKnnResponse(KnnResponse{});
  const uint64_t lie = 1ull << 60;
  std::memcpy(payload.data() + 12, &lie, sizeof(lie));
  auto decoded = DecodeKnnResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(KnnResponseCodecTest, OverflowingDimCannotDefeatBoundsCheck) {
  // Same wrap-around as the request side, through the response decoder's
  // per-entry ConsumeDoubles path.
  std::string payload = EncodeKnnResponse(SampleResponse());
  const uint64_t dim = (1ull << 61) + 1;
  std::memcpy(payload.data() + 4, &dim, sizeof(dim));
  auto decoded = DecodeKnnResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(KnnResponseCodecTest, RejectsEveryTruncation) {
  const std::string payload = EncodeKnnResponse(SampleResponse());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded =
        DecodeKnnResponse(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "accepted " << len << " of "
                               << payload.size() << " bytes";
  }
}

TEST(ErrorCodecTest, RoundTripsEveryWireCode) {
  const Status cases[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::IOError("c"),         Status::OutOfRange("d"),
      Status::Corruption("e"),      Status::NotSupported("f"),
      Status::Internal("g"),        Status::Overloaded("h"),
      Status::DeadlineExceeded("i"), Status::ProtocolError("j"),
  };
  for (const Status& original : cases) {
    Status decoded;
    ASSERT_TRUE(
        DecodeErrorResponse(EncodeErrorResponse(original), &decoded).ok());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(ErrorCodecTest, RejectsMalformedPayloads) {
  Status decoded;
  // Truncated header.
  EXPECT_EQ(DecodeErrorResponse("abc", &decoded).code(),
            StatusCode::kProtocolError);
  // An OK code on the wire is nonsense for an *error* frame.
  std::string ok_payload;
  const uint32_t zero = 0;
  ok_payload.append(reinterpret_cast<const char*>(&zero), sizeof(zero));
  ok_payload.append(reinterpret_cast<const char*>(&zero), sizeof(zero));
  EXPECT_EQ(DecodeErrorResponse(ok_payload, &decoded).code(),
            StatusCode::kProtocolError);
  // Message length pointing past the end.
  std::string overlong = EncodeErrorResponse(Status::IOError("msg"));
  overlong.resize(overlong.size() - 1);
  EXPECT_EQ(DecodeErrorResponse(overlong, &decoded).code(),
            StatusCode::kProtocolError);
}

TEST(DeadlineFromRequestTest, ZeroBudgetsMeanUnbounded) {
  KnnRequest request;
  request.budget_micros = 0;
  request.node_budget = 0;
  const Deadline deadline = DeadlineFromRequest(request);
  EXPECT_TRUE(deadline.unbounded());
  TraversalGuard guard(deadline);
  for (uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(guard.ShouldStop(i));
  }
}

TEST(DeadlineFromRequestTest, NodeBudgetPropagates) {
  KnnRequest request;
  request.node_budget = 3;
  const Deadline deadline = DeadlineFromRequest(request);
  EXPECT_FALSE(deadline.has_wall_deadline());
  EXPECT_EQ(deadline.node_budget(), 3u);
  TraversalGuard guard(deadline);
  EXPECT_FALSE(guard.ShouldStop(0));
  EXPECT_FALSE(guard.ShouldStop(2));
  EXPECT_TRUE(guard.ShouldStop(3));
  EXPECT_TRUE(guard.ShouldStop(0));  // expiry is sticky
}

TEST(DeadlineFromRequestTest, WallBudgetPropagates) {
  KnnRequest request;
  request.budget_micros = 250;
  const Deadline deadline = DeadlineFromRequest(request);
  EXPECT_TRUE(deadline.has_wall_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(deadline.WallExpired());
}

}  // namespace
}  // namespace server
}  // namespace hyperdom
