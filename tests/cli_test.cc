// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "tools/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hyperdom {
namespace cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun RunCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = Run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(ParseArgsTest, CommandAndFlags) {
  auto parsed = ParseArgs({"knn", "--k=5", "--data=file.csv"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->command, "knn");
  EXPECT_EQ(parsed->GetFlag("k"), "5");
  EXPECT_EQ(parsed->GetFlag("data"), "file.csv");
  EXPECT_EQ(parsed->GetFlag("missing", "dflt"), "dflt");
}

TEST(ParseArgsTest, Rejections) {
  EXPECT_FALSE(ParseArgs({}).ok());
  EXPECT_FALSE(ParseArgs({"cmd", "positional"}).ok());
  EXPECT_FALSE(ParseArgs({"cmd", "--noequals"}).ok());
  EXPECT_FALSE(ParseArgs({"cmd", "--=v"}).ok());
}

TEST(ParseSphereTest, Valid) {
  auto s = ParseSphere("1,2,3;0.5");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->center(), (Point{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s->radius(), 0.5);
  auto one_d = ParseSphere("-4.5;0");
  ASSERT_TRUE(one_d.ok());
  EXPECT_EQ(one_d->dim(), 1u);
}

TEST(ParseSphereTest, Rejections) {
  EXPECT_FALSE(ParseSphere("1,2,3").ok());      // no radius
  EXPECT_FALSE(ParseSphere(";1").ok());         // no coordinates
  EXPECT_FALSE(ParseSphere("1,x;1").ok());      // bad coordinate
  EXPECT_FALSE(ParseSphere("1,2;-1").ok());     // negative radius
  EXPECT_FALSE(ParseSphere("1,2;abc").ok());    // bad radius
}

TEST(ParseCriterionTest, AllNames) {
  EXPECT_TRUE(ParseCriterion("minmax").ok());
  EXPECT_TRUE(ParseCriterion("mbr").ok());
  EXPECT_TRUE(ParseCriterion("gp").ok());
  EXPECT_TRUE(ParseCriterion("trigonometric").ok());
  EXPECT_TRUE(ParseCriterion("hyperbola").ok());
  EXPECT_TRUE(ParseCriterion("oracle").ok());
  EXPECT_FALSE(ParseCriterion("voodoo").ok());
}

TEST(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(RunCli({"help"}).exit_code, 0);
  const CliRun bad = RunCli({"frobnicate"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, DominateCommand) {
  const CliRun run = RunCli({"dominate", "--sa=4,0;1", "--sb=12,0;1",
                             "--sq=0,0;1.5", "--criterion=hyperbola"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("Hyperbola"), std::string::npos);
  EXPECT_NE(run.out.find("true"), std::string::npos);
}

TEST(CliTest, DominateAllCriteria) {
  const CliRun run =
      RunCli({"dominate", "--sa=4,0;1", "--sb=12,0;1", "--sq=0,0;1.5"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  for (const char* name :
       {"MinMax", "MBR", "GP", "Trigonometric", "Hyperbola"}) {
    EXPECT_NE(run.out.find(name), std::string::npos) << name;
  }
}

TEST(CliTest, DominateRejectsMixedDimensions) {
  const CliRun run =
      RunCli({"dominate", "--sa=4,0;1", "--sb=12;1", "--sq=0,0;1.5"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("dimensionality"), std::string::npos);
}

class CliPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -jN runs the cases as parallel processes.
    path_ = testing::TempDir() + "/hyperdom_cli_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
    const CliRun gen = RunCli({"generate", "--out=" + path_, "--n=500",
                               "--dim=3", "--mu=5", "--seed=9"});
    ASSERT_EQ(gen.exit_code, 0) << gen.err;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CliPipelineTest, GenerateIsDeterministic) {
  const std::string path2 = testing::TempDir() + "/hyperdom_cli_data2.csv";
  ASSERT_EQ(RunCli({"generate", "--out=" + path2, "--n=500", "--dim=3",
                    "--mu=5", "--seed=9"})
                .exit_code,
            0);
  std::ifstream a(path_), b(path2);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::remove(path2.c_str());
}

TEST_F(CliPipelineTest, KnnCommand) {
  const CliRun run = RunCli(
      {"knn", "--data=" + path_, "--query=100,100,100;5", "--k=3"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("possible top-3"), std::string::npos);
  EXPECT_NE(run.out.find("maxdist="), std::string::npos);
}

TEST_F(CliPipelineTest, KnnRejectsBadQueryDim) {
  const CliRun run = RunCli({"knn", "--data=" + path_, "--query=1,2;5"});
  EXPECT_EQ(run.exit_code, 1);
}

TEST_F(CliPipelineTest, RankCommand) {
  const CliRun run = RunCli(
      {"rank", "--data=" + path_, "--target=7", "--query=100,100,100;5"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("can rank between"), std::string::npos);
}

TEST_F(CliPipelineTest, RankRejectsBadTarget) {
  const CliRun run = RunCli(
      {"rank", "--data=" + path_, "--target=99999", "--query=1,2,3;5"});
  EXPECT_EQ(run.exit_code, 1);
}

TEST_F(CliPipelineTest, ExperimentCommand) {
  const CliRun run = RunCli(
      {"experiment", "--data=" + path_, "--queries=300", "--repeats=1"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("Hyperbola"), std::string::npos);
  EXPECT_NE(run.out.find("precision"), std::string::npos);
}

TEST_F(CliPipelineTest, RangeCommand) {
  const CliRun run = RunCli({"range", "--data=" + path_,
                             "--query=100,100,100;5", "--range=50"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("certainly within"), std::string::npos);
  EXPECT_NE(run.out.find("possibly within"), std::string::npos);
}

TEST_F(CliPipelineTest, RangeRejectsMissingRange) {
  const CliRun run =
      RunCli({"range", "--data=" + path_, "--query=100,100,100;5"});
  EXPECT_EQ(run.exit_code, 1);
}

TEST_F(CliPipelineTest, ProbKnnCommand) {
  const CliRun run =
      RunCli({"probknn", "--data=" + path_, "--query=100,100,100;5",
              "--k=3", "--tau=0.2", "--samples=100"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("P[top-3] >= 0.2"), std::string::npos);
}

TEST_F(CliPipelineTest, ProbKnnRejectsBadTau) {
  const CliRun run = RunCli({"probknn", "--data=" + path_,
                             "--query=100,100,100;5", "--tau=1.5"});
  EXPECT_EQ(run.exit_code, 1);
}

TEST(CliTest, ExpiryCommand) {
  const CliRun holds = RunCli({"expiry", "--sa=2,0;0.5", "--sb=20,0;0.5",
                               "--sq=0,0;0", "--va=1", "--vb=1",
                               "--horizon=100"});
  EXPECT_EQ(holds.exit_code, 0) << holds.err;
  // Closed form (growing_test.cc): expiry at t = 8.5.
  EXPECT_NE(holds.out.find("expires at t = 8.5"), std::string::npos)
      << holds.out;

  const CliRun never = RunCli({"expiry", "--sa=20,0;0.5", "--sb=2,0;0.5",
                               "--sq=0,0;0"});
  EXPECT_EQ(never.exit_code, 0);
  EXPECT_NE(never.out.find("does not dominate"), std::string::npos);

  const CliRun forever = RunCli({"expiry", "--sa=2,0;0.1", "--sb=500,0;0.1",
                                 "--sq=0,0;0.1", "--horizon=10"});
  EXPECT_EQ(forever.exit_code, 0);
  EXPECT_NE(forever.out.find("whole horizon"), std::string::npos);
}

TEST(CliTest, ExpiryRejectsNegativeRates) {
  const CliRun run = RunCli({"expiry", "--sa=2,0;0.5", "--sb=20,0;0.5",
                             "--sq=0,0;0", "--va=-1"});
  EXPECT_EQ(run.exit_code, 1);
}

TEST(CliTest, SelfCheckCommand) {
  const CliRun run = RunCli({"selfcheck", "--scenes=1500", "--dim=3"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("all criterion contracts hold"), std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("Hyperbola"), std::string::npos);
}

TEST(CliTest, SelfCheckRejectsBadArgs) {
  EXPECT_EQ(RunCli({"selfcheck", "--scenes=0"}).exit_code, 1);
  EXPECT_EQ(RunCli({"selfcheck", "--mu=-3"}).exit_code, 1);
}

TEST_F(CliPipelineTest, MissingFileErrors) {
  const CliRun run =
      RunCli({"knn", "--data=/no/such/file.csv", "--query=1,2,3;1"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("error"), std::string::npos);
}

}  // namespace
}  // namespace cli
}  // namespace hyperdom
