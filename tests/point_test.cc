// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/point.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace hyperdom {
namespace {

TEST(PointTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({0, 0}, {5, 7}), 0.0);
}

TEST(PointTest, Norms) {
  EXPECT_DOUBLE_EQ(SquaredNorm({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm({}), 0.0);
}

TEST(PointTest, DistMatchesPaperEquationOne) {
  // Eq. (1): sqrt(sum of squared coordinate differences).
  EXPECT_DOUBLE_EQ(Dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDist({1, 1, 1}, {2, 2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(Dist({7}, {7}), 0.0);
}

TEST(PointTest, Arithmetic) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (Point{4, 6}));
  EXPECT_EQ(Sub({5, 5}, {2, 3}), (Point{3, 2}));
  EXPECT_EQ(Scale({1, -2}, 3.0), (Point{3, -6}));
  EXPECT_EQ(AddScaled({1, 1}, 2.0, {3, 4}), (Point{7, 9}));
  EXPECT_EQ(Midpoint({0, 0}, {4, 6}), (Point{2, 3}));
}

TEST(PointTest, NormalizedHasUnitNorm) {
  const Point u = Normalized({3, 4});
  EXPECT_DOUBLE_EQ(Norm(u), 1.0);
  EXPECT_DOUBLE_EQ(u[0], 0.6);
  EXPECT_DOUBLE_EQ(u[1], 0.8);
}

TEST(PointTest, ToStringFormat) {
  EXPECT_EQ(ToString({1, 2.5}), "(1, 2.5)");
  EXPECT_EQ(ToString({}), "()");
}

TEST(PointPropertyTest, TriangleInequality) {
  Rng rng(404);
  for (int i = 0; i < 2000; ++i) {
    const size_t d = 1 + rng.UniformU64(10);
    Point a(d), b(d), c(d);
    for (size_t j = 0; j < d; ++j) {
      a[j] = rng.Uniform(-100, 100);
      b[j] = rng.Uniform(-100, 100);
      c[j] = rng.Uniform(-100, 100);
    }
    EXPECT_LE(Dist(a, c), Dist(a, b) + Dist(b, c) + 1e-9);
  }
}

TEST(PointPropertyTest, CauchySchwarz) {
  Rng rng(405);
  for (int i = 0; i < 2000; ++i) {
    const size_t d = 1 + rng.UniformU64(10);
    Point a(d), b(d);
    for (size_t j = 0; j < d; ++j) {
      a[j] = rng.Uniform(-10, 10);
      b[j] = rng.Uniform(-10, 10);
    }
    EXPECT_LE(std::fabs(Dot(a, b)), Norm(a) * Norm(b) + 1e-9);
  }
}

TEST(PointPropertyTest, DistSymmetricAndNonNegative) {
  Rng rng(406);
  for (int i = 0; i < 2000; ++i) {
    Point a(4), b(4);
    for (size_t j = 0; j < 4; ++j) {
      a[j] = rng.Gaussian(0, 50);
      b[j] = rng.Gaussian(0, 50);
    }
    EXPECT_GE(Dist(a, b), 0.0);
    EXPECT_DOUBLE_EQ(Dist(a, b), Dist(b, a));
    EXPECT_DOUBLE_EQ(Dist(a, a), 0.0);
  }
}

TEST(PointPropertyTest, SquaredDistConsistentWithDist) {
  Rng rng(407);
  for (int i = 0; i < 1000; ++i) {
    Point a(6), b(6);
    for (size_t j = 0; j < 6; ++j) {
      a[j] = rng.Gaussian(0, 30);
      b[j] = rng.Gaussian(0, 30);
    }
    EXPECT_NEAR(Dist(a, b) * Dist(a, b), SquaredDist(a, b),
                1e-9 * (1.0 + SquaredDist(a, b)));
  }
}

}  // namespace
}  // namespace hyperdom
