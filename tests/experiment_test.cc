// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace hyperdom {
namespace {

std::vector<Hypersphere> SmallData(double mu = 20.0) {
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 4;
  spec.radius_mean = mu;
  spec.seed = 6001;
  return GenerateSynthetic(spec);
}

TEST(DominanceExperimentTest, ProducesPaperShapedRows) {
  DominanceExperimentConfig config;
  config.workload_size = 2000;
  config.repeats = 2;
  const auto rows = RunDominanceExperiment(SmallData(), config);
  ASSERT_EQ(rows.size(), 5u);

  for (const auto& row : rows) {
    EXPECT_GT(row.nanos_per_query, 0.0);
    EXPECT_GE(row.precision_pct, 0.0);
    EXPECT_LE(row.precision_pct, 100.0);
    EXPECT_GE(row.recall_pct, 0.0);
    EXPECT_LE(row.recall_pct, 100.0);
  }

  // Table 1 semantics, measured: every correct criterion has precision
  // 100, every sound criterion has recall 100, Hyperbola has both.
  auto find = [&](const std::string& name) {
    for (const auto& row : rows) {
      if (row.criterion == name) return row;
    }
    ADD_FAILURE() << "missing row " << name;
    return rows[0];
  };
  EXPECT_DOUBLE_EQ(find("MinMax").precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(find("MBR").precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(find("GP").precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(find("Trigonometric").recall_pct, 100.0);
  EXPECT_DOUBLE_EQ(find("Hyperbola").precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(find("Hyperbola").recall_pct, 100.0);
  EXPECT_LT(find("MinMax").recall_pct, 100.0);
  EXPECT_LT(find("Trigonometric").precision_pct, 100.0);
}

TEST(DominanceExperimentTest, CriteriaSubsetRespected) {
  DominanceExperimentConfig config;
  config.workload_size = 200;
  config.repeats = 1;
  config.criteria = {CriterionKind::kHyperbola};
  const auto rows = RunDominanceExperiment(SmallData(), config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].criterion, "Hyperbola");
}

TEST(KnnAlgorithmLabelTest, PaperLabels) {
  EXPECT_EQ(KnnAlgorithmLabel(SearchStrategy::kBestFirst,
                              CriterionKind::kHyperbola),
            "HS(Hyper)");
  EXPECT_EQ(
      KnnAlgorithmLabel(SearchStrategy::kDepthFirst, CriterionKind::kMinMax),
      "DF(MinMax)");
  EXPECT_EQ(KnnAlgorithmLabel(SearchStrategy::kBestFirst, CriterionKind::kMbr),
            "HS(MBR)");
  EXPECT_EQ(KnnAlgorithmLabel(SearchStrategy::kDepthFirst, CriterionKind::kGp),
            "DF(GP)");
}

TEST(KnnExperimentTest, ProducesPaperShapedRows) {
  KnnExperimentConfig config;
  config.k = 5;
  config.num_queries = 3;
  const auto rows = RunKnnExperiment(SmallData(10.0), config);
  ASSERT_EQ(rows.size(), 8u);  // {HS, DF} x {Hyper, MinMax, MBR, GP}

  for (const auto& row : rows) {
    EXPECT_GT(row.millis_per_query, 0.0);
    // Every criterion here is correct: recall pinned at 100.
    EXPECT_DOUBLE_EQ(row.recall_pct, 100.0) << row.algorithm;
    if (row.algorithm.find("Hyper") != std::string::npos) {
      EXPECT_DOUBLE_EQ(row.precision_pct, 100.0) << row.algorithm;
    } else {
      EXPECT_LE(row.precision_pct, 100.0);
    }
  }
}

}  // namespace
}  // namespace hyperdom
