// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Smoke job for the shard-count sweep: runs bench/shard_knn_scaling in
// --smoke mode and validates the emitted hyperdom-bench-v1 JSON — the CI
// guard for bench/results/BENCH_shard.json, and a subprocess-level check
// that the sweep's per-query identity verification (sharded vs unsharded
// answers) passes, since the binary exits non-zero on any divergence.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace hyperdom {
namespace {

#if !defined(HYPERDOM_SHARD_BENCH_BINARY)
#error "shard_bench_smoke_test requires HYPERDOM_SHARD_BENCH_BINARY"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ShardBenchSmokeTest, EmitsValidBenchArtifactWithIdenticalAnswers) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/BENCH_shard_smoke.json";
  const std::string headline_path = dir + "/BENCH_shard_headline.json";
  const std::string command = std::string(HYPERDOM_SHARD_BENCH_BINARY) +
                              " --smoke --json-out=" + json_path +
                              " --headline-out=" + headline_path +
                              " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string json = ReadFileOrDie(json_path);
  EXPECT_NE(json.find("\"schema\": \"hyperdom-bench-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"shard_knn_scaling\""),
            std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"shard-count scaling\""),
            std::string::npos);
  // One row per swept shard count.
  for (const char* shards : {"\"shards\": 1", "\"shards\": 2",
                             "\"shards\": 4", "\"shards\": 8"}) {
    EXPECT_NE(json.find(shards), std::string::npos) << shards;
  }
  EXPECT_NE(json.find("\"millis_per_query\": "), std::string::npos);
  EXPECT_NE(json.find("\"speedup_vs_unsharded\": "), std::string::npos);
  // The identity column must be all-true — the binary would have exited
  // non-zero otherwise, but pin the JSON too.
  EXPECT_NE(json.find("\"identical_to_unsharded\": true"),
            std::string::npos);
  EXPECT_EQ(json.find("\"identical_to_unsharded\": false"),
            std::string::npos);

  // The headline copy is byte-identical by construction.
  EXPECT_EQ(ReadFileOrDie(headline_path), json);
}

}  // namespace
}  // namespace hyperdom
