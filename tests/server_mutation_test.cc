// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Loopback end-to-end tests for the mutable-mode server: insert/remove
// frames applied through the admission queue, kNN answers tracking the
// mutations, kNotSupported from a read-only server, expired mutation
// budgets refused un-applied, and protocol-level codec round-trips of the
// new frame kinds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "data/generator.h"
#include "dominance/criterion.h"
#include "index/mutable_ss_tree.h"
#include "query/mut_query.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace hyperdom {
namespace server {
namespace {

class ServerMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().Reset();
    SyntheticSpec spec;
    spec.n = 500;
    spec.dim = 3;
    spec.radius_mean = 10.0;
    spec.center_mean = 100.0;
    spec.center_stddev = 30.0;
    spec.seed = 5'600;
    data_ = GenerateSynthetic(spec);
    tree_ = std::make_unique<MutableSsTree>(spec.dim);
    std::vector<uint64_t> ids(data_.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    ASSERT_TRUE(tree_->Build(data_, ids).ok());
    criterion_ = MakeCriterion(CriterionKind::kHyperbola);
  }

  void TearDown() override { FaultRegistry::Instance().Reset(); }

  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    auto server =
        std::make_unique<Server>(tree_.get(), criterion_.get(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  Client MakeClient(uint16_t port) {
    ClientOptions options;
    options.port = port;
    options.backoff_base_ms = 1;
    options.backoff_max_ms = 20;
    return Client(options);
  }

  std::vector<Hypersphere> data_;
  std::unique_ptr<MutableSsTree> tree_;
  std::unique_ptr<const DominanceCriterion> criterion_;
};

TEST_F(ServerMutationTest, InsertRemoveRoundTripOverTheWire) {
  auto server = StartServer();
  Client client = MakeClient(server->port());

  const uint64_t version_before = tree_->version();
  InsertRequest insert;
  insert.id = 100'000;
  insert.sphere = Hypersphere({1.0, 2.0, 3.0}, 0.5);
  Result<MutateResponse> inserted = client.Insert(insert);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(inserted->version, version_before + 1);
  EXPECT_EQ(inserted->live, data_.size() + 1);
  EXPECT_EQ(tree_->live_size(), data_.size() + 1);

  RemoveRequest remove;
  remove.id = 100'000;
  Result<MutateResponse> removed = client.Remove(remove);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed->version, version_before + 2);
  EXPECT_EQ(removed->live, data_.size());
  server->Stop();
}

TEST_F(ServerMutationTest, KnnOverTheWireSeesAppliedMutations) {
  auto server = StartServer();
  Client client = MakeClient(server->port());

  // Plant a sphere dead-center on the query: it must dominate the answer.
  const Hypersphere query({500.0, 500.0, 500.0}, 0.1);
  InsertRequest insert;
  insert.id = 777'000;
  insert.sphere = Hypersphere({500.0, 500.0, 500.0}, 0.1);
  ASSERT_TRUE(client.Insert(insert).ok());

  KnnRequest request;
  request.k = 1;
  request.query = query;
  Result<KnnResponse> answer = client.Knn(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  std::set<uint64_t> ids;
  for (const auto& e : answer->answers) ids.insert(e.id);
  EXPECT_EQ(ids.count(777'000), 1u);

  // And the wire answer matches the in-process mutable searcher exactly.
  KnnOptions options;
  options.k = 1;
  const auto direct = MutableKnn(*tree_, *criterion_, options, query);
  std::set<uint64_t> direct_ids;
  for (const auto& e : direct.result.answers) direct_ids.insert(e.id);
  EXPECT_EQ(ids, direct_ids);

  RemoveRequest remove;
  remove.id = 777'000;
  ASSERT_TRUE(client.Remove(remove).ok());
  answer = client.Knn(request);
  ASSERT_TRUE(answer.ok());
  ids.clear();
  for (const auto& e : answer->answers) ids.insert(e.id);
  EXPECT_EQ(ids.count(777'000), 0u) << "removed row still answered";
  server->Stop();
}

TEST_F(ServerMutationTest, MutationFailuresComeBackAsCleanStatuses) {
  auto server = StartServer();
  Client client = MakeClient(server->port());

  // Duplicate id -> InvalidArgument (also the at-least-once dedupe
  // signal documented on Client::Insert).
  InsertRequest insert;
  insert.id = 3;  // seeded as a base row id
  insert.sphere = Hypersphere({1.0, 1.0, 1.0}, 0.5);
  EXPECT_EQ(client.Insert(insert).status().code(),
            StatusCode::kInvalidArgument);

  // Unknown id -> NotFound.
  RemoveRequest remove;
  remove.id = 999'999;
  EXPECT_EQ(client.Remove(remove).status().code(), StatusCode::kNotFound);

  // Dimension mismatch -> InvalidArgument.
  InsertRequest wrong_dim;
  wrong_dim.id = 500'000;
  wrong_dim.sphere = Hypersphere({1.0, 1.0}, 0.5);
  EXPECT_EQ(client.Insert(wrong_dim).status().code(),
            StatusCode::kInvalidArgument);

  // Frozen store -> kConflict (the CLI maps this to exit code 6).
  tree_->Freeze();
  InsertRequest frozen;
  frozen.id = 600'000;
  frozen.sphere = Hypersphere({1.0, 1.0, 1.0}, 0.5);
  EXPECT_EQ(client.Insert(frozen).status().code(), StatusCode::kConflict);
  tree_->Thaw();
  server->Stop();
}

TEST_F(ServerMutationTest, ReadOnlyServerRejectsMutationFrames) {
  // A server over the plain SsTree: mutation frames answer kNotSupported
  // and the connection survives for further queries.
  SsTree read_only(3);
  ASSERT_TRUE(read_only.BulkLoad(data_).ok());
  Server server(&read_only, criterion_.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  InsertRequest insert;
  insert.id = 1'000'000;
  insert.sphere = Hypersphere({1.0, 1.0, 1.0}, 0.5);
  EXPECT_EQ(client.Insert(insert).status().code(),
            StatusCode::kNotSupported);

  KnnRequest request;
  request.k = 3;
  request.query = data_.front();
  EXPECT_TRUE(client.Knn(request).ok());
  server.Stop();
}

TEST_F(ServerMutationTest, ExpiredMutationBudgetIsRefusedUnapplied) {
  auto server = StartServer();
  Client client = MakeClient(server->port());

  const size_t live_before = tree_->live_size();
  InsertRequest insert;
  insert.id = 800'000;
  insert.sphere = Hypersphere({1.0, 1.0, 1.0}, 0.5);
  insert.budget_micros = 1;  // burns away while queued
  const Status status = client.Insert(insert).status();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_EQ(tree_->live_size(), live_before)
      << "an expired mutation must not be applied late";
  server->Stop();
}

TEST_F(ServerMutationTest, MutationsFlowThroughTheAdmissionQueue) {
  // Stall the single worker so the queue (capacity 1) fills, then
  // verify a mutation is shed with kOverloaded like any query — same
  // admission path, same shed semantics.
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<int> starts{0};
  options.worker_start_hook = [&, released] {
    if (starts.fetch_add(1) == 0) released.wait();
  };
  auto server = StartServer(options);

  ClientOptions copt;
  copt.port = server->port();
  copt.max_attempts = 1;  // surface the shed instead of retrying
  Client slow(copt);
  // First request parks in the queue while the worker is held.
  std::thread parked([&] {
    Client c = MakeClient(server->port());
    KnnRequest request;
    request.k = 1;
    request.query = data_.front();
    (void)c.Knn(request);
  });
  // Give the parked request time to occupy the queue slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  InsertRequest insert;
  insert.id = 900'000;
  insert.sphere = Hypersphere({1.0, 1.0, 1.0}, 0.5);
  const Status shed = slow.Insert(insert).status();
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded) << shed.ToString();

  release.set_value();
  parked.join();
  server->Stop();
  EXPECT_GE(server->counters().requests_shed.load(), 1u);
}

// --- codec round-trips of the new frame kinds ----------------------------

TEST(MutationProtocolTest, InsertRequestRoundTrips) {
  InsertRequest request;
  request.budget_micros = 12'345;
  request.id = 0xDEADBEEF;
  request.sphere = Hypersphere({1.5, -2.25, 1e300}, 0.125);
  const std::string payload = EncodeInsertRequest(request);
  Result<InsertRequest> decoded = DecodeInsertRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->budget_micros, request.budget_micros);
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->sphere, request.sphere);
}

TEST(MutationProtocolTest, RemoveAndMutateResponseRoundTrip) {
  RemoveRequest remove;
  remove.budget_micros = 99;
  remove.id = 42;
  Result<RemoveRequest> r = DecodeRemoveRequest(EncodeRemoveRequest(remove));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->budget_micros, 99u);
  EXPECT_EQ(r->id, 42u);

  MutateResponse response;
  response.version = 7;
  response.live = 1'000;
  Result<MutateResponse> m =
      DecodeMutateResponse(EncodeMutateResponse(response));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->version, 7u);
  EXPECT_EQ(m->live, 1'000u);
}

TEST(MutationProtocolTest, MalformedMutationPayloadsAreProtocolErrors) {
  InsertRequest request;
  request.id = 1;
  request.sphere = Hypersphere({1.0, 2.0}, 0.5);
  const std::string good = EncodeInsertRequest(request);
  // Truncation at every byte boundary must yield a clean ProtocolError.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Result<InsertRequest> decoded =
        DecodeInsertRequest(std::string_view(good).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeInsertRequest(good + "x").ok());
  EXPECT_FALSE(DecodeRemoveRequest(std::string(EncodeRemoveRequest(
                                       RemoveRequest{})) + "x")
                   .ok());
}

TEST(MutationProtocolTest, ConflictStatusCrossesTheWire) {
  const std::string payload =
      EncodeErrorResponse(Status::Conflict("store is compacting"));
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(payload, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kConflict);
  EXPECT_NE(remote.message().find("compacting"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace hyperdom
