// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Bench smoke job: runs one real figure binary (fig13_knn_radius) in
// --smoke mode with --json-out/--metrics-out and validates the emitted
// hyperdom-bench-v1 JSON schema plus the metrics dump. This is the CI
// guard for the BENCH_*.json artifacts under bench/results/.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace hyperdom {
namespace {

#if !defined(HYPERDOM_FIG13_BINARY)
#error "obs_bench_smoke_test requires HYPERDOM_FIG13_BINARY"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ObsBenchSmokeTest, Fig13EmitsValidArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/BENCH_knn_smoke.json";
  const std::string metrics_path = dir + "/bench_smoke_metrics.prom";
  const std::string command = std::string(HYPERDOM_FIG13_BINARY) +
                              " --smoke --json-out=" + json_path +
                              " --metrics-out=" + metrics_path +
                              " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string json = ReadFileOrDie(json_path);
  // hyperdom-bench-v1 schema: header fields plus one entry per sweep
  // point, each row carrying the per-algorithm measurements.
  EXPECT_NE(json.find("\"schema\": \"hyperdom-bench-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"fig13_knn_radius\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"sweeps\": ["), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"mu = 5\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"mu = 100\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"HS(Hyper)\""), std::string::npos);
  EXPECT_NE(json.find("\"millis_per_query\": "), std::string::npos);
  EXPECT_NE(json.find("\"precision_pct\": "), std::string::npos);
  EXPECT_NE(json.find("\"recall_pct\": "), std::string::npos);

  const std::string metrics = ReadFileOrDie(metrics_path);
  EXPECT_NE(metrics.find("# TYPE hyperdom_knn_queries_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("hyperdom_index_builds_total{index=\"ss\"}"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("# TYPE hyperdom_experiment_duration_ns histogram"),
      std::string::npos);

  std::remove(json_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace hyperdom
