// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/min_ball.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/sampling.h"

namespace hyperdom {
namespace {

constexpr double kTol = 1e-6;

void ExpectCoversAll(const Hypersphere& ball,
                     const std::vector<Point>& points) {
  for (const auto& p : points) {
    EXPECT_LE(Dist(ball.center(), p), ball.radius() * (1.0 + kTol) + kTol);
  }
}

TEST(BallFromSupportTest, OnePoint) {
  const Hypersphere b = BallFromSupport({{3.0, 4.0}});
  EXPECT_EQ(b.center(), (Point{3, 4}));
  EXPECT_DOUBLE_EQ(b.radius(), 0.0);
}

TEST(BallFromSupportTest, TwoPointsGiveMidpointBall) {
  const Hypersphere b = BallFromSupport({{0.0, 0.0}, {6.0, 8.0}});
  EXPECT_NEAR(b.center()[0], 3.0, 1e-12);
  EXPECT_NEAR(b.center()[1], 4.0, 1e-12);
  EXPECT_NEAR(b.radius(), 5.0, 1e-12);
}

TEST(BallFromSupportTest, EquilateralTriangleCircumball) {
  // Circumradius of an equilateral triangle with side s is s / sqrt(3).
  const double s = 2.0;
  const Hypersphere b = BallFromSupport(
      {{0.0, 0.0}, {s, 0.0}, {s / 2.0, s * std::sqrt(3.0) / 2.0}});
  EXPECT_NEAR(b.radius(), s / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(b.center()[0], 1.0, 1e-9);
}

TEST(BallFromSupportTest, RegularSimplexIn3D) {
  // Circumball of the regular tetrahedron on the canonical basis corners.
  const std::vector<Point> simplex = {{1.0, 0.0, 0.0},
                                      {0.0, 1.0, 0.0},
                                      {0.0, 0.0, 1.0},
                                      {1.0, 1.0, 1.0}};
  const Hypersphere b = BallFromSupport(simplex);
  for (const auto& p : simplex) {
    EXPECT_NEAR(Dist(b.center(), p), b.radius(), 1e-9);
  }
}

TEST(BallFromSupportTest, DegenerateDuplicatesFallBack) {
  const Hypersphere b =
      BallFromSupport({{1.0, 2.0}, {5.0, 2.0}, {5.0, 2.0}});
  EXPECT_NEAR(b.radius(), 2.0, 1e-9);  // the two-point ball
}

TEST(MinBallTest, SinglePoint) {
  const Hypersphere b = MinBallOfPoints({{7.0, -3.0}});
  EXPECT_DOUBLE_EQ(b.radius(), 0.0);
}

TEST(MinBallTest, KnownConfigurations) {
  // Square: min ball is the circumcircle.
  const Hypersphere square = MinBallOfPoints(
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}});
  EXPECT_NEAR(square.radius(), std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(square.center()[0], 1.0, 1e-9);

  // Interior points never matter.
  const Hypersphere with_interior = MinBallOfPoints(
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}, {1.0, 1.0},
       {0.5, 1.5}});
  EXPECT_NEAR(with_interior.radius(), std::sqrt(2.0), 1e-9);

  // Collinear points: the diameter ball of the extremes.
  const Hypersphere line = MinBallOfPoints(
      {{0.0, 0.0}, {1.0, 0.0}, {4.0, 0.0}, {10.0, 0.0}});
  EXPECT_NEAR(line.radius(), 5.0, 1e-9);
  EXPECT_NEAR(line.center()[0], 5.0, 1e-9);
}

class MinBallPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MinBallPropertyTest, CoversAllAndIsMinimalAgainstShrinking) {
  const size_t dim = GetParam();
  Rng rng(6100 + dim);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = 2 + rng.UniformU64(40);
    std::vector<Point> points;
    for (size_t i = 0; i < n; ++i) {
      Point p(dim);
      for (auto& v : p) v = rng.Gaussian(0.0, 10.0);
      points.push_back(std::move(p));
    }
    const Hypersphere ball = MinBallOfPoints(points);
    ExpectCoversAll(ball, points);
    // Minimality proxy: a ball with the same center and 0.1% smaller
    // radius must lose at least one point (the support is on the
    // boundary).
    if (ball.radius() > 1e-9) {
      const double shrunk = ball.radius() * 0.999;
      bool lost = false;
      for (const auto& p : points) {
        if (Dist(ball.center(), p) > shrunk) lost = true;
      }
      EXPECT_TRUE(lost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, MinBallPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10));

TEST(MinBallPropertyTest, NeverWorseThanCentroidBound) {
  Rng rng(6101);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t dim = 2 + rng.UniformU64(6);
    const size_t n = 3 + rng.UniformU64(30);
    std::vector<Point> points;
    Point centroid(dim, 0.0);
    for (size_t i = 0; i < n; ++i) {
      Point p(dim);
      for (auto& v : p) v = rng.Gaussian(0.0, 5.0);
      centroid = Add(centroid, p);
      points.push_back(std::move(p));
    }
    centroid = Scale(centroid, 1.0 / static_cast<double>(n));
    double centroid_radius = 0.0;
    for (const auto& p : points) {
      centroid_radius = std::max(centroid_radius, Dist(centroid, p));
    }
    const Hypersphere ball = MinBallOfPoints(points);
    EXPECT_LE(ball.radius(), centroid_radius * (1.0 + 1e-9));
  }
}

TEST(MinBallOfSpheresTest, CoversEverySphere) {
  Rng rng(6102);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = 2 + rng.UniformU64(20);
    std::vector<Hypersphere> spheres;
    for (size_t i = 0; i < n; ++i) {
      Point c(3);
      for (auto& v : c) v = rng.Gaussian(0.0, 10.0);
      spheres.emplace_back(std::move(c), rng.Uniform(0.0, 4.0));
    }
    const Hypersphere cover = MinBallOfSpheres(spheres);
    for (const auto& s : spheres) {
      EXPECT_LE(Dist(cover.center(), s.center()) + s.radius(),
                cover.radius() * (1.0 + kTol) + kTol);
    }
    // Boundary tightness: some sphere touches the cover.
    double max_edge = 0.0;
    for (const auto& s : spheres) {
      max_edge = std::max(max_edge,
                          Dist(cover.center(), s.center()) + s.radius());
    }
    EXPECT_NEAR(max_edge, cover.radius(), 1e-9);
  }
}

TEST(MinBallTest, DuplicatePointsHandled) {
  const std::vector<Point> points(50, Point{3.0, 3.0, 3.0});
  const Hypersphere ball = MinBallOfPoints(points);
  EXPECT_NEAR(ball.radius(), 0.0, 1e-9);
  EXPECT_NEAR(Dist(ball.center(), points[0]), 0.0, 1e-9);
}

}  // namespace
}  // namespace hyperdom
