// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shard-aware snapshot persistence (shard/shard_snapshot.h): byte-exact
// generation round trips, per-shard corruption fallback (only the bad
// shard rebuilds, and the restored store still answers bit-identically),
// manifest/option mismatch rejection, generation pruning, and torn-write
// behavior under the snapshot/rotate fault site.

#include "shard/shard_snapshot.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "shard/sharded_query.h"

namespace hyperdom {
namespace shard {
namespace {

constexpr size_t kDim = 3;

std::vector<Hypersphere> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypersphere> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point c(kDim);
    for (size_t d = 0; d < kDim; ++d) c[d] = rng.Gaussian(0.0, 20.0);
    data.emplace_back(c, rng.Uniform(0.0, 3.0));
  }
  return data;
}

bool SameBits(const Hypersphere& a, const Hypersphere& b) {
  if (a.dim() != b.dim()) return false;
  const double ra = a.radius();
  const double rb = b.radius();
  if (std::memcmp(&ra, &rb, sizeof(double)) != 0) return false;
  return std::memcmp(a.center().data(), b.center().data(),
                     a.dim() * sizeof(double)) == 0;
}

// The restored store must answer exactly like the original — same ids,
// same order, same coordinate bits.
void ExpectSameAnswers(const ShardedStore& a, const ShardedStore& b) {
  HyperbolaCriterion criterion;
  KnnOptions options;
  options.k = 6;
  Rng rng(777);
  for (int q = 0; q < 4; ++q) {
    Point c(kDim);
    for (size_t d = 0; d < kDim; ++d) c[d] = rng.Gaussian(0.0, 10.0);
    const Hypersphere sq(c, 1.0);
    Result<KnnResult> ra = ShardedKnn(a, sq, criterion, options);
    Result<KnnResult> rb = ShardedKnn(b, sq, criterion, options);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_EQ(ra->answers.size(), rb->answers.size()) << "query " << q;
    for (size_t i = 0; i < ra->answers.size(); ++i) {
      EXPECT_EQ(ra->answers[i].id, rb->answers[i].id) << "query " << q;
      EXPECT_TRUE(SameBits(ra->answers[i].sphere, rb->answers[i].sphere))
          << "query " << q << " position " << i;
    }
  }
}

// A fresh, empty snapshot directory per test.
class ShardSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "hyperdom_shardsnap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Clear();
    ::mkdir(dir_.c_str(), 0755);
  }

  void TearDown() override { Clear(); }

  void Clear() {
    if (auto entries = ListDirectory(dir_); entries.ok()) {
      for (const auto& name : *entries) {
        std::remove((dir_ + "/" + name).c_str());
      }
    }
    ::rmdir(dir_.c_str());
  }

  std::set<std::string> Files() const {
    std::set<std::string> files;
    if (auto entries = ListDirectory(dir_); entries.ok()) {
      files.insert(entries->begin(), entries->end());
    }
    return files;
  }

  ShardedStore BuildStore(const std::vector<Hypersphere>& data,
                          const ShardingOptions& options) {
    ShardedStore store;
    EXPECT_TRUE(ShardedStore::Build(data, options, &store).ok());
    return store;
  }

  std::string dir_;
};

TEST_F(ShardSnapshotTest, RoundTripsByteExactly) {
  const auto data = MakeData(300, 61);
  ShardingOptions options;
  options.shards = 4;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);

  uint64_t seq = 0;
  ASSERT_TRUE(set.Persist(store, &seq).ok());
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(set.CurrentSeq(), 1u);

  ShardedStore loaded;
  std::vector<SnapshotLoadOutcome> outcomes;
  uint64_t loaded_seq = 0;
  ASSERT_TRUE(
      set.LoadLatest(data, options, &loaded, &outcomes, &loaded_seq).ok());
  EXPECT_EQ(loaded_seq, 1u);
  ASSERT_EQ(outcomes.size(), 4u);
  for (size_t j = 0; j < outcomes.size(); ++j) {
    EXPECT_EQ(outcomes[j], SnapshotLoadOutcome::kLoaded) << "shard " << j;
    EXPECT_EQ(loaded.shard(j).size(), store.shard(j).size()) << "shard " << j;
  }
  ExpectSameAnswers(store, loaded);

  // Byte-exactness: persisting the loaded store writes generation 2 files
  // identical byte-for-byte to generation 1's — the serialization is a
  // fixed point of load.
  ASSERT_TRUE(set.Persist(loaded, &seq).ok());
  EXPECT_EQ(seq, 2u);
  for (size_t j = 0; j < store.shards(); ++j) {
    if (store.shard(j).ss == nullptr) continue;
    Result<std::string> gen1 = ReadFileToString(set.ShardPath(j, 1));
    Result<std::string> gen2 = ReadFileToString(set.ShardPath(j, 2));
    ASSERT_TRUE(gen1.ok()) << "shard " << j;
    ASSERT_TRUE(gen2.ok()) << "shard " << j;
    EXPECT_EQ(gen1.ValueOrDie(), gen2.ValueOrDie())
        << "shard " << j << " generation files differ";
  }
}

TEST_F(ShardSnapshotTest, CorruptShardRebuildsOnlyThatShard) {
  const auto data = MakeData(300, 62);
  ShardingOptions options;
  options.shards = 4;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  ASSERT_TRUE(set.Persist(store, nullptr).ok());

  // Flip bytes inside shard 2's generation file: its checksum fails and
  // only that shard falls back to an in-memory rebuild.
  {
    std::fstream f(set.ShardPath(2, 1),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    const char garbage[8] = {0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A};
    f.write(garbage, sizeof(garbage));
  }

  ShardedStore loaded;
  std::vector<SnapshotLoadOutcome> outcomes;
  ASSERT_TRUE(set.LoadLatest(data, options, &loaded, &outcomes, nullptr).ok());
  ASSERT_EQ(outcomes.size(), 4u);
  for (size_t j = 0; j < outcomes.size(); ++j) {
    EXPECT_EQ(outcomes[j], j == 2 ? SnapshotLoadOutcome::kRebuilt
                                  : SnapshotLoadOutcome::kLoaded)
        << "shard " << j;
  }
  // The rebuilt shard is equivalent: the restored store still answers
  // bit-identically to the original.
  ExpectSameAnswers(store, loaded);
}

TEST_F(ShardSnapshotTest, MissingShardFileRebuildsOnlyThatShard) {
  const auto data = MakeData(200, 63);
  ShardingOptions options;
  options.shards = 3;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  ASSERT_TRUE(set.Persist(store, nullptr).ok());
  ASSERT_TRUE(RemoveFile(set.ShardPath(1, 1)).ok());

  ShardedStore loaded;
  std::vector<SnapshotLoadOutcome> outcomes;
  ASSERT_TRUE(set.LoadLatest(data, options, &loaded, &outcomes, nullptr).ok());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0], SnapshotLoadOutcome::kLoaded);
  EXPECT_EQ(outcomes[1], SnapshotLoadOutcome::kRebuilt);
  EXPECT_EQ(outcomes[2], SnapshotLoadOutcome::kLoaded);
  ExpectSameAnswers(store, loaded);
}

TEST_F(ShardSnapshotTest, EmptyShardsPersistAndLoadWithoutFiles) {
  // Two entries over four shards: at least two shards are empty; they
  // write no generation file and load cleanly all the same.
  const auto data = MakeData(2, 64);
  ShardingOptions options;
  options.shards = 4;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  ASSERT_TRUE(set.Persist(store, nullptr).ok());

  ShardedStore loaded;
  std::vector<SnapshotLoadOutcome> outcomes;
  ASSERT_TRUE(set.LoadLatest(data, options, &loaded, &outcomes, nullptr).ok());
  EXPECT_EQ(loaded.size(), data.size());
  for (size_t j = 0; j < loaded.shards(); ++j) {
    EXPECT_EQ(loaded.shard(j).size(), store.shard(j).size()) << "shard " << j;
    EXPECT_EQ(outcomes[j], SnapshotLoadOutcome::kLoaded) << "shard " << j;
  }
}

TEST_F(ShardSnapshotTest, EmptyDirectoryIsNotFound) {
  ShardedSnapshotSet set(dir_);
  EXPECT_EQ(set.CurrentSeq(), 0u);
  ShardedStore loaded;
  const Status status =
      set.LoadLatest(MakeData(10, 1), ShardingOptions{}, &loaded, nullptr,
                     nullptr);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ShardSnapshotTest, MismatchedOptionsAreRejected) {
  const auto data = MakeData(100, 65);
  ShardingOptions options;
  options.shards = 4;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  ASSERT_TRUE(set.Persist(store, nullptr).ok());

  ShardedStore loaded;
  // Different shard count: the generation files hold the wrong slices.
  ShardingOptions wrong_count = options;
  wrong_count.shards = 2;
  EXPECT_EQ(
      set.LoadLatest(data, wrong_count, &loaded, nullptr, nullptr).code(),
      StatusCode::kInvalidArgument);
  // Different policy: same story.
  ShardingOptions wrong_policy = options;
  wrong_policy.policy = ShardPolicy::kKmeans;
  EXPECT_EQ(
      set.LoadLatest(data, wrong_policy, &loaded, nullptr, nullptr).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ShardSnapshotTest, NonSsShardsAreNotSupported) {
  const auto data = MakeData(50, 66);
  ShardingOptions options;
  options.shards = 2;
  options.index = ShardIndexKind::kVpTree;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  EXPECT_EQ(set.Persist(store, nullptr).code(), StatusCode::kNotSupported);
  ShardedStore loaded;
  EXPECT_EQ(set.LoadLatest(data, options, &loaded, nullptr, nullptr).code(),
            StatusCode::kNotSupported);
}

TEST_F(ShardSnapshotTest, PruneKeepsOnlyTheLastTwoGenerations) {
  const auto data = MakeData(120, 67);
  ShardingOptions options;
  options.shards = 2;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(set.Persist(store, nullptr).ok());
  }
  EXPECT_EQ(set.CurrentSeq(), 4u);
  const std::set<std::string> files = Files();
  EXPECT_EQ(files.count("SHARDS"), 1u);
  for (const std::string& name : files) {
    if (name == "SHARDS") continue;
    // Only generations 3 and 4 survive.
    EXPECT_TRUE(name.find(".3.hdsp") != std::string::npos ||
                name.find(".4.hdsp") != std::string::npos)
        << "stale file " << name;
  }
}

#if defined(HYPERDOM_FAULT_INJECTION_ENABLED)

struct RegistryGuard {
  ~RegistryGuard() { FaultRegistry::Instance().Reset(); }
};

// A torn rotation (fault in the window between writing the new
// generation files and swinging the manifest) keeps the previous
// generation serving and leaves no debris — no orphan generation files,
// no .tmp remnants.
TEST_F(ShardSnapshotTest, TornPersistKeepsLastGoodAndLeavesNoDebris) {
  RegistryGuard guard;
  const auto data = MakeData(150, 68);
  ShardingOptions options;
  options.shards = 3;
  const ShardedStore store = BuildStore(data, options);
  ShardedSnapshotSet set(dir_);
  ASSERT_TRUE(set.Persist(store, nullptr).ok());
  const std::set<std::string> before = Files();

  FaultRegistry::Instance().ArmSite("snapshot/rotate", 1);
  const Status torn = set.Persist(store, nullptr);
  FaultRegistry::Instance().Reset();
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(Files(), before);
  EXPECT_EQ(set.CurrentSeq(), 1u);

  ShardedStore loaded;
  std::vector<SnapshotLoadOutcome> outcomes;
  uint64_t seq = 0;
  ASSERT_TRUE(set.LoadLatest(data, options, &loaded, &outcomes, &seq).ok());
  EXPECT_EQ(seq, 1u);
  ExpectSameAnswers(store, loaded);

  // The next rotation heals and publishes generation 2.
  ASSERT_TRUE(set.Persist(store, &seq).ok());
  EXPECT_EQ(seq, 2u);
}

#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace shard
}  // namespace hyperdom
