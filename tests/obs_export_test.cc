// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// End-to-end observability test through the CLI library: a kNN workload
// run with --metrics-out/--trace-out must produce a valid Prometheus/JSON
// metrics dump and a Chrome trace whose per-query spans reconcile exactly
// with the registry counters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tools/cli.h"

namespace hyperdom {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCli(const std::vector<std::string>& args, std::string* out_text) {
  std::ostringstream out, err;
  const int code = cli::Run(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  EXPECT_EQ(err.str(), "") << "stderr: " << err.str();
  return code;
}

// Generates a small shared dataset once for every test in this binary.
class ObsExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_path_ = new std::string(TempPath("obs_export_data.csv"));
    std::ostringstream out, err;
    const int code =
        cli::Run({"generate", "--out=" + *data_path_, "--n=800", "--dim=3",
                  "--seed=42"},
                 out, err);
    ASSERT_EQ(code, 0) << err.str();
  }
  static void TearDownTestSuite() {
    std::remove(data_path_->c_str());
    delete data_path_;
    data_path_ = nullptr;
  }
  void SetUp() override { obs::MetricsRegistry::Instance().ResetAll(); }

  static std::string* data_path_;
};

std::string* ObsExportTest::data_path_ = nullptr;

// Extracts the value of `"name": <uint>` from a JSON dump. Returns 0 when
// the key is absent.
uint64_t JsonUint(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST_F(ObsExportTest, MetricsJsonAndPrometheusOutputs) {
  const std::string json_path = TempPath("obs_export_metrics.json");
  const std::string prom_path = TempPath("obs_export_metrics.prom");
  ASSERT_EQ(RunCli({"knn", "--data=" + *data_path_, "--queries=25", "--k=4",
                    "--metrics-out=" + json_path},
                   nullptr),
            0);
  const std::string json = ReadFileOrDie(json_path);
  EXPECT_NE(json.find("\"schema\": \"hyperdom-metrics-v1\""),
            std::string::npos);
  EXPECT_EQ(
      JsonUint(json, "hyperdom_knn_queries_total{index=\\\"ss\\\"}"), 25u);
  EXPECT_EQ(JsonUint(json, "hyperdom_index_builds_total{index=\\\"ss\\\"}"),
            1u);

  obs::MetricsRegistry::Instance().ResetAll();
  ASSERT_EQ(RunCli({"knn", "--data=" + *data_path_, "--queries=10", "--k=4",
                    "--metrics-out=" + prom_path},
                   nullptr),
            0);
  const std::string prom = ReadFileOrDie(prom_path);
  EXPECT_NE(prom.find("# TYPE hyperdom_knn_queries_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("hyperdom_knn_queries_total{index=\"ss\"} 10"),
            std::string::npos);
  EXPECT_NE(
      prom.find("# TYPE hyperdom_knn_query_duration_ns histogram"),
      std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

TEST_F(ObsExportTest, TraceSpansReconcileWithCounters) {
  const std::string trace_path = TempPath("obs_export_trace.json");
  constexpr uint64_t kQueries = 30;
  ASSERT_EQ(RunCli({"knn", "--data=" + *data_path_,
                    "--queries=" + std::to_string(kQueries), "--k=4",
                    "--trace-out=" + trace_path},
                   nullptr),
            0);

  // The tracer still holds the records the CLI exported; reconcile the
  // structured view against the registry.
  uint64_t knn_spans = 0;
  uint64_t span_nodes_visited = 0;
  uint64_t span_checks = 0;
  for (const obs::TraceRecord& r : obs::Tracer::Instance().Records()) {
    if (r.name != "knn/query") continue;
    ++knn_spans;
    for (const obs::TraceArg& arg : r.args) {
      if (arg.key == "nodes_visited") {
        span_nodes_visited += std::strtoull(arg.value.c_str(), nullptr, 10);
      } else if (arg.key == "dominance_checks") {
        span_checks += std::strtoull(arg.value.c_str(), nullptr, 10);
      }
    }
  }
  auto& registry = obs::MetricsRegistry::Instance();
  auto counter = [&](const obs::MetricDef& def) {
    return registry.GetCounter(def, "index", "ss")->Value();
  };
  EXPECT_EQ(knn_spans, kQueries);
  EXPECT_EQ(counter(obs::kKnnQueries), kQueries);
  // Exact reconciliation: the recorder annotates each span with the same
  // stats it adds to the counters.
  EXPECT_EQ(span_nodes_visited, counter(obs::kKnnNodesVisited));
  EXPECT_EQ(span_checks, counter(obs::kKnnDominanceChecks));
  EXPECT_GT(span_checks, 0u);

  // The exported file is the Chrome trace of those records.
  const std::string trace = ReadFileOrDie(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"knn/query\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"index/build\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST_F(ObsExportTest, DeadlineExpiryShowsUpInMetricsAndTrace) {
  const std::string trace_path = TempPath("obs_export_deadline_trace.json");
  constexpr uint64_t kQueries = 10;
  // A one-node budget expires inside every query.
  ASSERT_EQ(RunCli({"knn", "--data=" + *data_path_,
                    "--queries=" + std::to_string(kQueries), "--k=4",
                    "--node-budget=1", "--trace-out=" + trace_path},
                   nullptr),
            0);
  auto& registry = obs::MetricsRegistry::Instance();
  EXPECT_EQ(registry.GetCounter(obs::kKnnBestEffort, "index", "ss")->Value(),
            kQueries);
  EXPECT_GE(registry.GetCounter(obs::kDeadlineExpired)->Value(), kQueries);
  uint64_t expiry_events = 0;
  for (const obs::TraceRecord& r : obs::Tracer::Instance().Records()) {
    if (r.name == "deadline_expired") {
      EXPECT_TRUE(r.instant);
      EXPECT_NE(r.parent, 0u) << "expiry event should attach to its query";
      ++expiry_events;
    }
  }
  EXPECT_EQ(expiry_events, kQueries);
  std::remove(trace_path.c_str());
}

TEST_F(ObsExportTest, MetricsVerbListsCatalogue) {
  std::string out;
  ASSERT_EQ(RunCli({"metrics"}, &out), 0);
  EXPECT_NE(out.find("hyperdom_knn_queries_total"), std::string::npos);
  EXPECT_NE(out.find("histogram"), std::string::npos);
  EXPECT_NE(out.find("hyperdom_trace_dropped_total"), std::string::npos);
}

}  // namespace
}  // namespace hyperdom
