// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Zero-allocation guarantee on the dominance hot paths, mirroring the obs
// metrics hot-path assertion: a HyperbolaCriterion::Dominates call, a
// certified Decide that settles at tier 1, and the numeric oracle's
// MinDistanceDifference must not touch the heap. The coordinate transform
// (ComputeFocalCoords) and the quartic solver (SolveQuarticWithBoundsInto)
// were rebuilt span-based precisely so these paths allocate nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "dominance/certified.h"
#include "dominance/hyperbola.h"
#include "dominance/numeric_oracle.h"
#include "storage/sphere_store.h"
#include "test_util.h"

// Counting replacement of the global allocator, so tests can assert that a
// code region performs no heap allocation. Must live at global scope.
namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

// GCC pairs the inlined free() below with callers' `new` expressions and
// warns -Wmismatched-new-delete, not seeing that operator new is replaced
// with malloc in this same TU; the pairing is in fact consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hyperdom {
namespace {

// A store of random triples at `dim`, pre-resolved to views. Building the
// fixture allocates, of course — the assertion windows below only cover
// the Decide/Dominates calls.
struct TripleSet {
  SphereStore store;
  size_t n;

  TripleSet(uint64_t seed, size_t n_triples, size_t dim)
      : store(dim), n(n_triples) {
    store.Reserve(3 * n_triples);
    Rng rng(seed);
    for (size_t i = 0; i < 3 * n_triples; ++i) {
      store.Add(test::RandomSphere(&rng, dim, 3.0));
    }
  }

  SphereView a(size_t t) const {
    return store.view(static_cast<uint32_t>(3 * t));
  }
  SphereView b(size_t t) const {
    return store.view(static_cast<uint32_t>(3 * t + 1));
  }
  SphereView q(size_t t) const {
    return store.view(static_cast<uint32_t>(3 * t + 2));
  }
};

TEST(DominanceZeroAllocTest, HyperbolaDominatesDoesNotAllocate) {
  for (size_t dim : {size_t{2}, size_t{10}, size_t{50}}) {
    const TripleSet triples(4200 + dim, 200, dim);
    const HyperbolaCriterion criterion;
    // Warm up: first calls may lazily initialize observability state.
    bool sink = false;
    sink ^= criterion.Dominates(triples.a(0), triples.b(0), triples.q(0));

    const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
    for (size_t t = 0; t < triples.n; ++t) {
      sink ^= criterion.Dominates(triples.a(t), triples.b(t), triples.q(t));
    }
    const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "Hyperbola::Dominates allocated at dim " << dim << " (sink "
        << sink << ")";
  }
}

TEST(DominanceZeroAllocTest, CertifiedTier1DecideDoesNotAllocate) {
  for (size_t dim : {size_t{2}, size_t{10}, size_t{50}}) {
    const TripleSet triples(4300 + dim, 200, dim);
    const CertifiedDominance engine;
    // Warm up (lazy metric registration happens on first call).
    engine.Decide(triples.a(0), triples.b(0), triples.q(0));

    // Random scenes essentially always settle at tier 1; escalations (rare,
    // off the fast path) are allowed to allocate and are skipped here.
    uint64_t measured = 0;
    uint64_t alloc_violations = 0;
    for (size_t t = 0; t < triples.n; ++t) {
      CertifiedTier tier = CertifiedTier::kUnresolved;
      const uint64_t before =
          g_allocation_count.load(std::memory_order_relaxed);
      engine.Decide(triples.a(t), triples.b(t), triples.q(t), &tier);
      const uint64_t after =
          g_allocation_count.load(std::memory_order_relaxed);
      if (tier == CertifiedTier::kQuartic) {
        ++measured;
        if (after != before) ++alloc_violations;
      }
    }
    EXPECT_GT(measured, triples.n / 2) << "tier-1 fast path barely exercised";
    EXPECT_EQ(alloc_violations, 0u)
        << "certified tier-1 Decide allocated at dim " << dim;
  }
}

TEST(DominanceZeroAllocTest, NumericOracleDoesNotAllocate) {
  const TripleSet triples(4400, 50, 4);
  double sink = 0.0;
  sink += MinDistanceDifference(triples.a(0), triples.b(0), triples.q(0));

  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (size_t t = 0; t < triples.n; ++t) {
    sink += MinDistanceDifference(triples.a(t), triples.b(t), triples.q(t));
  }
  const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "MinDistanceDifference allocated (sink " << sink << ")";
}

}  // namespace
}  // namespace hyperdom
