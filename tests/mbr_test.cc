// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/mbr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace hyperdom {
namespace {

TEST(MbrTest, FromSphere) {
  const Mbr box = Mbr::FromSphere(Hypersphere({10.0, 20.0}, 3.0));
  EXPECT_EQ(box.lo(), (Point{7, 17}));
  EXPECT_EQ(box.hi(), (Point{13, 23}));
  EXPECT_DOUBLE_EQ(box.Mid(0), 10.0);
  EXPECT_DOUBLE_EQ(box.HalfExtent(1), 3.0);
}

TEST(MbrTest, FromPointIsDegenerate) {
  const Mbr box = Mbr::FromPoint({1.0, 2.0});
  EXPECT_EQ(box.lo(), box.hi());
  EXPECT_TRUE(box.Contains({1.0, 2.0}));
}

TEST(MbrTest, ContainsIncludesBoundary) {
  const Mbr box({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(box.Contains({0.0, 0.0}));
  EXPECT_TRUE(box.Contains({2.0, 2.0}));
  EXPECT_TRUE(box.Contains({1.0, 1.0}));
  EXPECT_FALSE(box.Contains({2.1, 1.0}));
  EXPECT_FALSE(box.Contains({1.0, -0.1}));
}

TEST(MbrTest, Intersects) {
  const Mbr a({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(a.Intersects(Mbr({1.0, 1.0}, {3.0, 3.0})));
  EXPECT_TRUE(a.Intersects(Mbr({2.0, 2.0}, {3.0, 3.0})));  // corner touch
  EXPECT_FALSE(a.Intersects(Mbr({2.1, 0.0}, {3.0, 1.0})));
  EXPECT_FALSE(a.Intersects(Mbr({0.0, 2.1}, {1.0, 3.0})));
}

TEST(MbrTest, ExtendToCover) {
  Mbr a({0.0, 0.0}, {1.0, 1.0});
  a.ExtendToCover(Mbr({-1.0, 0.5}, {0.5, 3.0}));
  EXPECT_EQ(a.lo(), (Point{-1, 0}));
  EXPECT_EQ(a.hi(), (Point{1, 3}));
}

TEST(MbrTest, MinMaxDistComponents) {
  EXPECT_DOUBLE_EQ(MaxDistComponent(0.0, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(MaxDistComponent(0.0, 2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(MaxDistComponent(0.0, 2.0, -1.0), 3.0);
  EXPECT_DOUBLE_EQ(MinDistComponent(0.0, 2.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(MinDistComponent(0.0, 2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(MinDistComponent(0.0, 2.0, -1.5), 1.5);
}

TEST(MbrTest, BoxMinMaxDist) {
  const Mbr a({0.0, 0.0}, {1.0, 1.0});
  const Mbr b({3.0, 0.0}, {4.0, 1.0});
  EXPECT_DOUBLE_EQ(MinDist(a, b), 2.0);
  EXPECT_DOUBLE_EQ(MaxDist(a, b), std::sqrt(16.0 + 1.0));
  EXPECT_DOUBLE_EQ(MinDist(a, a), 0.0);
}

// Independent evaluation of the Emrich decomposition: the per-dimension
// maxima are found by dense 1-d scans instead of the breakpoint analysis.
// Returns the decomposed objective (dominance <=> value < 0).
double DenseScanObjective(const Mbr& a, const Mbr& b, const Mbr& q,
                          int steps = 2001) {
  double total = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double best = -1e300;
    for (int s = 0; s < steps; ++s) {
      const double t = q.lo()[i] +
                       (q.hi()[i] - q.lo()[i]) * s / (steps - 1);
      const double md = MaxDistComponent(a.lo()[i], a.hi()[i], t);
      const double nd = MinDistComponent(b.lo()[i], b.hi()[i], t);
      best = std::max(best, md * md - nd * nd);
    }
    total += best;
  }
  return total;
}

bool BruteForceRectDominates(const Mbr& a, const Mbr& b, const Mbr& q) {
  return DenseScanObjective(a, b, q) < 0.0;
}

TEST(RectDominatesTest, SimpleSeparatedCase) {
  const Mbr q({0.0, 0.0}, {1.0, 1.0});
  const Mbr a({2.0, 0.0}, {3.0, 1.0});
  const Mbr b({20.0, 0.0}, {21.0, 1.0});
  EXPECT_TRUE(RectDominates(a, b, q));
  EXPECT_FALSE(RectDominates(b, a, q));
}

TEST(RectDominatesTest, TouchingBoxesNeverDominate) {
  const Mbr q({0.0, 0.0}, {1.0, 1.0});
  const Mbr a({2.0, 0.0}, {3.0, 1.0});
  const Mbr b({3.0, 0.0}, {4.0, 1.0});  // shares a face with a
  EXPECT_FALSE(RectDominates(a, b, q));
}

TEST(RectDominatesTest, SelfNeverDominates) {
  const Mbr a({2.0, 0.0}, {3.0, 1.0});
  const Mbr q({0.0, 0.0}, {1.0, 1.0});
  EXPECT_FALSE(RectDominates(a, a, q));
}

// The paper's Lemma 3 scenario translated to boxes: a fat query region
// straddles the mid-space, so the corner-to-corner bounds cross.
TEST(RectDominatesTest, FatQueryBlocksWeakDominance) {
  const Mbr a({-1.0, 9.0}, {1.0, 11.0});
  const Mbr b({-1.0, -11.0}, {1.0, -9.0});
  const Mbr big_q({-30.0, 0.5}, {30.0, 20.0});
  // Still decided exactly by the per-dimension decomposition.
  EXPECT_EQ(RectDominates(a, b, big_q), BruteForceRectDominates(a, b, big_q));
}

TEST(RectDominatesPropertyTest, AgreesWithBruteForceIn2D) {
  Rng rng(606);
  int positives = 0;
  for (int iter = 0; iter < 800; ++iter) {
    auto random_box = [&](double spread) {
      const double x = rng.Uniform(-spread, spread);
      const double y = rng.Uniform(-spread, spread);
      return Mbr({x, y},
                 {x + rng.Uniform(0.1, 4.0), y + rng.Uniform(0.1, 4.0)});
    };
    const Mbr a = random_box(10.0);
    const Mbr b = random_box(10.0);
    const Mbr q = random_box(10.0);
    const double objective = DenseScanObjective(a, b, q);
    if (std::fabs(objective) < 1e-6) continue;  // borderline, skip
    const bool fast = RectDominates(a, b, q);
    EXPECT_EQ(fast, objective < 0.0)
        << a.ToString() << " " << b.ToString() << " " << q.ToString();
    if (fast) ++positives;
  }
  EXPECT_GT(positives, 10);  // the sweep exercises both outcomes
}

TEST(RectDominatesPropertyTest, AgreesWithBruteForceIn3D) {
  Rng rng(607);
  for (int iter = 0; iter < 400; ++iter) {
    auto random_box = [&]() {
      Point lo(3), hi(3);
      for (int i = 0; i < 3; ++i) {
        lo[i] = rng.Uniform(-8.0, 8.0);
        hi[i] = lo[i] + rng.Uniform(0.1, 3.0);
      }
      return Mbr(lo, hi);
    };
    const Mbr a = random_box();
    const Mbr b = random_box();
    const Mbr q = random_box();
    const double objective = DenseScanObjective(a, b, q);
    if (std::fabs(objective) < 1e-6) continue;
    EXPECT_EQ(RectDominates(a, b, q), objective < 0.0)
        << a.ToString() << " " << b.ToString() << " " << q.ToString();
  }
}

}  // namespace
}  // namespace hyperdom
