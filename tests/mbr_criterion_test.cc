// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/mbr_criterion.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hyperdom {
namespace {

TEST(MbrCriterionTest, Metadata) {
  MbrCriterion c;
  EXPECT_EQ(c.name(), "MBR");
  EXPECT_TRUE(c.is_correct());
  EXPECT_FALSE(c.is_sound());
}

TEST(MbrCriterionTest, ObviousDominance) {
  MbrCriterion c;
  EXPECT_TRUE(c.Dominates(Hypersphere({2.0, 0.0}, 0.5),
                          Hypersphere({100.0, 0.0}, 0.5),
                          Hypersphere({0.0, 0.0}, 0.5)));
}

TEST(MbrCriterionTest, ObviousNonDominance) {
  MbrCriterion c;
  EXPECT_FALSE(c.Dominates(Hypersphere({100.0, 0.0}, 0.5),
                           Hypersphere({2.0, 0.0}, 0.5),
                           Hypersphere({0.0, 0.0}, 0.5)));
}

// Paper Lemma 5's construction: three equal-radius spheres along the
// diagonal; dominance holds, but the bounding boxes of Sa and Sb intersect
// at the corners, so the box criterion must say no.
TEST(MbrCriterionTest, Lemma5FalseNegativeWitness) {
  const double r = 1.0;
  const double delta = 0.05;
  const double diag = 1.0 / std::sqrt(2.0);
  const Hypersphere sq({0.0, 0.0}, r);
  const Hypersphere sa({4.0 * r * diag, 4.0 * r * diag}, r);
  const Hypersphere sb({(6.0 * r + delta) * diag, (6.0 * r + delta) * diag},
                       r);
  const test::Scene scene{sa, sb, sq};
  ASSERT_TRUE(test::OracleDominates(scene));
  // The boxes of Sa and Sb overlap: centers are sqrt(2)*(1 + delta/2) ~ 1.45
  // apart per coordinate, box half-widths sum to 2 per coordinate.
  MbrCriterion c;
  EXPECT_FALSE(c.Dominates(sa, sb, sq));
}

// Correctness sweep: a positive answer must always match the oracle.
class MbrCorrectnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MbrCorrectnessTest, NeverFalsePositive) {
  const size_t dim = GetParam();
  Rng rng(910 + dim);
  MbrCriterion c;
  int positives = 0;
  for (int iter = 0; iter < 6000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, dim, 8.0);
    if (!c.Dominates(s.sa, s.sb, s.sq)) continue;
    ++positives;
    if (test::IsBorderline(s)) continue;
    EXPECT_TRUE(test::OracleDominates(s)) << test::SceneToString(s);
  }
  EXPECT_GT(positives, 20) << "sweep produced too few positives to matter";
}

INSTANTIATE_TEST_SUITE_P(Dims, MbrCorrectnessTest,
                         ::testing::Values(2, 3, 4, 8));

// Non-soundness grows with dimensionality: the box inflates the sphere by
// sqrt(d), so in higher d the criterion misses more true dominances.
TEST(MbrCriterionTest, FalseNegativesExistInEveryDimension) {
  for (size_t dim : {2u, 4u, 8u}) {
    Rng rng(920 + dim);
    MbrCriterion c;
    int false_negatives = 0;
    for (int iter = 0; iter < 4000 && false_negatives == 0; ++iter) {
      const test::Scene s = test::RandomScene(&rng, dim, 20.0);
      if (test::IsBorderline(s)) continue;
      if (test::OracleDominates(s) && !c.Dominates(s.sa, s.sb, s.sq)) {
        ++false_negatives;
      }
    }
    EXPECT_GT(false_negatives, 0) << "dim " << dim;
  }
}

TEST(MbrCriterionTest, OverlapImpliesFalse) {
  Rng rng(930);
  MbrCriterion c;
  for (int iter = 0; iter < 500; ++iter) {
    const Hypersphere sa = test::RandomSphere(&rng, 3, 15.0);
    const Hypersphere sb(Add(sa.center(), {1.0, 0.0, 0.0}),
                         sa.radius() + 2.0);
    const Hypersphere sq = test::RandomSphere(&rng, 3, 10.0);
    ASSERT_TRUE(Overlaps(sa, sb));
    EXPECT_FALSE(c.Dominates(sa, sb, sq));
  }
}

}  // namespace
}  // namespace hyperdom
