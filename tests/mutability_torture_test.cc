// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The mixed read/write torture test (run it under TSan via the tsan-mut
// preset): one writer applies a deterministic mutation script — inserts,
// removes, explicit compactions — while reader threads hammer kNN
// queries. Every concurrent answer is stamped with the store version it
// was pinned at; afterwards each (version, query) pair is replayed
// serially against that exact prefix of the mutation log and the
// concurrent answer must match bit for bit: the same id set, each sphere
// byte-identical to the one the script inserted.
//
// Versions map to prefixes exactly because every applied operation
// (insert, remove, compact) publishes exactly one version and
// auto-compaction is disabled: version v == "after the first v script
// operations".
//
// Sized for tier-1 by default (the smoke configuration); set
// HYPERDOM_TORTURE_FULL=1 for the long soak.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "index/mutable_ss_tree.h"
#include "query/knn.h"
#include "query/mut_query.h"
#include "test_util.h"

namespace hyperdom {
namespace {

struct ScriptOp {
  enum Kind { kInsert, kRemove, kCompact } kind;
  uint64_t id = 0;      // insert/remove target
  Hypersphere sphere;   // insert payload
};

// A deterministic mutation script: mostly inserts, a quarter removes,
// a compaction every 64 ops. Remove targets are chosen among ids still
// live at that point in the script, so every op succeeds when applied.
std::vector<ScriptOp> MakeScript(size_t n_ops, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScriptOp> script;
  script.reserve(n_ops);
  std::vector<uint64_t> live;
  uint64_t next_id = 0;
  for (size_t i = 0; i < n_ops; ++i) {
    if (i > 0 && i % 64 == 0) {
      script.push_back(ScriptOp{ScriptOp::kCompact, 0, Hypersphere()});
    } else if (!live.empty() && rng.UniformU64(4) == 0) {
      const size_t victim = rng.UniformU64(live.size());
      script.push_back(ScriptOp{ScriptOp::kRemove, live[victim],
                                Hypersphere()});
      live.erase(live.begin() + victim);
    } else {
      script.push_back(ScriptOp{ScriptOp::kInsert, next_id,
                                test::RandomSphere(&rng, 3, 6.0)});
      live.push_back(next_id);
      ++next_id;
    }
  }
  return script;
}

// The visible rows after the first `prefix` operations of the script.
void ReplayPrefix(const std::vector<ScriptOp>& script, size_t prefix,
                  std::vector<Hypersphere>* spheres,
                  std::vector<uint64_t>* ids) {
  std::map<uint64_t, Hypersphere> rows;
  for (size_t i = 0; i < prefix; ++i) {
    const ScriptOp& op = script[i];
    if (op.kind == ScriptOp::kInsert) {
      rows.emplace(op.id, op.sphere);
    } else if (op.kind == ScriptOp::kRemove) {
      rows.erase(op.id);
    }
  }
  for (const auto& [id, sphere] : rows) {
    ids->push_back(id);
    spheres->push_back(sphere);
  }
}

struct Observation {
  uint64_t version;
  size_t query;
  std::map<uint64_t, Hypersphere> answers;  // id -> sphere as returned
};

TEST(MutabilityTortureTest, ConcurrentKnnMatchesSerialPrefixReplay) {
  const bool full = std::getenv("HYPERDOM_TORTURE_FULL") != nullptr;
  const size_t n_ops = full ? 4000 : 500;
  const size_t n_readers = full ? 8 : 4;
  const size_t queries_per_reader = full ? 400 : 60;
  constexpr size_t kQueryPool = 16;
  constexpr size_t kK = 5;

  const std::vector<ScriptOp> script = MakeScript(n_ops, 0x70A7);
  Rng qrng(0x9E17);
  std::vector<Hypersphere> queries;
  for (size_t i = 0; i < kQueryPool; ++i) {
    queries.push_back(test::RandomSphere(&qrng, 3, 6.0));
  }

  MutableSsTreeOptions options;
  options.auto_compact = false;  // keep version == script prefix length
  MutableSsTree tree(3, options);
  HyperbolaCriterion exact;
  KnnOptions kopt;
  kopt.k = kK;

  std::atomic<bool> writer_done{false};
  std::vector<std::vector<Observation>> observed(n_readers);

  std::vector<std::thread> readers;
  readers.reserve(n_readers);
  for (size_t r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xBEEF + r);
      auto& mine = observed[r];
      mine.reserve(queries_per_reader);
      for (size_t q = 0; q < queries_per_reader; ++q) {
        const size_t qi = rng.UniformU64(kQueryPool);
        const auto answer = MutableKnn(tree, exact, kopt, queries[qi]);
        Observation obs;
        obs.version = answer.version;
        obs.query = qi;
        for (const auto& e : answer.result.answers) {
          obs.answers.emplace(e.id, e.sphere);
        }
        mine.push_back(std::move(obs));
        // Spread reads across the writer's lifetime instead of finishing
        // first.
        if (!writer_done.load(std::memory_order_relaxed) && q % 8 == 0) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::thread writer([&] {
    for (const ScriptOp& op : script) {
      Status applied;
      switch (op.kind) {
        case ScriptOp::kInsert:
          applied = tree.Insert(op.sphere, op.id);
          break;
        case ScriptOp::kRemove:
          applied = tree.Remove(op.id);
          break;
        case ScriptOp::kCompact:
          applied = tree.Compact();
          break;
      }
      ASSERT_TRUE(applied.ok()) << applied.ToString();
    }
    writer_done.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_EQ(tree.version(), script.size());

  // Serial replay: every observed version must be a valid prefix, and the
  // concurrent answer must equal the serial linear scan of that prefix.
  std::map<std::pair<uint64_t, size_t>, const Observation*> unique;
  for (const auto& per_reader : observed) {
    for (const auto& obs : per_reader) {
      ASSERT_LE(obs.version, script.size());
      unique.emplace(std::make_pair(obs.version, obs.query), &obs);
    }
  }
  ASSERT_FALSE(unique.empty());
  size_t checked = 0;
  for (const auto& [key, obs] : unique) {
    std::vector<Hypersphere> live;
    std::vector<uint64_t> live_ids;
    ReplayPrefix(script, static_cast<size_t>(key.first), &live, &live_ids);
    const KnnResult serial =
        KnnLinearScan(live, queries[key.second], kK, exact);
    std::set<uint64_t> serial_ids;
    for (const auto& e : serial.answers) {
      serial_ids.insert(live_ids[e.id]);  // scan ids index into `live`
    }
    std::set<uint64_t> concurrent_ids;
    for (const auto& [id, sphere] : obs->answers) concurrent_ids.insert(id);
    ASSERT_EQ(concurrent_ids, serial_ids)
        << "version " << key.first << " query " << key.second;
    // Bit-identical payloads: each answered sphere is exactly the one the
    // script inserted (doubles round-trip untouched through the store).
    for (const auto& [id, sphere] : obs->answers) {
      const auto it = std::find(live_ids.begin(), live_ids.end(), id);
      ASSERT_NE(it, live_ids.end());
      EXPECT_EQ(sphere, live[it - live_ids.begin()])
          << "version " << key.first << " id " << id;
    }
    ++checked;
  }
  SUCCEED() << checked << " (version, query) pairs replayed";
}

// Writers contending with an explicit Freeze/Thaw drain cycle: mutations
// racing the freeze either apply or fail kConflict — never anything else
// — and the visible set stays consistent with whatever succeeded.
TEST(MutabilityTortureTest, FreezeRaceYieldsOnlyConflicts) {
  MutableSsTreeOptions options;
  options.auto_compact = false;
  MutableSsTree tree(2, options);
  std::atomic<uint64_t> applied{0};
  std::atomic<bool> stop{false};

  std::thread mutator([&] {
    uint64_t id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Status s =
          tree.Insert(Hypersphere({double(id % 97), 1.0}, 0.5), id);
      if (s.ok()) {
        applied.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_EQ(s.code(), StatusCode::kConflict) << s.ToString();
      }
      ++id;
    }
  });
  for (int cycle = 0; cycle < 200; ++cycle) {
    tree.Freeze();
    const size_t frozen_live = tree.live_size();
    std::this_thread::yield();
    // Frozen means frozen: the live count cannot move until Thaw.
    ASSERT_EQ(tree.live_size(), frozen_live);
    tree.Thaw();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  EXPECT_EQ(tree.live_size(), applied.load());
}

}  // namespace
}  // namespace hyperdom
