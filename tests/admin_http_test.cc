// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Admin-plane tests: every endpoint over real loopback HTTP, the
// malformed/oversized/unknown-request hardening (which must never touch
// the query path), the /readyz flip during graceful drain — pinned to
// happen BEFORE the query listener closes — and the background tick that
// keeps gauges fresh while all workers are parked.

#include "server/admin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "dominance/criterion.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"

namespace hyperdom {
namespace server {
namespace {

// Starts a bare admin plane (no query server behind it) with canned
// sources; asserts on failure.
std::unique_ptr<AdminServer> StartAdmin(AdminOptions options = {},
                                        AdminServer::Sources sources = {}) {
  auto admin = std::make_unique<AdminServer>(std::move(options),
                                             std::move(sources));
  const Status started = admin->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return admin;
}

Result<HttpResponse> Get(const AdminServer& admin, const std::string& target) {
  return AdminHttpGet("127.0.0.1", admin.port(), target, /*timeout_ms=*/2000);
}

TEST(AdminHttpTest, ServesEveryEndpoint) {
  AdminServer::Sources sources;
  sources.queue_depth = [] { return size_t{3}; };
  sources.active_connections = [] { return int64_t{2}; };
  sources.requests_served = [] { return uint64_t{77}; };
  sources.store_version = [] { return uint64_t{5}; };
  sources.store_live = [] { return uint64_t{1000}; };
  AdminOptions options;
  options.build_info = "test build";
  auto admin = StartAdmin(options, std::move(sources));

  auto metrics = Get(*admin, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status_code, 200);

  auto metrics_json = Get(*admin, "/metrics.json");
  ASSERT_TRUE(metrics_json.ok());
  EXPECT_EQ(metrics_json->status_code, 200);
  EXPECT_NE(metrics_json->body.find("\"schema\": \"hyperdom-metrics-v1\""),
            std::string::npos);

  auto healthz = Get(*admin, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  auto readyz = Get(*admin, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status_code, 200);
  EXPECT_EQ(readyz->body, "ready\n");

  auto statusz = Get(*admin, "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status_code, 200);
  EXPECT_NE(statusz->body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"build\":\"test build\""),
            std::string::npos);
  EXPECT_NE(statusz->body.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"version\":5"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"live\":1000"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"epoch_lag\":"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"queue_depth\":3"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"active_connections\":2"),
            std::string::npos);
  EXPECT_NE(statusz->body.find("\"requests_served\":77"), std::string::npos);

  auto tracez = Get(*admin, "/tracez");
  ASSERT_TRUE(tracez.ok());
  EXPECT_EQ(tracez->status_code, 200);
  EXPECT_NE(tracez->body.find("traceEvents"), std::string::npos);

  EXPECT_EQ(admin->counters().requests.load(), 6u);
  EXPECT_EQ(admin->counters().http_errors.load(), 0u);
}

TEST(AdminHttpTest, QueryStringsAreIgnored) {
  auto admin = StartAdmin();
  auto response = Get(*admin, "/healthz?probe=lb");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
}

TEST(AdminHttpTest, UnknownEndpointIs404) {
  auto admin = StartAdmin();
  auto response = Get(*admin, "/nope");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);
  EXPECT_EQ(admin->counters().http_errors.load(), 1u);
}

// Raw-socket sender for requests AdminHttpGet cannot produce.
// `half_close` signals end-of-request via SHUT_WR (so the server sees a
// truncated request rather than waiting out its read timeout).
Result<HttpResponse> SendRaw(const AdminServer& admin, const std::string& raw,
                             bool half_close = false) {
  Result<int> fd = ConnectWithTimeout("127.0.0.1", admin.port(), 2000);
  if (!fd.ok()) return fd.status();
  Status wrote = WriteFull(*fd, raw.data(), raw.size(), 2000);
  if (!wrote.ok()) {
    CloseSocket(*fd);
    return wrote;
  }
  if (half_close) ShutdownWrite(*fd);
  std::string out;
  char chunk[4096];
  for (;;) {
    Result<size_t> got = ReadSome(*fd, chunk, sizeof(chunk), 2000);
    if (!got.ok()) {
      CloseSocket(*fd);
      return got.status();
    }
    if (*got == 0) break;
    out.append(chunk, *got);
  }
  CloseSocket(*fd);
  HttpResponse response;
  const size_t sp = out.find(' ');
  if (sp == std::string::npos) return Status::ProtocolError("no status line");
  response.status_code = std::atoi(out.c_str() + sp + 1);
  response.body = out;
  return response;
}

TEST(AdminHttpTest, MalformedRequestLineIs400) {
  auto admin = StartAdmin();
  auto response = SendRaw(*admin, "garbage-no-spaces\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
}

TEST(AdminHttpTest, TruncatedRequestIs400) {
  auto admin = StartAdmin();
  // Close before the header terminator ever arrives.
  auto response =
      SendRaw(*admin, "GET /healthz HTTP/1.0\r\n", /*half_close=*/true);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
}

TEST(AdminHttpTest, NonGetIs405) {
  auto admin = StartAdmin();
  auto response =
      SendRaw(*admin, "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 405);
}

TEST(AdminHttpTest, OversizedRequestIs431) {
  AdminOptions options;
  options.max_request_bytes = 256;
  auto admin = StartAdmin(options);
  const std::string huge =
      "GET /metrics HTTP/1.0\r\nX-Pad: " + std::string(4096, 'x') + "\r\n\r\n";
  auto response = SendRaw(*admin, huge);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 431);
  EXPECT_EQ(admin->counters().http_errors.load(), 1u);
  EXPECT_EQ(admin->counters().requests.load(), 0u);
}

TEST(AdminHttpTest, ReadyzFlipsOn503) {
  auto admin = StartAdmin();
  admin->SetReady(false);
  auto response = Get(*admin, "/readyz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 503);
  EXPECT_EQ(response->body, "draining\n");
  admin->SetReady(true);
  response = Get(*admin, "/readyz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
}

// Fixture owning a small dataset + tree for tests that need a real query
// server behind the admin plane.
class AdminServerIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.n = 2'000;
    spec.dim = 3;
    spec.radius_mean = 10.0;
    spec.center_mean = 100.0;
    spec.center_stddev = 30.0;
    spec.seed = 8'800;
    data_ = GenerateSynthetic(spec);
    tree_ = std::make_unique<SsTree>(spec.dim);
    ASSERT_TRUE(tree_->BulkLoad(data_).ok());
    criterion_ = MakeCriterion(CriterionKind::kHyperbola);
    queries_ = MakeKnnQueries(data_, 8, 8'900);
  }

  std::vector<Hypersphere> data_;
  std::unique_ptr<SsTree> tree_;
  std::unique_ptr<const DominanceCriterion> criterion_;
  std::vector<Hypersphere> queries_;
};

// The acceptance-pinned ordering: drain_begin_hook (which flips /readyz
// to 503) runs BEFORE the query listener closes, so during that window a
// load balancer sees "draining" while the query port still accepts.
TEST_F(AdminServerIntegrationTest, ReadyzFlipsBeforeListenerCloses) {
  AdminServer admin({}, {});
  ASSERT_TRUE(admin.Start().ok());

  bool listener_open_at_drain = false;
  int readyz_at_drain = 0;
  ServerOptions options;
  Server* server_ptr = nullptr;
  std::unique_ptr<Server> server;
  options.drain_begin_hook = [&] {
    admin.SetReady(false);
    auto readyz = AdminHttpGet("127.0.0.1", admin.port(), "/readyz", 2000);
    if (readyz.ok()) readyz_at_drain = readyz->status_code;
    // The query listener has NOT closed yet: a fresh TCP connect to the
    // query port must still complete.
    auto fd = ConnectWithTimeout("127.0.0.1", server_ptr->port(), 2000);
    listener_open_at_drain = fd.ok();
    if (fd.ok()) CloseSocket(*fd);
  };
  server = std::make_unique<Server>(tree_.get(), criterion_.get(), options);
  server_ptr = server.get();
  ASSERT_TRUE(server->Start().ok());

  // Sanity: both planes answer before the drain.
  auto ready = AdminHttpGet("127.0.0.1", admin.port(), "/readyz", 2000);
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status_code, 200);

  server->Stop();
  EXPECT_EQ(readyz_at_drain, 503);
  EXPECT_TRUE(listener_open_at_drain)
      << "query listener closed before the drain hook ran";
  admin.Stop();
}

// Admin HTTP garbage must never reach the query path: fire hostile admin
// requests while the query server works, then check the query-side
// counters saw only the real queries.
TEST_F(AdminServerIntegrationTest, AdminGarbageNeverTouchesQueryPath) {
  ServerOptions options;
  Server server(tree_.get(), criterion_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  AdminServer::Sources sources;
  sources.requests_served = [&server] {
    return server.counters().requests_served.load();
  };
  AdminServer admin({}, std::move(sources));
  ASSERT_TRUE(admin.Start().ok());

  ClientOptions client_options;
  client_options.port = server.port();
  Client client(client_options);
  KnnRequest request;
  request.query = queries_[0];
  request.k = 5;
  ASSERT_TRUE(client.Knn(request).ok());

  (void)SendRaw(admin, "BOGUS\r\n\r\n");
  (void)SendRaw(admin, "DELETE /metrics HTTP/1.0\r\n\r\n");
  (void)Get(admin, "/missing");
  ASSERT_TRUE(client.Knn(request).ok());

  EXPECT_EQ(server.counters().requests_served.load(), 2u);
  EXPECT_EQ(server.counters().protocol_errors.load(), 0u);
  EXPECT_EQ(admin.counters().http_errors.load(), 3u);
  admin.Stop();
  server.Stop();
}

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
// The background tick must keep the queue-depth gauge fresh with zero
// traffic: park every worker, fill the queue, wipe the metrics, and the
// next ticks alone must restore the gauge to the queue size.
TEST_F(AdminServerIntegrationTest, TickRefreshesGaugesWithParkedWorkers) {
  std::atomic<bool> release{false};
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 4;
  options.worker_start_hook = [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(tree_.get(), criterion_.get(), options);
  ASSERT_TRUE(server.Start().ok());

  AdminOptions admin_options;
  admin_options.tick_interval_ms = 20;
  AdminServer::Sources sources;
  sources.queue_depth = [&server] { return server.QueueDepth(); };
  AdminServer admin(std::move(admin_options), std::move(sources));
  ASSERT_TRUE(admin.Start().ok());

  // Fill the queue: the lone worker is parked, so requests pile up.
  std::vector<std::thread> senders;
  for (int i = 0; i < 3; ++i) {
    senders.emplace_back([this, port = server.port(), i] {
      ClientOptions client_options;
      client_options.port = port;
      client_options.max_attempts = 1;
      Client client(client_options);
      KnnRequest request;
      request.query = queries_[static_cast<size_t>(i)];
      request.k = 5;
      (void)client.Knn(request);
    });
  }
  // Wait until the queue really holds the 3 requests.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.QueueDepth() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.QueueDepth(), 3u);

  // Wipe every gauge, then let ticks alone restore it — proof the admin
  // plane re-samples rather than relying on query-path write-through.
  obs::MetricsRegistry::Instance().ResetAll();
  const uint64_t ticks_before = admin.counters().ticks.load();
  while (admin.counters().ticks.load() < ticks_before + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(admin.counters().ticks.load(), ticks_before + 2);
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::Instance()
                       .GetGauge(std::string(obs::kServerQueueDepth.name))
                       ->Value(),
                   3.0);

  release.store(true);
  for (auto& t : senders) t.join();
  admin.Stop();
  server.Stop();
}
#endif  // HYPERDOM_OBSERVABILITY_ENABLED

}  // namespace
}  // namespace server
}  // namespace hyperdom
