// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// AoS <-> SoA equivalence: the interchangeability contract of the columnar
// refactor. Every dominance criterion and the certified engine must return
// BIT-IDENTICAL verdicts whether a triple is evaluated through the owned
// Hypersphere adapters or through SphereViews resolved from a SphereStore.
// The store is a layout change, not an arithmetic change; any divergence
// here means a kernel computed something different on contiguous rows.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "dominance/certified.h"
#include "dominance/criterion.h"
#include "storage/sphere_store.h"
#include "test_util.h"

namespace hyperdom {
namespace {

// The full criterion roster: the paper's five (Table 1), the numeric
// oracle, the certified adapter — every kind the factory can produce.
const CriterionKind kAllKinds[] = {
    CriterionKind::kMinMax,         CriterionKind::kMbr,
    CriterionKind::kGp,             CriterionKind::kTrigonometric,
    CriterionKind::kHyperbola,      CriterionKind::kNumericOracle,
    CriterionKind::kCertified,
};

struct Workload {
  std::vector<Hypersphere> spheres;  // 3 * n_triples, AoS side
  SphereStore store;                 // same spheres, SoA side
};

// Seeded workload of `n` (Sa, Sb, Sq) triples at dimension `dim`, with a
// mix of scales so every verdict path (overlap, MDD fail, hyperbola) is
// exercised.
Workload MakeWorkload(uint64_t seed, size_t n, size_t dim) {
  Workload w;
  w.store = SphereStore(dim);
  w.store.Reserve(3 * n);
  Rng rng(seed);
  for (size_t i = 0; i < 3 * n; ++i) {
    const double scale = (i % 5 == 0) ? 0.1 : 4.0;
    w.spheres.push_back(test::RandomSphere(&rng, dim, scale));
    w.store.Add(w.spheres.back());
  }
  return w;
}

class AosSoaEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AosSoaEquivalenceTest, AllCriteriaBitIdenticalOn10kTriples) {
  const size_t dim = GetParam();
  // 10k triples total across the criteria sweep keeps runtime sane while
  // still hammering every verdict branch (the oracle is ~1ms/call).
  const size_t n = 10'000 / (sizeof(kAllKinds) / sizeof(kAllKinds[0]));
  const Workload w = MakeWorkload(3000 + dim, n, dim);

  for (CriterionKind kind : kAllKinds) {
    const auto criterion = MakeCriterion(kind);
    for (size_t t = 0; t < n; ++t) {
      const Hypersphere& sa = w.spheres[3 * t];
      const Hypersphere& sb = w.spheres[3 * t + 1];
      const Hypersphere& sq = w.spheres[3 * t + 2];
      const uint32_t base = static_cast<uint32_t>(3 * t);
      const SphereView va = w.store.view(base);
      const SphereView vb = w.store.view(base + 1);
      const SphereView vq = w.store.view(base + 2);

      EXPECT_EQ(criterion->Dominates(sa, sb, sq),
                criterion->Dominates(va, vb, vq))
          << criterion->name() << " triple " << t << " dim " << dim;
      EXPECT_EQ(criterion->DecideVerdict(sa, sb, sq),
                criterion->DecideVerdict(va, vb, vq))
          << criterion->name() << " verdict, triple " << t;
    }
  }
}

TEST_P(AosSoaEquivalenceTest, CertifiedEngineBitIdenticalWithTiers) {
  const size_t dim = GetParam();
  const size_t n = 1500;
  const Workload w = MakeWorkload(3100 + dim, n, dim);
  CertifiedDominance engine;

  for (size_t t = 0; t < n; ++t) {
    const uint32_t base = static_cast<uint32_t>(3 * t);
    CertifiedTier tier_aos = CertifiedTier::kUnresolved;
    CertifiedTier tier_soa = CertifiedTier::kUnresolved;
    const Verdict aos =
        engine.Decide(w.spheres[3 * t], w.spheres[3 * t + 1],
                      w.spheres[3 * t + 2], &tier_aos);
    const Verdict soa =
        engine.Decide(w.store.view(base), w.store.view(base + 1),
                      w.store.view(base + 2), &tier_soa);
    EXPECT_EQ(aos, soa) << "triple " << t << " dim " << dim;
    // Not just the verdict: the same tier must resolve both, or the two
    // layouts took different escalation paths.
    EXPECT_EQ(tier_aos, tier_soa) << "triple " << t << " dim " << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, AosSoaEquivalenceTest,
                         ::testing::Values(2, 3, 10));

}  // namespace
}  // namespace hyperdom
