// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Pins the merge invariant of BestKnownList::MergeFrom (the scatter-gather
// contract, src/shard/): a candidate stream split arbitrarily across
// 1..8 per-part lists and folded back with MergeFrom yields answers
// BIT-IDENTICAL to feeding the whole stream through one list — same ids,
// same order, same coordinate bits — for both TakeAnswers and the
// best-effort TakeAnswersWithin filter.

#include "query/best_known_list.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "geometry/hypersphere.h"

namespace hyperdom {
namespace {

// Bitwise sphere equality: the contract is bit-identity, not tolerance.
bool SameBits(const Hypersphere& a, const Hypersphere& b) {
  if (a.dim() != b.dim()) return false;
  const double ra = a.radius();
  const double rb = b.radius();
  if (std::memcmp(&ra, &rb, sizeof(double)) != 0) return false;
  return std::memcmp(a.center().data(), b.center().data(),
                     a.dim() * sizeof(double)) == 0;
}

void ExpectIdentical(const std::vector<DataEntry>& got,
                     const std::vector<DataEntry>& want,
                     const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " position " << i;
    EXPECT_TRUE(SameBits(got[i].sphere, want[i].sphere))
        << context << " position " << i;
  }
}

class BklMergeTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 3;

  // A candidate pool with substantial overlap so all three maintenance
  // cases (insert, dominance park, distance drop) fire regularly.
  std::vector<Hypersphere> MakePool(Rng* rng, size_t n) {
    std::vector<Hypersphere> pool;
    pool.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Point c(kDim);
      for (size_t d = 0; d < kDim; ++d) c[d] = rng->Gaussian(0.0, 15.0);
      pool.emplace_back(c, rng->Uniform(0.0, 5.0));
    }
    return pool;
  }

  HyperbolaCriterion criterion_;
  Hypersphere sq_{Point{0.0, 0.0, 0.0}, 1.0};
};

// Feeds `order[i]`-th pool entry to the list that `part_of[i]` selects,
// merges the parts in index order, and finalizes. parts == 1 degenerates
// to the single-list feed that defines the expected answer.
struct SplitRun {
  std::vector<DataEntry> take_answers;
  std::vector<DataEntry> take_within;
};

SplitRun RunSplit(const std::vector<Hypersphere>& pool, SphereStore* store,
                  const std::vector<uint32_t>& slots,
                  const DominanceCriterion* criterion, const Hypersphere* sq,
                  size_t k, const std::vector<size_t>& part_of, size_t parts,
                  double within_bound) {
  (void)pool;
  std::vector<KnnStats> stats(parts);
  std::vector<BestKnownList> lists;
  lists.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    lists.emplace_back(criterion, sq, k, KnnPruningMode::kDeferred, &stats[p]);
  }
  for (size_t i = 0; i < part_of.size(); ++i) {
    lists[part_of[i]].Access(
        store->Resolve(StoredEntry{slots[i], static_cast<uint64_t>(i)}));
  }

  // Two independent merged lists: TakeAnswers* consumes the list, and the
  // contract covers both finalizers over the same merged state.
  SplitRun run;
  for (int variant = 0; variant < 2; ++variant) {
    std::vector<KnnStats> stats2(parts);
    std::vector<BestKnownList> lists2;
    lists2.reserve(parts);
    for (size_t p = 0; p < parts; ++p) {
      lists2.emplace_back(criterion, sq, k, KnnPruningMode::kDeferred,
                          &stats2[p]);
    }
    for (size_t i = 0; i < part_of.size(); ++i) {
      lists2[part_of[i]].Access(
          store->Resolve(StoredEntry{slots[i], static_cast<uint64_t>(i)}));
    }
    KnnStats merged_stats;
    BestKnownList merged(criterion, sq, k, KnnPruningMode::kDeferred,
                         &merged_stats);
    for (size_t p = 0; p < parts; ++p) {
      merged.MergeFrom(std::move(lists2[p]));
    }
    if (variant == 0) {
      run.take_answers = merged.TakeAnswers();
    } else {
      run.take_within = merged.TakeAnswersWithin(within_bound);
    }
  }
  return run;
}

TEST_F(BklMergeTest, SplitStreamsMergeBitIdentical) {
  Rng rng(9001);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 40 + rng.UniformU64(80);
    const size_t k = 1 + rng.UniformU64(8);
    const auto pool = MakePool(&rng, n);
    SphereStore store(kDim);
    store.Reserve(n);
    std::vector<uint32_t> slots;
    for (const auto& s : pool) slots.push_back(store.Add(s));
    // A finite within-bound near the middle of the distance distribution,
    // so TakeAnswersWithin actually filters in some trials.
    const double within = rng.Uniform(5.0, 40.0);

    std::vector<size_t> ones(n, 0);
    const SplitRun expected =
        RunSplit(pool, &store, slots, &criterion_, &sq_, k, ones, 1, within);

    for (size_t parts = 2; parts <= 8; ++parts) {
      // Round-robin split.
      std::vector<size_t> rr(n);
      for (size_t i = 0; i < n; ++i) rr[i] = i % parts;
      SplitRun got = RunSplit(pool, &store, slots, &criterion_, &sq_, k, rr,
                              parts, within);
      ExpectIdentical(got.take_answers, expected.take_answers,
                      "round-robin TakeAnswers parts=" +
                          std::to_string(parts));
      ExpectIdentical(got.take_within, expected.take_within,
                      "round-robin TakeAnswersWithin parts=" +
                          std::to_string(parts));

      // Contiguous split.
      std::vector<size_t> contig(n);
      for (size_t i = 0; i < n; ++i) contig[i] = i * parts / n;
      got = RunSplit(pool, &store, slots, &criterion_, &sq_, k, contig, parts,
                     within);
      ExpectIdentical(got.take_answers, expected.take_answers,
                      "contiguous TakeAnswers parts=" + std::to_string(parts));
      ExpectIdentical(got.take_within, expected.take_within,
                      "contiguous TakeAnswersWithin parts=" +
                          std::to_string(parts));

      // Random split (seeded per trial/parts).
      std::vector<size_t> random(n);
      for (size_t i = 0; i < n; ++i) {
        random[i] = static_cast<size_t>(rng.UniformU64(parts));
      }
      got = RunSplit(pool, &store, slots, &criterion_, &sq_, k, random, parts,
                     within);
      ExpectIdentical(got.take_answers, expected.take_answers,
                      "random TakeAnswers parts=" + std::to_string(parts));
      ExpectIdentical(got.take_within, expected.take_within,
                      "random TakeAnswersWithin parts=" +
                          std::to_string(parts));
    }
  }
}

// The deferred set must survive the merge: an entry parked (case-2
// dominated against a part's interim Sk) in one part can still belong to
// the final answer when the other parts never saw a dominator — the
// pending-bound revive of the final-Sk filter.
TEST_F(BklMergeTest, ParkedEntriesReviveAcrossParts) {
  SphereStore store(kDim);
  store.Reserve(8);
  // Part 0 sees a dominator at distance 5 and then a dominated entry just
  // behind it (parked). Part 1 sees only far entries. In the single-list
  // feed the parked entry is still parked; both must agree after merge.
  std::vector<Hypersphere> pool = {
      Hypersphere(Point{5.0, 0.0, 0.0}, 0.5),   // near, dominates the next
      Hypersphere(Point{6.0, 0.0, 0.0}, 0.1),   // case-2 parked behind it
      Hypersphere(Point{30.0, 0.0, 0.0}, 0.5),  // far
      Hypersphere(Point{31.0, 0.0, 0.0}, 0.5),  // far
  };
  std::vector<uint32_t> slots;
  for (const auto& s : pool) slots.push_back(store.Add(s));

  const size_t k = 1;
  std::vector<size_t> ones(pool.size(), 0);
  const SplitRun expected = RunSplit(pool, &store, slots, &criterion_, &sq_,
                                     k, ones, 1, /*within=*/1e9);
  // Split the dominator and the parked entry into DIFFERENT parts, so the
  // parked entry's part never saw its dominator at access time.
  const std::vector<size_t> split = {0, 1, 1, 0};
  const SplitRun got = RunSplit(pool, &store, slots, &criterion_, &sq_, k,
                                split, 2, /*within=*/1e9);
  ExpectIdentical(got.take_answers, expected.take_answers, "revive");
  ExpectIdentical(got.take_within, expected.take_within, "revive within");
}

// Merging into a non-empty list must behave like continuing the feed:
// MergeFrom is Access-replay, not concatenation.
TEST_F(BklMergeTest, MergeIntoNonEmptyListEqualsContinuedFeed) {
  Rng rng(1234);
  const size_t n = 60;
  const auto pool = MakePool(&rng, n);
  SphereStore store(kDim);
  store.Reserve(n);
  std::vector<uint32_t> slots;
  for (const auto& s : pool) slots.push_back(store.Add(s));
  const size_t k = 3;

  KnnStats single_stats;
  BestKnownList single(&criterion_, &sq_, k, KnnPruningMode::kDeferred,
                       &single_stats);
  for (size_t i = 0; i < n; ++i) {
    single.Access(store.Resolve(StoredEntry{slots[i], i}));
  }
  const auto expected = single.TakeAnswers();

  KnnStats a_stats, b_stats;
  BestKnownList a(&criterion_, &sq_, k, KnnPruningMode::kDeferred, &a_stats);
  BestKnownList b(&criterion_, &sq_, k, KnnPruningMode::kDeferred, &b_stats);
  for (size_t i = 0; i < n / 2; ++i) {
    a.Access(store.Resolve(StoredEntry{slots[i], i}));
  }
  for (size_t i = n / 2; i < n; ++i) {
    b.Access(store.Resolve(StoredEntry{slots[i], i}));
  }
  a.MergeFrom(std::move(b));  // a already holds half the stream
  ExpectIdentical(a.TakeAnswers(), expected, "merge into non-empty");
}

}  // namespace
}  // namespace hyperdom
