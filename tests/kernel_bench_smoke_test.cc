// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Smoke job for the kernel microbenchmark: runs bench/kernel_microbench
// in --smoke mode and validates the emitted hyperdom-bench-v1 JSON — the
// CI guard for bench/results/BENCH_kernels.json. Also pins the
// --headline-out contract: the second copy (the repo-root headline file)
// must be byte-identical to the primary artifact from the same run, and
// the batched scalar-vs-SIMD sweep rows must be present even under
// --smoke.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace hyperdom {
namespace {

#if !defined(HYPERDOM_KERNEL_BENCH_BINARY)
#error "kernel_bench_smoke_test requires HYPERDOM_KERNEL_BENCH_BINARY"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(KernelBenchSmokeTest, EmitsValidArtifactWithBatchedRows) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/BENCH_kernels_smoke.json";
  const std::string headline_path = dir + "/BENCH_kernels_headline.json";
  const std::string command = std::string(HYPERDOM_KERNEL_BENCH_BINARY) +
                              " --smoke --json-out=" + json_path +
                              " --headline-out=" + headline_path +
                              " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string json = ReadFileOrDie(json_path);
  EXPECT_NE(json.find("\"schema\": \"hyperdom-bench-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"kernel_microbench\""),
            std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  // Legacy layout rows.
  EXPECT_NE(json.find("\"label\": \"d=50\""), std::string::npos);
  EXPECT_NE(json.find("\"legacy_ns_per_op\": "), std::string::npos);
  // Batched SIMD rows (every dim, even under --smoke).
  EXPECT_NE(json.find("\"label\": \"batched d=50\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"batched d=100\""), std::string::npos);
  EXPECT_NE(json.find("\"scalar_batched_ns_per_op\": "), std::string::npos);
  EXPECT_NE(json.find("\"simd_batched_ns_per_op\": "), std::string::npos);
  EXPECT_NE(json.find("\"simd_speedup\": "), std::string::npos);
  EXPECT_NE(json.find("\"batch_speedup\": "), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"hyperbola_tier1\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\": \""), std::string::npos);

  // The headline copy is the same bytes, by construction.
  EXPECT_EQ(json, ReadFileOrDie(headline_path));
}

}  // namespace
}  // namespace hyperdom
