// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Cross-criterion property sweeps pinning the paper's Table 1 claims:
//   * correct criteria never return a false positive,
//   * sound criteria never return a false negative,
//   * Lemma 1 (overlap => no dominance) for every correct criterion,
//   * Hyperbola is at least as complete as every correct criterion and at
//     least as precise as every sound criterion.

#include <gtest/gtest.h>

#include <memory>

#include "dominance/criterion.h"
#include "test_util.h"

namespace hyperdom {
namespace {

struct SweepParam {
  CriterionKind kind;
  size_t dim;
  double mu;
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << CriterionKindName(p.kind) << "_d" << p.dim << "_mu" << p.mu;
}

class CriterionSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  std::unique_ptr<DominanceCriterion> criterion_ =
      MakeCriterion(GetParam().kind);
};

TEST_P(CriterionSweepTest, CorrectnessOrSoundnessHolds) {
  const auto& p = GetParam();
  Rng rng(6000 + static_cast<uint64_t>(p.kind) * 101 + p.dim * 7 +
          static_cast<uint64_t>(p.mu));
  int checked = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, p.dim, p.mu);
    if (test::IsBorderline(s)) continue;
    ++checked;
    const bool truth = test::OracleDominates(s);
    const bool predicted = criterion_->Dominates(s.sa, s.sb, s.sq);
    if (criterion_->is_correct() && predicted) {
      EXPECT_TRUE(truth) << "false positive from "
                         << std::string(criterion_->name()) << ": "
                         << test::SceneToString(s);
    }
    if (criterion_->is_sound() && !predicted) {
      EXPECT_FALSE(truth) << "false negative from "
                          << std::string(criterion_->name()) << ": "
                          << test::SceneToString(s);
    }
  }
  EXPECT_GT(checked, 4000);
}

TEST_P(CriterionSweepTest, OverlapNeverDominatesForCorrectCriteria) {
  const auto& p = GetParam();
  if (!criterion_->is_correct()) GTEST_SKIP() << "criterion is not correct";
  Rng rng(6100 + p.dim);
  for (int iter = 0; iter < 1500; ++iter) {
    // Construct overlapping Sa, Sb: put cb within ra + rb of ca.
    const Hypersphere sa = test::RandomSphere(&rng, p.dim, p.mu);
    const double rb = rng.Uniform(0.0, p.mu);
    Point dir = test::RandomPoint(&rng, p.dim, 0.0, 1.0);
    if (Norm(dir) < 1e-12) continue;
    dir = Normalized(dir);
    const double dist = rng.NextDouble() * (sa.radius() + rb);
    const Hypersphere sb(AddScaled(sa.center(), dist, dir), rb);
    const Hypersphere sq = test::RandomSphere(&rng, p.dim, p.mu);
    ASSERT_TRUE(Overlaps(sa, sb));
    EXPECT_FALSE(criterion_->Dominates(sa, sb, sq))
        << std::string(criterion_->name());
  }
}

std::vector<SweepParam> MakeSweepGrid() {
  std::vector<SweepParam> grid;
  std::vector<CriterionKind> kinds = PaperCriteria();
  // The certified criterion is not part of the paper's Table 1 (PaperCriteria
  // stays pinned at five entries) but must satisfy the same contracts: it
  // claims both correct and sound, with kUncertain folded to "no".
  kinds.push_back(CriterionKind::kCertified);
  for (CriterionKind kind : kinds) {
    for (size_t dim : {2u, 4u, 10u}) {
      for (double mu : {5.0, 50.0}) {
        grid.push_back(SweepParam{kind, dim, mu});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllCriteria, CriterionSweepTest,
                         ::testing::ValuesIn(MakeSweepGrid()));

// Hyperbola dominates the alternatives on both axes: whenever a correct
// criterion accepts, Hyperbola accepts too; whenever a sound criterion
// rejects, Hyperbola rejects too.
TEST(CriteriaHierarchyTest, HyperbolaIsAtLeastAsGood) {
  Rng rng(6200);
  const auto hyperbola = MakeCriterion(CriterionKind::kHyperbola);
  std::vector<std::unique_ptr<DominanceCriterion>> others;
  for (CriterionKind kind :
       {CriterionKind::kMinMax, CriterionKind::kMbr, CriterionKind::kGp,
        CriterionKind::kTrigonometric}) {
    others.push_back(MakeCriterion(kind));
  }
  for (int iter = 0; iter < 4000; ++iter) {
    const size_t dim = 2 + rng.UniformU64(9);
    const test::Scene s = test::RandomScene(&rng, dim, 10.0);
    if (test::IsBorderline(s)) continue;
    const bool h = hyperbola->Dominates(s.sa, s.sb, s.sq);
    for (const auto& other : others) {
      const bool o = other->Dominates(s.sa, s.sb, s.sq);
      if (other->is_correct() && o) {
        EXPECT_TRUE(h) << std::string(other->name()) << " accepted but "
                       << "Hyperbola rejected: " << test::SceneToString(s);
      }
      if (other->is_sound() && !o) {
        EXPECT_FALSE(h) << std::string(other->name()) << " rejected but "
                        << "Hyperbola accepted: " << test::SceneToString(s);
      }
    }
  }
}

TEST(CriteriaFactoryTest, MakesEveryKind) {
  for (CriterionKind kind :
       {CriterionKind::kMinMax, CriterionKind::kMbr, CriterionKind::kGp,
        CriterionKind::kTrigonometric, CriterionKind::kHyperbola,
        CriterionKind::kNumericOracle, CriterionKind::kCertified}) {
    const auto criterion = MakeCriterion(kind);
    ASSERT_NE(criterion, nullptr);
    EXPECT_EQ(criterion->name(), CriterionKindName(kind));
  }
}

// The default three-valued verdict is the folded bool: plain criteria are
// never uncertain, so DecideVerdict must mirror Dominates exactly.
TEST(CriteriaVerdictTest, DefaultVerdictMirrorsDominates) {
  Rng rng(6300);
  for (CriterionKind kind : PaperCriteria()) {
    const auto criterion = MakeCriterion(kind);
    for (int iter = 0; iter < 500; ++iter) {
      const test::Scene s = test::RandomScene(&rng, 3, 10.0);
      const Verdict v = criterion->DecideVerdict(s.sa, s.sb, s.sq);
      ASSERT_NE(v, Verdict::kUncertain) << std::string(criterion->name());
      EXPECT_EQ(v == Verdict::kDominates,
                criterion->Dominates(s.sa, s.sb, s.sq))
          << std::string(criterion->name()) << ": " << test::SceneToString(s);
    }
  }
}

TEST(CriteriaFactoryTest, PaperCriteriaMatchesTableOneOrder) {
  const auto& kinds = PaperCriteria();
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds[0], CriterionKind::kMinMax);
  EXPECT_EQ(kinds[1], CriterionKind::kMbr);
  EXPECT_EQ(kinds[2], CriterionKind::kGp);
  EXPECT_EQ(kinds[3], CriterionKind::kTrigonometric);
  EXPECT_EQ(kinds[4], CriterionKind::kHyperbola);
}

TEST(CriteriaFactoryTest, TableOneFlagsMatchThePaper) {
  struct Expectation {
    CriterionKind kind;
    bool correct;
    bool sound;
  };
  const Expectation expected[] = {
      {CriterionKind::kMinMax, true, false},
      {CriterionKind::kMbr, true, false},
      {CriterionKind::kGp, true, false},
      {CriterionKind::kTrigonometric, false, true},
      {CriterionKind::kHyperbola, true, true},
  };
  for (const auto& e : expected) {
    const auto criterion = MakeCriterion(e.kind);
    EXPECT_EQ(criterion->is_correct(), e.correct)
        << CriterionKindName(e.kind);
    EXPECT_EQ(criterion->is_sound(), e.sound) << CriterionKindName(e.kind);
  }
}

}  // namespace
}  // namespace hyperdom
