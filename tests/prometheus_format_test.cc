// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Golden-format guard for the Prometheus text exposition: every line
// RenderPrometheus() emits must match the exposition grammar, counters
// must end in _total, histograms must carry the mandatory le="+Inf"
// bucket, and HELP text / label values with exposition-special characters
// must come out escaped per the spec.

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hyperdom {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusFormatTest, EveryLineMatchesExpositionGrammar) {
  auto& registry = MetricsRegistry::Instance();
  // Populate one of each instrument so all render paths are exercised.
  registry.GetCounter("test_fmt_total", "a counter")->Add(2);
  registry.GetGauge("test_fmt_entries", "a gauge")->Set(1.5);
  Histogram* h = registry.GetHistogram("test_fmt_ns", "a histogram");
  h->Record(3);
  h->Record(1'000);

  // HELP:   "# HELP <name> <anything>"   (no raw newline can appear — a
  //         raw newline would split the line and fail the match below)
  // TYPE:   "# TYPE <name> counter|gauge|histogram"
  // SAMPLE: "<name>[{labels}] <number>"  with label values quoted and
  //         containing no unescaped '"' (regex forbids raw quotes except
  //         as value delimiters).
  const std::regex help_re(R"(^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$)");
  const std::regex type_re(
      R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$)");
  const std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9+][0-9a-zA-Z+\-.]*$)");

  const std::string text = registry.RenderPrometheus();
  ASSERT_FALSE(text.empty());
  for (const std::string& line : Lines(text)) {
    if (line.empty()) continue;
    const bool ok = std::regex_match(line, help_re) ||
                    std::regex_match(line, type_re) ||
                    std::regex_match(line, sample_re);
    EXPECT_TRUE(ok) << "line violates exposition format: " << line;
  }
}

TEST(PrometheusFormatTest, CounterSamplesEndInTotal) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test_fmt_suffix_total")->Add(1);
  const std::regex type_re(R"(^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) counter$)");
  std::smatch m;
  size_t counters_seen = 0;
  for (const std::string& line : Lines(registry.RenderPrometheus())) {
    if (std::regex_match(line, m, type_re)) {
      ++counters_seen;
      const std::string name = m[1];
      EXPECT_TRUE(name.size() > 6 &&
                  name.compare(name.size() - 6, 6, "_total") == 0)
          << "counter without _total suffix: " << name;
    }
  }
  EXPECT_GT(counters_seen, 0u);
}

TEST(PrometheusFormatTest, HistogramsCarryInfBucket) {
  auto& registry = MetricsRegistry::Instance();
  Histogram* h = registry.GetHistogram("test_fmt_inf_ns", "inf check");
  h->Record(7);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("test_fmt_inf_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_fmt_inf_ns_sum 7"), std::string::npos);
  EXPECT_NE(text.find("test_fmt_inf_ns_count 1"), std::string::npos);
}

TEST(PrometheusFormatTest, HelpTextIsEscaped) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test_fmt_help_escape_total",
                      "line one\nline two with back\\slash");
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(
      text.find("# HELP test_fmt_help_escape_total line one\\nline two "
                "with back\\\\slash"),
      std::string::npos);
  // The raw newline must NOT have survived (it would split the HELP line).
  EXPECT_EQ(text.find("# HELP test_fmt_help_escape_total line one\nline"),
            std::string::npos);
}

TEST(PrometheusFormatTest, LabelValuesAreEscapedAtRegistration) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromEscapeLabelValue("two\nlines"), "two\\nlines");
  // End to end: a labeled registration with every special character still
  // renders one grammar-valid sample line.
  auto& registry = MetricsRegistry::Instance();
  const std::string name =
      LabeledName("test_fmt_label_escape_total", "path", "a\\b\"c\nd");
  registry.GetCounter(name, "nasty label")->Add(4);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(
      text.find(
          "test_fmt_label_escape_total{path=\"a\\\\b\\\"c\\nd\"} 4"),
      std::string::npos);
}

// The sharded engine registers one series per shard under a shared base
// name with a shard="k" label. The exposition must carry HELP/TYPE once
// per base name and one grammar-valid sample per shard, ordered by label
// value — the golden block below is the contract the scrape config and
// dashboards are written against.
TEST(PrometheusFormatTest, PerShardSeriesRenderGolden) {
  auto& registry = MetricsRegistry::Instance();
  // Register in reverse shard order: the exposition must still come out
  // sorted and grouped, independent of registration order.
  for (int j = 3; j >= 0; --j) {
    const std::string label = std::to_string(j);
    registry.GetGauge(kShardSizeEntries, "shard", label)
        ->Set(100.0 * (j + 1));
    registry.GetCounter(kShardQueries, "shard", label)
        ->Add(static_cast<uint64_t>(j) + 1);
  }
  const std::string text = registry.RenderPrometheus();

  const std::string counter_golden =
      "# TYPE hyperdom_shard_queries_total counter\n"
      "hyperdom_shard_queries_total{shard=\"0\"} 1\n"
      "hyperdom_shard_queries_total{shard=\"1\"} 2\n"
      "hyperdom_shard_queries_total{shard=\"2\"} 3\n"
      "hyperdom_shard_queries_total{shard=\"3\"} 4\n";
  EXPECT_NE(text.find(counter_golden), std::string::npos) << text;

  const std::string gauge_golden =
      "# TYPE hyperdom_shard_size_entries gauge\n"
      "hyperdom_shard_size_entries{shard=\"0\"} 100\n"
      "hyperdom_shard_size_entries{shard=\"1\"} 200\n"
      "hyperdom_shard_size_entries{shard=\"2\"} 300\n"
      "hyperdom_shard_size_entries{shard=\"3\"} 400\n";
  EXPECT_NE(text.find(gauge_golden), std::string::npos) << text;

  // HELP appears exactly once per base name despite four series.
  size_t help_count = 0;
  for (size_t pos = text.find("# HELP hyperdom_shard_queries_total");
       pos != std::string::npos;
       pos = text.find("# HELP hyperdom_shard_queries_total", pos + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
}

// Multi-pair labels (the {shard=,kind=} form ShardedStore uses for
// future per-kind breakdowns) render comma-joined in registration order
// and survive the grammar check.
TEST(PrometheusFormatTest, MultiLabelSeriesRenderCommaJoined) {
  auto& registry = MetricsRegistry::Instance();
  registry
      .GetCounter(kShardQueries, {{"shard", "7"}, {"kind", "ss"}})
      ->Add(9);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(
      text.find("hyperdom_shard_queries_total{shard=\"7\",kind=\"ss\"} 9"),
      std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace hyperdom
