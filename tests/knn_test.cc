// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/knn.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "dominance/minmax.h"
#include "eval/workload.h"
#include "test_util.h"

namespace hyperdom {
namespace {

std::set<uint64_t> Ids(const KnnResult& result) {
  std::set<uint64_t> ids;
  for (const auto& e : result.answers) ids.insert(e.id);
  return ids;
}

TEST(KnnLinearScanTest, SmallDatasetReturnsEverything) {
  const std::vector<Hypersphere> data = {Hypersphere({0.0, 0.0}, 1.0),
                                         Hypersphere({5.0, 0.0}, 1.0)};
  HyperbolaCriterion c;
  const KnnResult result =
      KnnLinearScan(data, Hypersphere({1.0, 0.0}, 0.5), 3, c);
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(KnnLinearScanTest, HandComputableScene) {
  // Query point at origin; objects on the x-axis with radius 0.1.
  // MaxDists: 2.1, 5.1, 9.1, 40.1. With k = 1, Sk = the object at 2.
  // Sk dominates the objects at 9 and 40 (clear margins) but not the one
  // at 5?  f(q)= (5-0.1...)  For the point query: Dom(Sk, S, q) iff
  // dist(q,cS) - dist(q,cSk) > 0.2: 5 - 2 = 3 > 0.2 -> dominated too.
  const std::vector<Hypersphere> data = {
      Hypersphere({2.0, 0.0}, 0.1), Hypersphere({5.0, 0.0}, 0.1),
      Hypersphere({9.0, 0.0}, 0.1), Hypersphere({40.0, 0.0}, 0.1)};
  HyperbolaCriterion c;
  const KnnResult result =
      KnnLinearScan(data, Hypersphere({0.0, 0.0}, 0.0), 1, c);
  EXPECT_EQ(Ids(result), (std::set<uint64_t>{0}));
}

TEST(KnnLinearScanTest, UncertainQueryKeepsAmbiguousNeighbors) {
  // A fat query makes the object at 5 non-dominated: at q = (4, 0),
  // dist to S1 = 1 < dist to S0 = 2.
  const std::vector<Hypersphere> data = {
      Hypersphere({2.0, 0.0}, 0.1), Hypersphere({5.0, 0.0}, 0.1),
      Hypersphere({40.0, 0.0}, 0.1)};
  HyperbolaCriterion c;
  const KnnResult result =
      KnnLinearScan(data, Hypersphere({0.0, 0.0}, 4.0), 1, c);
  EXPECT_TRUE(Ids(result).count(0));
  EXPECT_TRUE(Ids(result).count(1));
  EXPECT_FALSE(Ids(result).count(2));
}

TEST(KnnLinearScanTest, AnswersSortedByMaxDist) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.dim = 3;
  spec.seed = 820;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion c;
  const KnnResult result = KnnLinearScan(data, data[0], 5, c);
  for (size_t i = 1; i < result.answers.size(); ++i) {
    EXPECT_LE(MaxDist(result.answers[i - 1].sphere, data[0]),
              MaxDist(result.answers[i].sphere, data[0]) + 1e-12);
  }
}

class KnnEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<SearchStrategy, size_t, double>> {};

// The central integration property: SS-tree search with the exact criterion
// returns exactly the Definition-2 answer, for both strategies, across k
// and radius regimes.
TEST_P(KnnEquivalenceTest, IndexMatchesLinearScan) {
  const auto [strategy, k, mu] = GetParam();
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 4;
  spec.radius_mean = mu;
  spec.seed = 830 + k;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  KnnOptions options;
  options.k = k;
  options.strategy = strategy;
  KnnSearcher searcher(&exact, options);

  const auto queries = MakeKnnQueries(data, 15, 831);
  for (const auto& sq : queries) {
    const KnnResult from_index = searcher.Search(tree, sq);
    const KnnResult from_scan = KnnLinearScan(data, sq, k, exact);
    EXPECT_EQ(Ids(from_index), Ids(from_scan));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KnnEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchStrategy::kBestFirst,
                                         SearchStrategy::kDepthFirst),
                       ::testing::Values<size_t>(1, 5, 20),
                       ::testing::Values(5.0, 20.0)));

TEST(KnnSearcherTest, WeakerCriterionReturnsSuperset) {
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 4;
  spec.seed = 840;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  MinMaxCriterion weak;
  KnnOptions options;
  options.k = 10;
  KnnSearcher exact_searcher(&exact, options);
  KnnSearcher weak_searcher(&weak, options);

  const auto queries = MakeKnnQueries(data, 10, 841);
  for (const auto& sq : queries) {
    const auto exact_ids = Ids(exact_searcher.Search(tree, sq));
    const auto weak_ids = Ids(weak_searcher.Search(tree, sq));
    for (uint64_t id : exact_ids) {
      EXPECT_TRUE(weak_ids.count(id))
          << "MinMax-pruned search lost an exact answer";
    }
    EXPECT_GE(weak_ids.size(), exact_ids.size());
  }
}

TEST(KnnSearcherTest, EagerModeIsSubsetOfDeferred) {
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 4;
  spec.seed = 850;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  KnnOptions deferred;
  deferred.k = 5;
  KnnOptions eager = deferred;
  eager.pruning_mode = KnnPruningMode::kEager;
  KnnSearcher deferred_searcher(&exact, deferred);
  KnnSearcher eager_searcher(&exact, eager);

  const auto queries = MakeKnnQueries(data, 10, 851);
  for (const auto& sq : queries) {
    const auto full = Ids(deferred_searcher.Search(tree, sq));
    const auto pruned = Ids(eager_searcher.Search(tree, sq));
    for (uint64_t id : pruned) {
      EXPECT_TRUE(full.count(id)) << "eager returned an extra entry";
    }
  }
}

TEST(KnnSearcherTest, EmptyTreeGivesEmptyResult) {
  SsTree tree(2);
  HyperbolaCriterion exact;
  KnnSearcher searcher(&exact, KnnOptions{});
  const KnnResult result = searcher.Search(tree, Hypersphere({0.0, 0.0}, 1.0));
  EXPECT_TRUE(result.answers.empty());
  EXPECT_EQ(result.stats.nodes_visited, 0u);
}

TEST(KnnSearcherTest, StatsArePopulated) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 3;
  spec.seed = 860;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  HyperbolaCriterion exact;
  KnnSearcher searcher(&exact, KnnOptions{});
  const KnnResult result = searcher.Search(tree, data[42]);
  EXPECT_GT(result.stats.nodes_visited, 0u);
  EXPECT_GT(result.stats.entries_accessed, 0u);
  EXPECT_GT(result.stats.dominance_checks, 0u);
}

TEST(KnnSearcherTest, BestFirstAccessesNoMoreEntriesThanDepthFirst) {
  SyntheticSpec spec;
  spec.n = 5000;
  spec.dim = 4;
  spec.seed = 870;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  HyperbolaCriterion exact;
  KnnOptions hs;
  hs.strategy = SearchStrategy::kBestFirst;
  KnnOptions df;
  df.strategy = SearchStrategy::kDepthFirst;
  uint64_t hs_total = 0, df_total = 0;
  for (const auto& sq : MakeKnnQueries(data, 10, 871)) {
    hs_total += KnnSearcher(&exact, hs).Search(tree, sq).stats.entries_accessed;
    df_total += KnnSearcher(&exact, df).Search(tree, sq).stats.entries_accessed;
  }
  // HS's global best-first order is at least as good on aggregate.
  EXPECT_LE(hs_total, df_total);
}

}  // namespace
}  // namespace hyperdom
