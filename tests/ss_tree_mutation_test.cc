// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// STR bulk loading and deletion: structural invariants under churn, and
// query equivalence against the ground truth of the surviving entries.

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "query/knn.h"
#include "test_util.h"

namespace hyperdom {
namespace {

std::set<uint64_t> TreeIds(const SsTree& tree) {
  std::set<uint64_t> ids;
  if (tree.root() == nullptr) return ids;
  std::vector<const SsTreeNode*> stack = {tree.root()};
  while (!stack.empty()) {
    const SsTreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      for (const auto& e : node->entries()) ids.insert(e.id);
    } else {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  return ids;
}

std::set<uint64_t> Ids(const KnnResult& result) {
  std::set<uint64_t> ids;
  for (const auto& e : result.answers) ids.insert(e.id);
  return ids;
}

// ---------------------------------------------------------------------------
// STR bulk loading
// ---------------------------------------------------------------------------

class StrBulkLoadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StrBulkLoadTest, InvariantsAndCompleteness) {
  const size_t dim = GetParam();
  SyntheticSpec spec;
  spec.n = 5000;
  spec.dim = dim;
  spec.radius_mean = 8.0;
  spec.seed = 7000 + dim;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(dim);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  EXPECT_EQ(tree.size(), data.size());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_EQ(TreeIds(tree).size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(Dims, StrBulkLoadTest,
                         ::testing::Values(1, 2, 4, 10));

TEST(StrBulkLoadTest, EmptyAndTiny) {
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr({}).ok());
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.BulkLoadStr({Hypersphere({1.0, 2.0, 3.0}, 0.5)}).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(StrBulkLoadTest, ReplacesPreviousContents) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.dim = 2;
  spec.seed = 7001;
  SsTree tree(2);
  ASSERT_TRUE(tree.BulkLoadStr(GenerateSynthetic(spec)).ok());
  spec.n = 100;
  spec.seed = 7002;
  ASSERT_TRUE(tree.BulkLoadStr(GenerateSynthetic(spec)).ok());
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(StrBulkLoadTest, DimensionMismatchRejected) {
  SsTree tree(2);
  EXPECT_EQ(tree.BulkLoadStr({Hypersphere({1.0, 2.0, 3.0}, 0.5)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(StrBulkLoadTest, QueriesMatchInsertionBuiltTree) {
  SyntheticSpec spec;
  spec.n = 4000;
  spec.dim = 4;
  spec.radius_mean = 6.0;
  spec.seed = 7003;
  const auto data = GenerateSynthetic(spec);
  SsTree str_tree(4);
  ASSERT_TRUE(str_tree.BulkLoadStr(data).ok());
  SsTree insert_tree(4);
  ASSERT_TRUE(insert_tree.BulkLoad(data).ok());

  HyperbolaCriterion exact;
  KnnOptions options;
  options.k = 7;
  KnnSearcher searcher(&exact, options);
  for (const auto& sq : MakeKnnQueries(data, 8, 7004)) {
    EXPECT_EQ(Ids(searcher.Search(str_tree, sq)),
              Ids(searcher.Search(insert_tree, sq)));
  }
}

TEST(StrBulkLoadTest, PacksTighterThanInsertion) {
  SyntheticSpec spec;
  spec.n = 20'000;
  spec.dim = 4;
  spec.seed = 7005;
  const auto data = GenerateSynthetic(spec);
  SsTree str_tree(4);
  ASSERT_TRUE(str_tree.BulkLoadStr(data).ok());
  SsTree insert_tree(4);
  ASSERT_TRUE(insert_tree.BulkLoad(data).ok());
  // STR's packed occupancy gives an equal-or-shorter tree.
  EXPECT_LE(str_tree.Height(), insert_tree.Height());
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

TEST(SsTreeDeleteTest, DeleteMissingEntryIsNotFound) {
  SsTree tree(2);
  EXPECT_EQ(tree.Delete(Hypersphere({1.0, 1.0}, 0.5), 0).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 1.0}, 0.5), 0).ok());
  EXPECT_EQ(tree.Delete(Hypersphere({1.0, 1.0}, 0.5), 99).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(Hypersphere({2.0, 1.0}, 0.5), 0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SsTreeDeleteTest, DeleteToEmpty) {
  SsTree tree(2);
  ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 1.0}, 0.5), 0).ok());
  ASSERT_TRUE(tree.Delete(Hypersphere({1.0, 1.0}, 0.5), 0).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // Reusable afterwards.
  ASSERT_TRUE(tree.Insert(Hypersphere({2.0, 2.0}, 0.5), 1).ok());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SsTreeDeleteTest, RandomChurnKeepsInvariants) {
  Rng rng(7100);
  SyntheticSpec spec;
  spec.n = 1500;
  spec.dim = 3;
  spec.radius_mean = 6.0;
  spec.seed = 7101;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  std::set<uint64_t> alive;
  for (uint64_t i = 0; i < data.size(); ++i) alive.insert(i);

  for (int round = 0; round < 700; ++round) {
    // Delete a random survivor.
    auto it = alive.begin();
    std::advance(it, static_cast<long>(rng.UniformU64(alive.size())));
    const uint64_t victim = *it;
    ASSERT_TRUE(tree.Delete(data[victim], victim).ok()) << "round " << round;
    alive.erase(it);
    if (round % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "round " << round << ": " << tree.CheckInvariants().ToString();
      EXPECT_EQ(TreeIds(tree), alive);
    }
  }
  EXPECT_EQ(tree.size(), alive.size());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(SsTreeDeleteTest, QueriesStayExactUnderChurn) {
  Rng rng(7200);
  SyntheticSpec spec;
  spec.n = 800;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 7201;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  std::vector<bool> alive(data.size(), true);
  HyperbolaCriterion exact;
  KnnOptions options;
  options.k = 5;
  KnnSearcher searcher(&exact, options);

  for (int round = 0; round < 10; ++round) {
    // Delete a random batch of 40.
    for (int d = 0; d < 40; ++d) {
      uint64_t victim = rng.UniformU64(data.size());
      while (!alive[victim]) victim = rng.UniformU64(data.size());
      ASSERT_TRUE(tree.Delete(data[victim], victim).ok());
      alive[victim] = false;
    }
    // Exact kNN over the survivors must match a linear scan with remapping.
    std::vector<Hypersphere> survivors;
    std::vector<uint64_t> survivor_ids;
    for (size_t i = 0; i < data.size(); ++i) {
      if (alive[i]) {
        survivors.push_back(data[i]);
        survivor_ids.push_back(static_cast<uint64_t>(i));
      }
    }
    const Hypersphere sq = survivors[rng.UniformU64(survivors.size())];
    const KnnResult scan = KnnLinearScan(survivors, sq, options.k, exact);
    std::set<uint64_t> expected;
    for (const auto& e : scan.answers) expected.insert(survivor_ids[e.id]);
    EXPECT_EQ(Ids(searcher.Search(tree, sq)), expected) << "round " << round;
  }
}

TEST(SsTreeDeleteTest, InterleavedInsertDelete) {
  Rng rng(7300);
  SsTree tree(2);
  std::set<uint64_t> alive;
  std::vector<Hypersphere> spheres;
  uint64_t next_id = 0;
  for (int round = 0; round < 3000; ++round) {
    if (alive.empty() || rng.NextDouble() < 0.6) {
      const Hypersphere s = test::RandomSphere(&rng, 2, 4.0);
      spheres.push_back(s);
      ASSERT_TRUE(tree.Insert(s, next_id).ok());
      alive.insert(next_id++);
    } else {
      auto it = alive.begin();
      std::advance(it, static_cast<long>(rng.UniformU64(alive.size())));
      ASSERT_TRUE(tree.Delete(spheres[*it], *it).ok());
      alive.erase(it);
    }
    if (round % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "round " << round << ": " << tree.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(TreeIds(tree), alive);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(SsTreeDeleteTest, WorksOnStrBuiltTrees) {
  SyntheticSpec spec;
  spec.n = 1000;
  spec.dim = 3;
  spec.seed = 7400;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Delete(data[i], i).ok()) << "i=" << i;
  }
  EXPECT_EQ(tree.size(), 700u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

}  // namespace
}  // namespace hyperdom
