// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/hypersphere.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace hyperdom {
namespace {

TEST(HypersphereTest, Accessors) {
  const Hypersphere s({1.0, 2.0, 3.0}, 4.0);
  EXPECT_EQ(s.dim(), 3u);
  EXPECT_DOUBLE_EQ(s.radius(), 4.0);
  EXPECT_EQ(s.center(), (Point{1, 2, 3}));
}

TEST(HypersphereTest, FromPointHasZeroRadius) {
  const Hypersphere p = Hypersphere::FromPoint({5.0, 6.0});
  EXPECT_DOUBLE_EQ(p.radius(), 0.0);
  EXPECT_EQ(p.dim(), 2u);
}

TEST(HypersphereTest, ContainsIncludesBoundary) {
  const Hypersphere s({0.0, 0.0}, 5.0);
  EXPECT_TRUE(s.Contains({3.0, 4.0}));   // exactly on the boundary
  EXPECT_TRUE(s.Contains({0.0, 0.0}));   // center
  EXPECT_FALSE(s.Contains({3.1, 4.0}));  // just outside
}

TEST(HypersphereTest, ContainsSphere) {
  const Hypersphere outer({0.0, 0.0}, 10.0);
  EXPECT_TRUE(outer.ContainsSphere(Hypersphere({3.0, 0.0}, 7.0)));  // tangent
  EXPECT_TRUE(outer.ContainsSphere(Hypersphere({0.0, 0.0}, 10.0)));
  EXPECT_FALSE(outer.ContainsSphere(Hypersphere({3.0, 0.0}, 7.1)));
  EXPECT_FALSE(outer.ContainsSphere(Hypersphere({20.0, 0.0}, 1.0)));
}

// Paper Figure 2: MaxDist = Dist(ca, cb) + ra + rb, also with zero radii.
TEST(HypersphereTest, MaxDistMatchesEquationThree) {
  const Hypersphere a({0.0, 0.0}, 2.0);
  const Hypersphere b({10.0, 0.0}, 3.0);
  EXPECT_DOUBLE_EQ(MaxDist(a, b), 15.0);
  const Hypersphere point_b = Hypersphere::FromPoint({10.0, 0.0});
  EXPECT_DOUBLE_EQ(MaxDist(a, point_b), 12.0);  // Fig. 2(b)
}

// Paper Figure 3: MinDist clamps to zero when overlapping.
TEST(HypersphereTest, MinDistMatchesEquationFour) {
  const Hypersphere a({0.0, 0.0}, 2.0);
  const Hypersphere b({10.0, 0.0}, 3.0);
  EXPECT_DOUBLE_EQ(MinDist(a, b), 5.0);  // Fig. 3(a)
  const Hypersphere overlapping({3.0, 0.0}, 4.0);
  EXPECT_DOUBLE_EQ(MinDist(a, overlapping), 0.0);  // Fig. 3(b)
  const Hypersphere point_b = Hypersphere::FromPoint({10.0, 0.0});
  EXPECT_DOUBLE_EQ(MinDist(a, point_b), 8.0);  // Fig. 3(c)
}

TEST(HypersphereTest, PointOverloads) {
  const Hypersphere a({0.0, 0.0}, 2.0);
  const Point p = {10.0, 0.0};
  EXPECT_DOUBLE_EQ(MaxDist(a, p), 12.0);
  EXPECT_DOUBLE_EQ(MinDist(a, p), 8.0);
  EXPECT_DOUBLE_EQ(MinDist(a, Point{1.0, 0.0}), 0.0);  // inside
}

TEST(HypersphereTest, OverlapIncludesTangency) {
  const Hypersphere a({0.0, 0.0}, 2.0);
  EXPECT_TRUE(Overlaps(a, Hypersphere({5.0, 0.0}, 3.0)));   // tangent
  EXPECT_TRUE(Overlaps(a, Hypersphere({1.0, 0.0}, 1.0)));   // nested
  EXPECT_FALSE(Overlaps(a, Hypersphere({5.1, 0.0}, 3.0)));  // separated
  EXPECT_TRUE(Overlaps(a, a));                              // self
}

TEST(HypersphereTest, ZeroRadiusPointsOverlapOnlyWhenEqual) {
  const Hypersphere p = Hypersphere::FromPoint({1.0, 1.0});
  EXPECT_TRUE(Overlaps(p, Hypersphere::FromPoint({1.0, 1.0})));
  EXPECT_FALSE(Overlaps(p, Hypersphere::FromPoint({1.0, 1.000001})));
}

TEST(HypersphereePropertyTest, MinMaxDistConsistency) {
  Rng rng(55);
  for (int i = 0; i < 5000; ++i) {
    const size_t d = 1 + rng.UniformU64(8);
    Point ca(d), cb(d);
    for (size_t j = 0; j < d; ++j) {
      ca[j] = rng.Gaussian(100, 25);
      cb[j] = rng.Gaussian(100, 25);
    }
    const Hypersphere a(ca, rng.Uniform(0.0, 20.0));
    const Hypersphere b(cb, rng.Uniform(0.0, 20.0));
    EXPECT_LE(MinDist(a, b), MaxDist(a, b));
    EXPECT_GE(MinDist(a, b), 0.0);
    EXPECT_DOUBLE_EQ(MinDist(a, b), MinDist(b, a));
    EXPECT_DOUBLE_EQ(MaxDist(a, b), MaxDist(b, a));
    // Overlap <=> MinDist == 0 (by Eq. (4)).
    EXPECT_EQ(Overlaps(a, b), MinDist(a, b) == 0.0);
  }
}

TEST(HypersphereePropertyTest, SampledPointsRespectMinMaxDist) {
  Rng rng(56);
  for (int i = 0; i < 500; ++i) {
    const Hypersphere a({rng.Gaussian(0, 10), rng.Gaussian(0, 10)},
                        rng.Uniform(0.0, 5.0));
    const Hypersphere b({rng.Gaussian(0, 10), rng.Gaussian(0, 10)},
                        rng.Uniform(0.0, 5.0));
    // Random interior points must have distance within [MinDist, MaxDist].
    for (int s = 0; s < 10; ++s) {
      const double theta_a = rng.Uniform(0, 2 * M_PI);
      const double rad_a = a.radius() * rng.NextDouble();
      const double theta_b = rng.Uniform(0, 2 * M_PI);
      const double rad_b = b.radius() * rng.NextDouble();
      const Point pa = {a.center()[0] + rad_a * std::cos(theta_a),
                        a.center()[1] + rad_a * std::sin(theta_a)};
      const Point pb = {b.center()[0] + rad_b * std::cos(theta_b),
                        b.center()[1] + rad_b * std::sin(theta_b)};
      const double dist = Dist(pa, pb);
      EXPECT_GE(dist, MinDist(a, b) - 1e-9);
      EXPECT_LE(dist, MaxDist(a, b) + 1e-9);
    }
  }
}

TEST(HypersphereTest, ToStringMentionsCenterAndRadius) {
  const Hypersphere s({1.0, 2.0}, 3.0);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("(1, 2)"), std::string::npos);
  EXPECT_NE(str.find("r=3"), std::string::npos);
}

TEST(HypersphereTest, Equality) {
  const Hypersphere a({1.0, 2.0}, 3.0);
  EXPECT_TRUE(a == Hypersphere({1.0, 2.0}, 3.0));
  EXPECT_FALSE(a == Hypersphere({1.0, 2.0}, 3.5));
  EXPECT_FALSE(a == Hypersphere({1.0, 2.5}, 3.0));
}

TEST(HypersphereValidateTest, AcceptsFiniteSpheres) {
  EXPECT_TRUE(Hypersphere::Validate({1.0, 2.0}, 3.0).ok());
  EXPECT_TRUE(Hypersphere::Validate({0.0}, 0.0).ok());  // zero radius is fine
  const Hypersphere s({1.0, 2.0}, 3.0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(HypersphereValidateTest, RejectsNonFiniteCenter) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(Hypersphere::Validate({1.0, nan}, 3.0).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(Hypersphere::Validate({inf, 2.0}, 3.0).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(Hypersphere::Validate({-inf}, 0.0).code() == StatusCode::kInvalidArgument);
}

TEST(HypersphereValidateTest, RejectsBadRadius) {
  EXPECT_TRUE(Hypersphere::Validate({1.0}, -0.5).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(Hypersphere::Validate({1.0}, std::nan("")).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      Hypersphere::Validate({1.0}, std::numeric_limits<double>::infinity())
          .code() == StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hyperdom
