// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/probability.h"

#include <gtest/gtest.h>

#include "dominance/hyperbola.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(DominanceProbabilityTest, PredicateTrueImpliesProbabilityOne) {
  Rng rng(3100);
  HyperbolaCriterion exact;
  int found = 0;
  for (int iter = 0; iter < 2000 && found < 100; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 10.0);
    if (!exact.Dominates(s.sa, s.sb, s.sq)) continue;
    ++found;
    const DominanceProbability p =
        EstimateDominanceProbability(s.sa, s.sb, s.sq, 500, iter);
    EXPECT_DOUBLE_EQ(p.probability, 1.0) << test::SceneToString(s);
  }
  EXPECT_GT(found, 20);
}

TEST(DominanceProbabilityTest, ReverseDominanceImpliesZero) {
  Rng rng(3101);
  HyperbolaCriterion exact;
  int found = 0;
  for (int iter = 0; iter < 2000 && found < 100; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 10.0);
    if (!exact.Dominates(s.sa, s.sb, s.sq)) continue;
    ++found;
    // Swap the roles: b's points are now CERTAINLY farther... i.e. the
    // swapped probability P[Dist(b,q) < Dist(a,q)] must be 0.
    const DominanceProbability p =
        EstimateDominanceProbability(s.sb, s.sa, s.sq, 500, iter);
    EXPECT_DOUBLE_EQ(p.probability, 0.0) << test::SceneToString(s);
  }
  EXPECT_GT(found, 20);
}

TEST(DominanceProbabilityTest, SymmetricSceneIsNearHalf) {
  // Sa and Sb mirror images about the query: exactly 1/2 by symmetry.
  const Hypersphere sa({-5.0, 0.0}, 1.0);
  const Hypersphere sb({5.0, 0.0}, 1.0);
  const Hypersphere sq({0.0, 0.0}, 1.0);
  const DominanceProbability p =
      EstimateDominanceProbability(sa, sb, sq, 100'000, 7);
  EXPECT_NEAR(p.probability, 0.5, 0.01);
  EXPECT_NEAR(p.standard_error, std::sqrt(0.25 / 100'000.0), 1e-4);
}

TEST(DominanceProbabilityTest, DeterministicInSeed) {
  const Hypersphere sa({-5.0, 0.0}, 2.0);
  const Hypersphere sb({4.0, 0.0}, 2.0);
  const Hypersphere sq({0.0, 0.0}, 2.0);
  const auto p1 = EstimateDominanceProbability(sa, sb, sq, 5000, 42);
  const auto p2 = EstimateDominanceProbability(sa, sb, sq, 5000, 42);
  const auto p3 = EstimateDominanceProbability(sa, sb, sq, 5000, 43);
  EXPECT_DOUBLE_EQ(p1.probability, p2.probability);
  EXPECT_NE(p1.probability, p3.probability);  // overwhelmingly likely
}

TEST(DominanceProbabilityTest, MonotoneInSeparation) {
  // Pulling Sa closer to the query (everything else fixed) raises the
  // probability.
  const Hypersphere sb({10.0, 0.0}, 2.0);
  const Hypersphere sq({0.0, 0.0}, 2.0);
  double prev = -1.0;
  for (double x : {9.0, 7.0, 5.0, 3.0, 1.0}) {
    const Hypersphere sa({x, 0.0}, 2.0);
    const double p =
        EstimateDominanceProbability(sa, sb, sq, 20'000, 9).probability;
    EXPECT_GE(p, prev - 0.02) << "x=" << x;  // tolerate MC noise
    prev = p;
  }
  EXPECT_GT(prev, 0.95);
}

TEST(DominanceProbabilityTest, PointRealizationsAreExact) {
  // All radii zero: the "probability" is the deterministic indicator.
  const Hypersphere sa({1.0, 0.0}, 0.0);
  const Hypersphere sb({5.0, 0.0}, 0.0);
  const Hypersphere sq({0.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(
      EstimateDominanceProbability(sa, sb, sq, 10, 1).probability, 1.0);
  EXPECT_DOUBLE_EQ(
      EstimateDominanceProbability(sb, sa, sq, 10, 1).probability, 0.0);
}

TEST(DominanceProbabilityTest, StandardErrorShrinksWithSamples) {
  const Hypersphere sa({-3.0, 0.0}, 2.0);
  const Hypersphere sb({3.0, 0.0}, 2.0);
  const Hypersphere sq({0.0, 0.0}, 2.0);
  const auto small = EstimateDominanceProbability(sa, sb, sq, 1000, 3);
  const auto large = EstimateDominanceProbability(sa, sb, sq, 100'000, 3);
  EXPECT_LT(large.standard_error, small.standard_error);
}

}  // namespace
}  // namespace hyperdom
