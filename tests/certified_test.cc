// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Unit tests for the certified verdict engine: decisive verdicts on clearly
// separated scenes (every special branch), deterministic uncertainty on
// exact ties, tier accounting, adapter conservatism, and agreement with the
// oracle on random non-borderline scenes.

#include "dominance/certified.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dominance/hyperbola.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(CertifiedTest, ClearDominanceResolvesAtTierOne) {
  // Sa sits between Sq and Sb with lots of slack on every margin.
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({20.0, 0.0}, 1.0);
  const Hypersphere sq({-5.0, 0.0}, 1.0);
  const CertifiedDominance engine;
  CertifiedTier tier = CertifiedTier::kUnresolved;
  EXPECT_EQ(engine.Decide(sa, sb, sq, &tier), Verdict::kDominates);
  EXPECT_EQ(tier, CertifiedTier::kQuartic);
}

TEST(CertifiedTest, OverlapResolvesNotDominates) {
  const Hypersphere sa({0.0, 0.0}, 2.0);
  const Hypersphere sb({3.0, 0.0}, 2.0);  // overlaps Sa
  const Hypersphere sq({-5.0, 0.0}, 1.0);
  const CertifiedDominance engine;
  CertifiedTier tier = CertifiedTier::kUnresolved;
  EXPECT_EQ(engine.Decide(sa, sb, sq, &tier), Verdict::kNotDominates);
  EXPECT_EQ(tier, CertifiedTier::kQuartic);
}

TEST(CertifiedTest, CenterMddFailureResolvesNotDominates) {
  // Sq's center is closer to Sb than to Sa: the cq ∈ Ra condition fails.
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({10.0, 0.0}, 1.0);
  const Hypersphere sq({9.0, 0.0}, 0.5);
  const CertifiedDominance engine;
  CertifiedTier tier = CertifiedTier::kUnresolved;
  EXPECT_EQ(engine.Decide(sa, sb, sq, &tier), Verdict::kNotDominates);
  EXPECT_EQ(tier, CertifiedTier::kQuartic);
}

TEST(CertifiedTest, PointQueryBranch) {
  // rq == 0: the verdict reduces to the first two margins.
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({20.0, 0.0}, 1.0);
  const Hypersphere sq = Hypersphere::FromPoint({-3.0, 0.0});
  const CertifiedDominance engine;
  EXPECT_EQ(engine.Decide(sa, sb, sq), Verdict::kDominates);
  const Hypersphere sq_far = Hypersphere::FromPoint({10.0, 30.0});
  EXPECT_EQ(engine.Decide(sa, sb, sq_far), Verdict::kNotDominates);
}

TEST(CertifiedTest, OneDimensionalBranch) {
  const Hypersphere sa({0.0}, 1.0);
  const Hypersphere sb({20.0}, 1.0);
  EXPECT_EQ(CertifiedDominance().Decide(sa, sb, Hypersphere({-3.0}, 2.0)),
            Verdict::kDominates);
  EXPECT_EQ(CertifiedDominance().Decide(sa, sb, Hypersphere({8.0}, 4.0)),
            Verdict::kNotDominates);
}

TEST(CertifiedTest, PointSpheresBisectorBranch) {
  // ra + rb == 0: dominance degenerates to the perpendicular bisector.
  const Hypersphere sa = Hypersphere::FromPoint({0.0, 0.0});
  const Hypersphere sb = Hypersphere::FromPoint({10.0, 0.0});
  EXPECT_EQ(CertifiedDominance().Decide(sa, sb, Hypersphere({2.0, 3.0}, 1.0)),
            Verdict::kDominates);
  // Sq reaches past the bisector.
  EXPECT_EQ(CertifiedDominance().Decide(sa, sb, Hypersphere({4.0, 0.0}, 2.0)),
            Verdict::kNotDominates);
}

TEST(CertifiedTest, ExactTieStaysUncertain) {
  // Identical point spheres: every margin is exactly zero, no amount of
  // precision can break the tie, and the honest answer is kUncertain.
  const Hypersphere p = Hypersphere::FromPoint({1.0, 1.0});
  const Hypersphere sq({3.0, 4.0}, 0.5);
  const CertifiedDominance engine;
  CertifiedTier tier = CertifiedTier::kQuartic;
  EXPECT_EQ(engine.Decide(p, p, sq, &tier), Verdict::kUncertain);
  EXPECT_EQ(tier, CertifiedTier::kUnresolved);
  EXPECT_EQ(engine.stats().uncertain, 1u);
}

TEST(CertifiedTest, StatsCountEveryCallExactlyOnce) {
  CertifiedDominance engine;  // non-const: ResetStats() mutates
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({20.0, 0.0}, 1.0);
  const Hypersphere sq({-5.0, 0.0}, 1.0);
  const Hypersphere tie = Hypersphere::FromPoint({1.0, 1.0});
  for (int i = 0; i < 5; ++i) engine.Decide(sa, sb, sq);
  for (int i = 0; i < 3; ++i) engine.Decide(tie, tie, sq);
  const CertifiedStats stats = engine.stats();
  EXPECT_EQ(stats.calls, 8u);
  EXPECT_EQ(stats.resolved_quartic + stats.resolved_parametric +
                stats.resolved_long_double + stats.resolved_oracle +
                stats.uncertain,
            stats.calls);
  EXPECT_EQ(stats.uncertain, 3u);
  EXPECT_NEAR(stats.UncertainRate(), 3.0 / 8.0, 1e-12);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().calls, 0u);
  EXPECT_DOUBLE_EQ(engine.stats().UncertainRate(), 0.0);
}

TEST(CertifiedTest, CriterionAdapterFoldsUncertainToFalse) {
  const CertifiedCriterion criterion;
  const Hypersphere tie = Hypersphere::FromPoint({1.0, 1.0});
  const Hypersphere sq({3.0, 4.0}, 0.5);
  EXPECT_EQ(criterion.DecideVerdict(tie, tie, sq), Verdict::kUncertain);
  EXPECT_FALSE(criterion.Dominates(tie, tie, sq));  // conservative fold
  const Hypersphere sa({0.0, 0.0}, 1.0);
  const Hypersphere sb({20.0, 0.0}, 1.0);
  EXPECT_TRUE(criterion.Dominates(sa, sb, sq));
  EXPECT_EQ(criterion.DecideVerdict(sa, sb, sq), Verdict::kDominates);
  EXPECT_EQ(criterion.name(), "Certified");
  EXPECT_TRUE(criterion.is_correct());
  EXPECT_TRUE(criterion.is_sound());
}

TEST(CertifiedTest, MakeCriterionBuildsCertified) {
  const auto criterion = MakeCriterion(CriterionKind::kCertified);
  ASSERT_NE(criterion, nullptr);
  EXPECT_EQ(criterion->name(), "Certified");
  EXPECT_EQ(CriterionKindName(CriterionKind::kCertified), "Certified");
}

TEST(CertifiedTest, VerdictNames) {
  EXPECT_EQ(VerdictName(Verdict::kDominates), "Dominates");
  EXPECT_EQ(VerdictName(Verdict::kNotDominates), "NotDominates");
  EXPECT_EQ(VerdictName(Verdict::kUncertain), "Uncertain");
}

// Decisive verdicts must agree with the oracle on random scenes away from
// the boundary, and the certified engine must never be decisively wrong.
TEST(CertifiedPropertyTest, DecisiveVerdictsMatchOracle) {
  const CertifiedDominance engine;
  Rng rng(0xCE27);
  uint64_t decisive = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const size_t dim = 2 + rng.UniformU64(4);
    const test::Scene s = test::RandomScene(&rng, dim, 10.0);
    if (test::IsBorderline(s)) continue;
    const bool truth = test::OracleDominates(s);
    const Verdict v = engine.Decide(s.sa, s.sb, s.sq);
    if (v == Verdict::kUncertain) continue;
    ++decisive;
    EXPECT_EQ(v == Verdict::kDominates, truth) << test::SceneToString(s);
  }
  // Random scenes live far from the boundary; virtually all must resolve.
  EXPECT_GT(decisive, 19000u);
  EXPECT_LT(engine.stats().UncertainRate(), 0.01);
}

// The certified minimum distance must bracket the (upper-bounding)
// parametric evaluation: dmin is an actual curve distance, and the true
// minimum lies within [dmin - bound, dmin].
TEST(CertifiedPropertyTest, MinDistBoundBracketsParametric) {
  Rng rng(0xCE28);
  for (int iter = 0; iter < 3000; ++iter) {
    const double rab = rng.Uniform(0.1, 1.6);
    const double y1 = rng.Uniform(-8.0, 8.0);
    const double y2 = rng.Uniform(0.05, 8.0);
    if (rab >= 2.0 - 1e-3) continue;  // quartic path requires rab < 2*alpha
    const CertifiedMinDist cd = HyperbolaMinDistCertified(1.0, rab, y1, y2);
    EXPECT_GE(cd.bound, 0.0);
    ASSERT_TRUE(std::isfinite(cd.dmin));
    const double reference = HyperbolaMinDistParametric(1.0, rab, y1, y2);
    // Both are upper bounds on the true minimum; the parametric sampler may
    // sit slightly above or below the quartic answer, but never below
    // dmin - bound by more than its own sampling slack.
    EXPECT_GE(reference, cd.dmin - cd.bound - 1e-6)
        << "rab=" << rab << " y1=" << y1 << " y2=" << y2;
  }
}

// The long double margin is the fuzz harness's ground truth; its sign must
// agree with the oracle criterion away from the boundary.
TEST(CertifiedPropertyTest, LongDoubleMarginMatchesOracle) {
  Rng rng(0xCE29);
  for (int iter = 0; iter < 10000; ++iter) {
    const size_t dim = 2 + rng.UniformU64(4);
    const test::Scene s = test::RandomScene(&rng, dim, 10.0);
    if (test::IsBorderline(s)) continue;
    const bool truth = test::OracleDominates(s);
    const long double margin = DominanceMarginLongDouble(s.sa, s.sb, s.sq);
    EXPECT_EQ(margin > 0.0L, truth) << test::SceneToString(s);
  }
}

}  // namespace
}  // namespace hyperdom
