// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/str_util.h"

#include <gtest/gtest.h>

namespace hyperdom {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyInputIsSingleEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiter) {
  const auto parts = Split("x,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "");
}

TEST(StripTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseUint64Test, ParsesValidNumbers) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("123", &v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(ParseUint64("  9  ", &v));
  EXPECT_EQ(v, 9u);
}

TEST(ParseUint64Test, RejectsGarbage) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
}

TEST(FormatDoubleTest, SignificantDigits) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(123456.789, 4), "1.235e+05");
}

TEST(FormatDurationTest, ScalesUnits) {
  EXPECT_EQ(FormatDuration(500.0), "500 ns");
  EXPECT_EQ(FormatDuration(1500.0), "1.50 us");
  EXPECT_EQ(FormatDuration(2.5e6), "2.50 ms");
  EXPECT_EQ(FormatDuration(3.2e9), "3.20 s");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hyperbola", "hyper"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("hy", "hyper"));
  EXPECT_FALSE(StartsWith("ahyper", "hyper"));
}

}  // namespace
}  // namespace hyperdom
