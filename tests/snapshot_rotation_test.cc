// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Crash-safe snapshot rotation (index/rotation.h): generation/CURRENT
// bookkeeping, pruning, fallback loading past a corrupt manifest or
// generation, and the single-shot fault sweep over "snapshot/rotate"
// proving a torn rotation keeps the last good generation serving and
// leaves no partial files behind.

#include "index/rotation.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "data/generator.h"
#include "index/snapshot.h"
#include "index/ss_tree.h"

namespace hyperdom {
namespace {

std::vector<Hypersphere> RotationData(uint64_t seed, size_t n = 120) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 3;
  spec.radius_mean = 6.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

// A fresh, empty rotation directory per test.
class SnapshotRotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "hyperdom_rot_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Clear();
    ::mkdir(dir_.c_str(), 0755);
  }

  void TearDown() override { Clear(); }

  void Clear() {
    if (auto entries = ListDirectory(dir_); entries.ok()) {
      for (const auto& name : *entries) {
        std::remove((dir_ + "/" + name).c_str());
      }
    }
    ::rmdir(dir_.c_str());
  }

  std::set<std::string> Files() const {
    std::set<std::string> files;
    if (auto entries = ListDirectory(dir_); entries.ok()) {
      files.insert(entries->begin(), entries->end());
    }
    return files;
  }

  std::string dir_;
};

TEST_F(SnapshotRotationTest, PersistPublishesSequentialGenerations) {
  const auto data = RotationData(9101);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  SnapshotRotator rotator(dir_);

  uint64_t seq = 0;
  ASSERT_TRUE(rotator.Persist(tree, &seq).ok());
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(rotator.CurrentSeq(), 1u);
  ASSERT_TRUE(rotator.Persist(tree, &seq).ok());
  EXPECT_EQ(seq, 2u);

  SsTree loaded(1);
  uint64_t loaded_seq = 0;
  ASSERT_TRUE(rotator.LoadLatest(&loaded, &loaded_seq).ok());
  EXPECT_EQ(loaded_seq, 2u);
  EXPECT_EQ(loaded.size(), data.size());
}

TEST_F(SnapshotRotationTest, PruneKeepsOnlyTheLastTwoGenerations) {
  const auto data = RotationData(9102, 40);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  SnapshotRotator rotator(dir_);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rotator.Persist(tree).ok());
  }
  EXPECT_EQ(Files(),
            (std::set<std::string>{"CURRENT", "store.4.hdsp",
                                   "store.5.hdsp"}));
}

TEST_F(SnapshotRotationTest, MissingManifestFallsBackToNewestGeneration) {
  const auto data = RotationData(9103);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  SnapshotRotator rotator(dir_);
  ASSERT_TRUE(rotator.Persist(tree).ok());
  ASSERT_TRUE(rotator.Persist(tree).ok());
  ASSERT_TRUE(RemoveFile(dir_ + "/CURRENT").ok());

  SsTree loaded(1);
  uint64_t seq = 0;
  ASSERT_TRUE(rotator.LoadLatest(&loaded, &seq).ok());
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(loaded.size(), data.size());
}

TEST_F(SnapshotRotationTest, CorruptNamedGenerationFallsBackToPredecessor) {
  const auto data = RotationData(9104);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  SnapshotRotator rotator(dir_);
  ASSERT_TRUE(rotator.Persist(tree).ok());
  ASSERT_TRUE(rotator.Persist(tree).ok());

  // Flip bytes in the generation CURRENT names: its checksum now fails
  // and LoadLatest must quietly serve generation 1.
  {
    std::fstream f(dir_ + "/store.2.hdsp",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    const char garbage[8] = {0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A};
    f.write(garbage, sizeof(garbage));
  }
  SsTree loaded(1);
  uint64_t seq = 0;
  ASSERT_TRUE(rotator.LoadLatest(&loaded, &seq).ok());
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(loaded.size(), data.size());
}

TEST_F(SnapshotRotationTest, EmptyDirectoryIsNotFound) {
  SnapshotRotator rotator(dir_);
  SsTree loaded(1);
  EXPECT_EQ(rotator.LoadLatest(&loaded).code(), StatusCode::kNotFound);
  EXPECT_EQ(rotator.CurrentSeq(), 0u);
}

#if defined(HYPERDOM_FAULT_INJECTION_ENABLED)

struct RegistryGuard {
  ~RegistryGuard() { FaultRegistry::Instance().Reset(); }
};

// The satellite acceptance test: a single-shot fault on snapshot/rotate
// (the crash window between writing generation N+1 and swinging CURRENT)
// must (a) fail the Persist with a Status naming the site, (b) keep the
// previous generation serving via CURRENT, and (c) leave the directory
// byte-for-byte as it was — no orphan generation, no .tmp debris.
TEST_F(SnapshotRotationTest, TornRotationKeepsLastGoodAndLeavesNoDebris) {
  RegistryGuard guard;
  const auto data = RotationData(9105);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  SnapshotRotator rotator(dir_);
  ASSERT_TRUE(rotator.Persist(tree).ok());
  const std::set<std::string> before = Files();
  ASSERT_EQ(before.count("CURRENT"), 1u);

  FaultRegistry::Instance().ArmSite("snapshot/rotate", 1);
  const Status torn = rotator.Persist(tree);
  ASSERT_FALSE(torn.ok());
  EXPECT_NE(torn.message().find("snapshot/rotate"), std::string::npos)
      << torn.ToString();

  // Same directory contents as before the failed rotation.
  EXPECT_EQ(Files(), before);
  EXPECT_EQ(rotator.CurrentSeq(), 1u);
  SsTree loaded(1);
  uint64_t seq = 0;
  ASSERT_TRUE(rotator.LoadLatest(&loaded, &seq).ok());
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(loaded.size(), data.size());

  // And the next rotation heals: it publishes generation 2 normally.
  ASSERT_TRUE(rotator.Persist(tree, &seq).ok());
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(rotator.CurrentSeq(), 2u);
}

// Sweep every single-shot fault through the full Persist path (snapshot
// write sites fire inside SaveSnapshot too): whatever fails, the
// previous generation keeps serving and no .tmp files survive.
TEST_F(SnapshotRotationTest, AnyPersistFaultKeepsServingWithoutTmpFiles) {
  RegistryGuard guard;
  const auto data = RotationData(9106, 60);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  SnapshotRotator rotator(dir_);
  ASSERT_TRUE(rotator.Persist(tree).ok());

  for (std::string_view site :
       {"snapshot/rotate", "snapshot/open_write", "snapshot/write",
        "snapshot/rename"}) {
    const auto& sites = AllFaultSites();
    if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
      continue;  // site catalogue differs; the rotate site always exists
    }
    FaultRegistry::Instance().ArmSite(site, 1);
    const Status torn = rotator.Persist(tree);
    FaultRegistry::Instance().Reset();
    ASSERT_FALSE(torn.ok()) << site;
    EXPECT_EQ(rotator.CurrentSeq(), 1u) << site;
    SsTree loaded(1);
    ASSERT_TRUE(rotator.LoadLatest(&loaded).ok()) << site;
    EXPECT_EQ(loaded.size(), data.size()) << site;
    for (const auto& name : Files()) {
      EXPECT_EQ(name.find(".tmp"), std::string::npos)
          << site << " left behind " << name;
    }
  }
}

#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace hyperdom
