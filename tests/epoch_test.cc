// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Epoch-based reclamation (storage/epoch.h): pin/retire/reclaim ordering,
// nested guards, and a multi-threaded hammer that TSan checks for races.
// The manager is a process-wide singleton, so each test drains the retire
// list it created before returning.

#include "storage/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace hyperdom {
namespace {

// A retiree that flips a flag when its deleter runs.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : freed(counter) {}
  ~Tracked() { freed->fetch_add(1); }
  std::atomic<int>* freed;
};

TEST(EpochManagerTest, NoReadersMeansIdleMinEpoch) {
  auto& mgr = EpochManager::Global();
  EXPECT_EQ(mgr.MinActiveEpoch(), EpochManager::kIdle);
  EXPECT_EQ(mgr.EpochLag(), 0u);
}

TEST(EpochManagerTest, GuardPinsTheCurrentEpoch) {
  auto& mgr = EpochManager::Global();
  const uint64_t before = mgr.current();
  EpochManager::Guard guard;
  EXPECT_EQ(guard.pinned_epoch(), before);
  EXPECT_EQ(mgr.MinActiveEpoch(), before);
}

TEST(EpochManagerTest, NestedGuardsReuseTheOuterPin) {
  auto& mgr = EpochManager::Global();
  EpochManager::Guard outer;
  const uint64_t pinned = outer.pinned_epoch();
  {
    // Retiring bumps the epoch, but an inner guard must keep observing
    // the OUTER pin — the whole nested query sees one consistent epoch.
    // (The retiree is a plain int: it may outlive this scope because the
    // outer guard blocks reclamation.)
    mgr.Retire(new int(0));
    EpochManager::Guard inner;
    EXPECT_EQ(inner.pinned_epoch(), pinned);
    EXPECT_EQ(mgr.MinActiveEpoch(), pinned);
  }
  EXPECT_EQ(outer.pinned_epoch(), pinned);
}

TEST(EpochManagerTest, RetireWithoutReadersReclaimsImmediately) {
  auto& mgr = EpochManager::Global();
  std::atomic<int> freed{0};
  mgr.Retire(new Tracked(&freed));
  // Retire() reclaims opportunistically; with no pinned reader the grace
  // period is already over.
  mgr.ReclaimExpired();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.pending(), 0u);
}

TEST(EpochManagerTest, PinnedReaderBlocksReclamationUntilRelease) {
  auto& mgr = EpochManager::Global();
  std::atomic<int> freed{0};
  {
    EpochManager::Guard reader;
    mgr.Retire(new Tracked(&freed));
    mgr.ReclaimExpired();
    // The reader pinned BEFORE the retire epoch: the object must survive.
    EXPECT_EQ(freed.load(), 0);
    EXPECT_GE(mgr.pending(), 1u);
  }
  mgr.ReclaimExpired();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochManagerTest, ReaderPinnedAfterRetireDoesNotBlockIt) {
  auto& mgr = EpochManager::Global();
  std::atomic<int> freed{0};
  mgr.Retire(new Tracked(&freed));
  // This guard pins an epoch strictly greater than the retiree's stamp,
  // so it cannot extend that object's grace period.
  EpochManager::Guard late_reader;
  mgr.ReclaimExpired();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochManagerTest, EpochLagTracksTheSlowestReader) {
  auto& mgr = EpochManager::Global();
  {
    EpochManager::Guard reader;
    const uint64_t lag_before = mgr.EpochLag();
    mgr.Retire(new int(0));  // bumps the epoch past the pin
    EXPECT_EQ(mgr.EpochLag(), lag_before + 1);
  }
  mgr.ReclaimExpired();
  EXPECT_EQ(mgr.EpochLag(), 0u);
}

// The TSan target: concurrent readers pin/unpin while a writer retires a
// stream of objects. Every object must be freed exactly once and no
// reader may observe a deleted object (the payload write-then-check).
TEST(EpochManagerTest, ConcurrentPinRetireHammer) {
  auto& mgr = EpochManager::Global();
  constexpr int kReaders = 8;
  constexpr int kObjects = 2000;

  struct Node {
    std::atomic<uint64_t>* live_marker;
    uint64_t tag;
  };
  std::atomic<uint64_t> live_marker{0};
  std::atomic<const Node*> published{nullptr};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_seq_cst)) {
        EpochManager::Guard guard;
        const Node* node = published.load(std::memory_order_seq_cst);
        if (node != nullptr) {
          // Under the guard the node must still be alive: its tag was
          // written before publication and never changes.
          ASSERT_EQ(node->live_marker, &live_marker);
          ASSERT_LT(node->tag, static_cast<uint64_t>(kObjects));
        }
      }
    });
  }

  for (uint64_t i = 0; i < kObjects; ++i) {
    Node* next = new Node{&live_marker, i};
    const Node* old = published.exchange(next, std::memory_order_seq_cst);
    if (old != nullptr) {
      mgr.Retire(const_cast<Node*>(old),
                 [](void* p) { delete static_cast<Node*>(p); });
    }
  }
  stop.store(true, std::memory_order_seq_cst);
  for (auto& t : readers) t.join();

  const Node* last = published.exchange(nullptr, std::memory_order_seq_cst);
  mgr.Retire(const_cast<Node*>(last),
             [](void* p) { delete static_cast<Node*>(p); });
  mgr.ReclaimExpired();
  EXPECT_EQ(mgr.pending(), 0u);
  EXPECT_EQ(mgr.MinActiveEpoch(), EpochManager::kIdle);
}

}  // namespace
}  // namespace hyperdom
