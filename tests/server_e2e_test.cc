// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Loopback end-to-end tests for the hyperdom query server: exact answers
// bit-identical to the in-process searcher, deadline-expiry degrading to
// proven best-effort subsets over the wire, queue-full load shedding,
// hardened handling of garbage/corrupt/oversized/slow clients, graceful
// drain of in-flight requests, and a recovery sweep over the injected
// fault sites. Every test runs a real TCP server on 127.0.0.1.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "data/generator.h"
#include "dominance/criterion.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "query/knn.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace hyperdom {
namespace server {
namespace {

class ServerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().Reset();
    SyntheticSpec spec;
    spec.n = 3'000;
    spec.dim = 3;
    spec.radius_mean = 10.0;
    spec.center_mean = 100.0;
    spec.center_stddev = 30.0;
    spec.seed = 4'400;
    data_ = GenerateSynthetic(spec);
    tree_ = std::make_unique<SsTree>(spec.dim);
    ASSERT_TRUE(tree_->BulkLoad(data_).ok());
    criterion_ = MakeCriterion(CriterionKind::kHyperbola);
    queries_ = MakeKnnQueries(data_, 20, 4'500);
  }

  void TearDown() override { FaultRegistry::Instance().Reset(); }

  // Starts a server over the fixture tree; asserts on failure.
  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    auto server =
        std::make_unique<Server>(tree_.get(), criterion_.get(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  Client MakeClient(uint16_t port, int max_attempts = 4) {
    ClientOptions options;
    options.port = port;
    options.max_attempts = max_attempts;
    options.backoff_base_ms = 1;  // keep retrying tests fast
    options.backoff_max_ms = 20;
    return Client(options);
  }

  KnnResult DirectSearch(const Hypersphere& query, uint32_t k) const {
    KnnOptions options;
    options.k = k;
    const KnnSearcher searcher(criterion_.get(), options);
    return searcher.Search(*tree_, query);
  }

  std::vector<Hypersphere> data_;
  std::unique_ptr<SsTree> tree_;
  std::unique_ptr<const DominanceCriterion> criterion_;
  std::vector<Hypersphere> queries_;
};

// Reads one response frame from a raw socket.
Status ReadFrame(int fd, FrameKind* kind, std::string* payload) {
  char header_bytes[kFrameHeaderSize];
  HYPERDOM_RETURN_NOT_OK(
      ReadFull(fd, header_bytes, sizeof(header_bytes), 2'000));
  Result<FrameHeader> header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)),
      kDefaultMaxPayloadBytes);
  HYPERDOM_RETURN_NOT_OK(header.status());
  payload->assign(header->payload_size, '\0');
  if (header->payload_size > 0) {
    HYPERDOM_RETURN_NOT_OK(
        ReadFull(fd, payload->data(), payload->size(), 2'000));
  }
  HYPERDOM_RETURN_NOT_OK(VerifyPayloadCrc(*header, *payload));
  *kind = header->kind;
  return Status::OK();
}

// Reads one frame and decodes it as an error response.
Status ReadErrorFrame(int fd, Status* remote) {
  FrameKind kind = FrameKind::kPingRequest;
  std::string payload;
  HYPERDOM_RETURN_NOT_OK(ReadFrame(fd, &kind, &payload));
  if (kind != FrameKind::kErrorResponse) {
    return Status::Internal("expected an error frame");
  }
  return DecodeErrorResponse(payload, remote);
}

TEST_F(ServerE2eTest, PingPong) {
  auto server = StartServer();
  Client client = MakeClient(server->port());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.last_attempts(), 1);
}

TEST_F(ServerE2eTest, ExactAnswersAreBitIdenticalToDirectSearch) {
  auto server = StartServer();
  Client client = MakeClient(server->port());
  for (const Hypersphere& query : queries_) {
    KnnRequest request;
    request.query = query;
    request.k = 10;
    Result<KnnResponse> response = client.Knn(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->completeness, Completeness::kExact);

    const KnnResult direct = DirectSearch(query, 10);
    ASSERT_EQ(response->answers.size(), direct.answers.size());
    for (size_t i = 0; i < direct.answers.size(); ++i) {
      EXPECT_EQ(response->answers[i].id, direct.answers[i].id);
      ASSERT_EQ(response->answers[i].sphere.dim(),
                direct.answers[i].sphere.dim());
      EXPECT_EQ(std::memcmp(response->answers[i].sphere.center().data(),
                            direct.answers[i].sphere.center().data(),
                            direct.answers[i].sphere.dim() * sizeof(double)),
                0);
      EXPECT_EQ(response->answers[i].sphere.radius(),
                direct.answers[i].sphere.radius());
    }
  }
}

TEST_F(ServerE2eTest, DeadlineExpiryReturnsProvenSubsetOverWire) {
  auto server = StartServer();
  Client client = MakeClient(server->port());
  size_t best_effort_seen = 0;
  for (const Hypersphere& query : queries_) {
    KnnRequest request;
    request.query = query;
    request.k = 10;
    request.node_budget = 1;  // deterministic near-immediate expiry
    Result<KnnResponse> response = client.Knn(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->completeness != Completeness::kBestEffort) continue;
    ++best_effort_seen;
    // The robustness contract (docs/robustness.md §7): every best-effort
    // answer is certainly a member of the exact answer set.
    const KnnResult exact = DirectSearch(query, 10);
    std::set<uint64_t> exact_ids;
    for (const DataEntry& entry : exact.answers) exact_ids.insert(entry.id);
    for (const DataEntry& entry : response->answers) {
      EXPECT_TRUE(exact_ids.count(entry.id))
          << "best-effort answer #" << entry.id
          << " is not in the exact answer set";
    }
  }
  EXPECT_GT(best_effort_seen, 0u)
      << "node budget 1 never expired a traversal";
  EXPECT_EQ(server->counters().best_effort_responses.load(),
            best_effort_seen);
}

TEST_F(ServerE2eTest, QueueFullRequestsAreShedNotQueued) {
  // One worker, parked until released; queue bound of 1. The first
  // request fills the queue; the second must be refused immediately with
  // kOverloaded — no waiting, no hang — while the connection stays open.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  options.worker_start_hook = [released] { released.wait(); };
  auto server = StartServer(options);

  KnnRequest request;
  request.query = queries_.front();
  request.k = 5;

  Client parked_client = MakeClient(server->port());
  std::thread parked([&] {
    Result<KnnResponse> response = parked_client.Knn(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->completeness, Completeness::kExact);
  });
  // Wait until the first request is admitted (queue depth 1).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server->counters().connections_accepted.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client shed_client = MakeClient(server->port(), /*max_attempts=*/1);
  Result<KnnResponse> shed = shed_client.Knn(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(server->counters().requests_shed.load(), 1u);

  // The shed connection is still usable: once capacity frees up, the
  // same client succeeds without reconnecting.
  release.set_value();
  parked.join();
  Result<KnnResponse> retry = shed_client.Knn(request);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(ServerE2eTest, StopDrainsInFlightRequests) {
  // A request admitted before Stop() must complete and its response must
  // flush — drain loses nothing that was accepted.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ServerOptions options;
  options.worker_threads = 1;
  options.worker_start_hook = [released] { released.wait(); };
  auto server = StartServer(options);

  KnnRequest request;
  request.query = queries_.front();
  request.k = 5;
  Client client = MakeClient(server->port());
  std::thread in_flight([&] {
    Result<KnnResponse> response = client.Knn(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server->counters().connections_accepted.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Release the worker just after the drain starts.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.set_value();
  });
  server->Stop();
  releaser.join();
  in_flight.join();
  EXPECT_EQ(server->counters().requests_served.load(), 1u);
}

TEST_F(ServerE2eTest, GarbageBytesGetProtocolErrorAndServerSurvives) {
  auto server = StartServer();
  Result<int> fd = ConnectWithTimeout("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());
  std::string garbage(kFrameHeaderSize, '\xFF');
  ASSERT_TRUE(WriteFull(*fd, garbage.data(), garbage.size(), 2'000).ok());
  Status remote;
  ASSERT_TRUE(ReadErrorFrame(*fd, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kProtocolError);
  // The stream cannot be resynced: the server closes the connection.
  char byte = 0;
  bool clean_eof = false;
  EXPECT_FALSE(ReadFull(*fd, &byte, 1, 2'000, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);
  CloseSocket(*fd);

  // The server itself is unharmed.
  Client client = MakeClient(server->port());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(server->counters().protocol_errors.load(), 1u);
}

TEST_F(ServerE2eTest, CrcFlipOverWireIsRejected) {
  auto server = StartServer();
  Result<int> fd = ConnectWithTimeout("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());
  KnnRequest request;
  request.query = queries_.front();
  std::string frame =
      EncodeFrame(FrameKind::kKnnRequest, EncodeKnnRequest(request));
  frame[kFrameHeaderSize + 3] =
      static_cast<char>(frame[kFrameHeaderSize + 3] ^ 0x10);
  ASSERT_TRUE(WriteFull(*fd, frame.data(), frame.size(), 2'000).ok());
  Status remote;
  ASSERT_TRUE(ReadErrorFrame(*fd, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kProtocolError);
  EXPECT_NE(remote.message().find("checksum"), std::string::npos);
  CloseSocket(*fd);
}

TEST_F(ServerE2eTest, OversizedDeclarationIsRejectedBeforeAllocation) {
  ServerOptions options;
  options.max_payload_bytes = 1024;
  auto server = StartServer(options);
  Result<int> fd = ConnectWithTimeout("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());
  // A well-formed header declaring a payload over the server's cap.
  std::string frame = EncodeFrame(FrameKind::kKnnRequest, {});
  const uint64_t huge = 1ull << 40;
  std::memcpy(frame.data() + 12, &huge, sizeof(huge));
  ASSERT_TRUE(WriteFull(*fd, frame.data(), frame.size(), 2'000).ok());
  Status remote;
  ASSERT_TRUE(ReadErrorFrame(*fd, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kProtocolError);
  EXPECT_NE(remote.message().find("exceeds limit"), std::string::npos);
  CloseSocket(*fd);
}

TEST_F(ServerE2eTest, SlowClientIsDisconnectedNotWaitedOnForever) {
  ServerOptions options;
  options.io_timeout_ms = 150;
  auto server = StartServer(options);
  Result<int> fd = ConnectWithTimeout("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());
  // Half a header, then silence: the server's bounded read must give up.
  ASSERT_TRUE(WriteFull(*fd, "HDNP", 4, 2'000).ok());
  char byte = 0;
  bool clean_eof = false;
  const auto start = std::chrono::steady_clock::now();
  const Status read = ReadFull(*fd, &byte, 1, 5'000, &clean_eof);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(clean_eof) << read.ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3'000);
  CloseSocket(*fd);
  EXPECT_GE(server->counters().protocol_errors.load(), 1u);
}

TEST_F(ServerE2eTest, ByteDrippingClientCannotHoldAConnectionSlot) {
  ServerOptions options;
  options.io_timeout_ms = 200;
  auto server = StartServer(options);
  Result<int> fd = ConnectWithTimeout("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());
  // One byte per 100 ms: every inter-byte gap fits comfortably inside the
  // io timeout, so a per-wait bound would read the whole frame and never
  // give up. The timeout budgets the WHOLE transfer, so the server must
  // cut the connection after ~io_timeout_ms, long before the 24-byte
  // header completes at this drip rate (slow-loris defense).
  const std::string frame = EncodeFrame(FrameKind::kPingRequest, {});
  bool dropped = false;
  for (size_t i = 0; i < frame.size(); ++i) {
    if (!WriteFull(*fd, frame.data() + i, 1, 2'000).ok()) {
      dropped = true;  // RST from the server's close
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!dropped) {
    // Writes can land in the socket buffer after the server gave up; the
    // drop then surfaces as EOF (had the server read the whole frame, a
    // pong frame would arrive here instead).
    char byte = 0;
    dropped = !ReadFull(*fd, &byte, 1, 2'000).ok();
  }
  EXPECT_TRUE(dropped);
  CloseSocket(*fd);
  EXPECT_GE(server->counters().protocol_errors.load(), 1u);
  // The freed slot serves the next client normally.
  Client client = MakeClient(server->port());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerE2eTest, ConnectionLimitShedsAtAccept) {
  ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  Client first = MakeClient(server->port());
  ASSERT_TRUE(first.Ping().ok());  // occupies the one connection slot

  // The second connection is told kOverloaded at accept and closed; the
  // frame arrives without the client sending anything (reading rather
  // than writing also avoids racing the server's immediate close).
  Result<int> fd = ConnectWithTimeout("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());
  Status remote;
  ASSERT_TRUE(ReadErrorFrame(*fd, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kOverloaded);
  CloseSocket(*fd);
  EXPECT_GE(server->counters().requests_shed.load(), 1u);
}

TEST_F(ServerE2eTest, SingleShotFaultsRecoverViaClientRetry) {
  // Sweep every server fault site: arm a single-shot fault, prove the
  // injected failure is contained (no crash, no hang) and that the
  // client's retry logic recovers the request end to end.
  auto server = StartServer();
  KnnRequest request;
  request.query = queries_.front();
  request.k = 10;
  const KnnResult direct = DirectSearch(request.query, request.k);

  for (const char* site :
       {"server/accept", "server/read", "server/write", "server/enqueue"}) {
    SCOPED_TRACE(site);
    FaultRegistry::Instance().ArmSite(site);
    Client client = MakeClient(server->port());
    Result<KnnResponse> response = client.Knn(request);
    ASSERT_TRUE(response.ok())
        << site << ": " << response.status().ToString();
    EXPECT_EQ(FaultRegistry::Instance().injected(), 1u)
        << site << " never fired";
    ASSERT_EQ(response->answers.size(), direct.answers.size());
    for (size_t i = 0; i < direct.answers.size(); ++i) {
      EXPECT_EQ(response->answers[i].id, direct.answers[i].id);
    }
    FaultRegistry::Instance().Reset();
  }
}

TEST_F(ServerE2eTest, PersistentFaultsFailCleanAndRecoverOnDisarm) {
  // Every site firing on every execution: requests fail with a clean
  // Status (never a crash or hang), and the moment the registry is
  // disarmed the same server serves again.
  auto server = StartServer();
  KnnRequest request;
  request.query = queries_.front();
  FaultRegistry::Instance().ArmRandom(/*seed=*/1, /*probability=*/1.0);
  Client failing = MakeClient(server->port(), /*max_attempts=*/2);
  Result<KnnResponse> blocked = failing.Knn(request);
  EXPECT_FALSE(blocked.ok());

  FaultRegistry::Instance().Reset();
  Client recovered = MakeClient(server->port());
  Result<KnnResponse> response = recovered.Knn(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
}

TEST_F(ServerE2eTest, CountersTrackTraffic) {
  auto server = StartServer();
  {
    Client client = MakeClient(server->port());
    ASSERT_TRUE(client.Ping().ok());
    KnnRequest request;
    request.query = queries_.front();
    ASSERT_TRUE(client.Knn(request).ok());
  }
  server->Stop();
  const ServerCounters& counters = server->counters();
  EXPECT_EQ(counters.connections_accepted.load(), 1u);
  EXPECT_EQ(counters.requests_served.load(), 1u);
  EXPECT_EQ(counters.active_connections.load(), 0);
  EXPECT_EQ(counters.protocol_errors.load(), 0u);
}

TEST_F(ServerE2eTest, StopIsIdempotentAndStartAfterStopWorks) {
  ServerOptions options;
  auto server = StartServer(options);
  const uint16_t first_port = server->port();
  EXPECT_GT(first_port, 0);
  server->Stop();
  server->Stop();  // idempotent

  // A fresh server binds and serves again (resources were released).
  auto second = StartServer(options);
  Client client = MakeClient(second->port());
  EXPECT_TRUE(client.Ping().ok());
}

}  // namespace
}  // namespace server
}  // namespace hyperdom
