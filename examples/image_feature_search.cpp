// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Domain example: similarity search over high-dimensional image features —
// the SS-tree's original habitat (paper Sections 1 and 5.1: "similarity
// search queries in high-dimensional space, ... image and video retrieval").
//
// Each catalog image is a 16-d texture-feature vector with an uncertainty
// radius from feature-extraction noise; the probe is a query image whose
// features were extracted at lower resolution (bigger radius). The example
// runs the dominance-pruned kNN with every correct criterion and reports
// candidate-set sizes and dominance-check counts, then uses the raw
// dominance operator to rank two candidates directly.

#include <cstdio>

#include "data/datasets.h"
#include "data/generator.h"
#include "dominance/criterion.h"
#include "index/ss_tree.h"
#include "query/knn.h"

int main() {
  using namespace hyperdom;

  // The Texture stand-in (68,040 x 16), capped for a snappy example.
  const auto features = LoadRealStandIn(RealDataset::kTexture, 30'000);
  const auto catalog = MakeUncertain(features, /*radius_mean=*/5.0,
                                     /*sigma_ratio=*/0.25, /*seed=*/7);
  SsTree tree(/*dim=*/16);
  if (Status st = tree.BulkLoad(catalog); !st.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu feature vectors (16-d), SS-tree height %zu\n",
              tree.size(), tree.Height());

  // Probe: a catalog image re-extracted with extra noise.
  const Hypersphere probe(catalog[123].center(), 12.0);

  std::printf("\n%-10s %12s %18s %16s\n", "criterion", "candidates",
              "dominance checks", "entries accessed");
  for (CriterionKind kind :
       {CriterionKind::kHyperbola, CriterionKind::kMinMax, CriterionKind::kMbr,
        CriterionKind::kGp}) {
    const auto criterion = MakeCriterion(kind);
    KnnOptions options;
    options.k = 10;
    KnnSearcher searcher(criterion.get(), options);
    const KnnResult result = searcher.Search(tree, probe);
    std::printf("%-10s %12zu %18llu %16llu\n",
                std::string(criterion->name()).c_str(), result.answers.size(),
                static_cast<unsigned long long>(result.stats.dominance_checks),
                static_cast<unsigned long long>(
                    result.stats.entries_accessed));
  }

  // Direct use of the operator: is candidate A certainly a better match
  // than candidate B for this probe, despite all the uncertainty?
  const auto exact = MakeCriterion(CriterionKind::kHyperbola);
  const Hypersphere& a = catalog[123];
  const Hypersphere& b = catalog[4567];
  std::printf("\nDom(A, B, probe) = %s  (A certainly closer than B: %s)\n",
              exact->Dominates(a, b, probe) ? "true" : "false",
              exact->Dominates(a, b, probe) ? "yes — B can be discarded"
                                            : "no — keep both");
  return 0;
}
