// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Domain example: kNN over uncertain GPS positions (the paper's motivating
// scenario from Section 1).
//
// A dispatch service tracks a fleet of couriers whose GPS fixes carry
// per-device error radii — each courier is a disk, not a point. A customer
// request also comes with an uncertain pickup region. "Which couriers could
// be among the 5 nearest?" is exactly Definition 2's kNN on hyperspheres:
// every courier that is not provably dominated by the 5th-best worst case
// must be kept as a possible answer.
//
// The example indexes the fleet in an SS-tree and contrasts the exact
// Hyperbola-pruned answer with the cheaper MinMax pruning (same recall,
// more false candidates to dispatch against).

#include <cstdio>

#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "dominance/minmax.h"
#include "index/ss_tree.h"
#include "query/knn.h"

int main() {
  using namespace hyperdom;

  // Synthesize a city: 20,000 couriers in a 30 km x 30 km grid (meters),
  // GPS error radius between 5 m (good fix) and 150 m (urban canyon).
  Rng rng(2026);
  std::vector<Hypersphere> fleet;
  fleet.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    Point pos = {rng.Uniform(0.0, 30'000.0), rng.Uniform(0.0, 30'000.0)};
    fleet.emplace_back(std::move(pos), rng.Uniform(5.0, 150.0));
  }

  SsTree tree(/*dim=*/2);
  if (Status st = tree.BulkLoad(fleet); !st.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu couriers, SS-tree height %zu\n", tree.size(),
              tree.Height());

  // The pickup: somewhere inside a 200 m radius around the mall entrance.
  const Hypersphere pickup({15'200.0, 14'800.0}, 200.0);
  constexpr size_t kWanted = 5;

  const HyperbolaCriterion hyperbola;
  const MinMaxCriterion minmax;
  for (const DominanceCriterion* criterion :
       {static_cast<const DominanceCriterion*>(&hyperbola),
        static_cast<const DominanceCriterion*>(&minmax)}) {
    KnnOptions options;
    options.k = kWanted;
    options.strategy = SearchStrategy::kBestFirst;
    KnnSearcher searcher(criterion, options);
    const KnnResult result = searcher.Search(tree, pickup);
    std::printf(
        "\n%s pruning: %zu possible top-%zu couriers "
        "(%llu dominance checks, %llu entries accessed)\n",
        std::string(criterion->name()).c_str(), result.answers.size(),
        kWanted,
        static_cast<unsigned long long>(result.stats.dominance_checks),
        static_cast<unsigned long long>(result.stats.entries_accessed));
    size_t shown = 0;
    for (const auto& e : result.answers) {
      if (++shown > 5) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  courier #%llu at (%.0f, %.0f) +/- %.0f m, worst-case "
                  "distance %.0f m\n",
                  static_cast<unsigned long long>(e.id), e.sphere.center()[0],
                  e.sphere.center()[1], e.sphere.radius(),
                  MaxDist(e.sphere, pickup));
    }
  }
  std::printf(
      "\nBoth answers contain every true candidate; the exact (Hyperbola)\n"
      "answer is the smaller one — fewer couriers to ping for confirmation.\n");
  return 0;
}
