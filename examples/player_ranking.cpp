// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Domain example: inverse ranking over uncertain season statistics (the
// paper's Section 6 names inverse ranking queries among the dominance
// operator's applications; Lian & Chen [23] studied the rectangle case).
//
// Scenario: a scouting department models each player's next-season stat
// line as a hypersphere around last season's 17-d stat vector — the radius
// reflects projection uncertainty (injuries, age, role changes). Given a
// "benchmark player" profile (the query), the question "where could player
// X rank against the league?" is an inverse ranking query: dominance
// proves which players are certainly closer to the benchmark and which
// are certainly farther, pinning X's possible rank to an interval.

#include <cstdio>

#include "data/datasets.h"
#include "data/generator.h"
#include "dominance/criterion.h"
#include "query/inverse_ranking.h"

int main() {
  using namespace hyperdom;

  // League: the NBA stand-in (17,265 players x 17 stats), capped for a
  // snappy example, with projection uncertainty radius ~ 40 stat units.
  const auto stats = LoadRealStandIn(RealDataset::kNba, 4000);
  const auto league = MakeUncertain(stats, /*radius_mean=*/40.0,
                                    /*sigma_ratio=*/0.25, /*seed=*/2027);
  // Benchmark profile: a star-season stat line (player #100's center,
  // tight uncertainty — it is a fixed reference, not a projection).
  const Hypersphere benchmark(league[100].center(), 5.0);

  const auto exact = MakeCriterion(CriterionKind::kHyperbola);
  const auto loose = MakeCriterion(CriterionKind::kMinMax);

  std::printf("league size: %zu players (17-d stat lines)\n\n",
              league.size());
  std::printf("%-8s %-22s %-22s\n", "player", "rank interval (exact)",
              "rank interval (MinMax)");
  for (size_t player : {100u, 7u, 42u, 1234u, 3999u}) {
    const RankInterval tight =
        InverseRanking(league, player, benchmark, *exact);
    const RankInterval rough =
        InverseRanking(league, player, benchmark, *loose);
    char tight_s[48], rough_s[48];
    std::snprintf(tight_s, sizeof(tight_s), "[%llu, %llu]",
                  static_cast<unsigned long long>(tight.best_rank),
                  static_cast<unsigned long long>(tight.worst_rank));
    std::snprintf(rough_s, sizeof(rough_s), "[%llu, %llu]",
                  static_cast<unsigned long long>(rough.best_rank),
                  static_cast<unsigned long long>(rough.worst_rank));
    std::printf("#%-7zu %-22s %-22s\n", player, tight_s, rough_s);
  }

  std::printf(
      "\nThe exact (Hyperbola) intervals are nested inside the MinMax ones:\n"
      "a sharper dominance test proves more certainly-closer/farther pairs\n"
      "and narrows every player's possible rank band.\n");
  return 0;
}
