// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Quickstart: decide hypersphere dominance with every criterion.
//
// Builds the paper's Figure-1 style scene: two uncertain objects Sa and Sb
// and an uncertain query region Sq, then asks each decision criterion
// whether Sa is *certainly* closer to every possible query position than Sb
// is (the dominance predicate), and shows where the non-optimal criteria
// disagree with the exact answer.

#include <cstdio>

#include "dominance/criterion.h"

int main() {
  using namespace hyperdom;

  // A 2-d scene, paper Figure 1(a)-like: Sa sits between Sq and Sb.
  const Hypersphere sa({4.0, 0.0}, 1.0);
  const Hypersphere sb({12.0, 0.0}, 1.0);
  const Hypersphere sq({0.0, 0.0}, 1.5);

  std::printf("Sa = %s\nSb = %s\nSq = %s\n\n", sa.ToString().c_str(),
              sb.ToString().c_str(), sq.ToString().c_str());

  std::printf("%-15s %-10s %-9s %-7s\n", "criterion", "Dominates?", "correct",
              "sound");
  for (CriterionKind kind : PaperCriteria()) {
    const auto criterion = MakeCriterion(kind);
    const bool dom = criterion->Dominates(sa, sb, sq);
    std::printf("%-15s %-10s %-9s %-7s\n",
                std::string(criterion->name()).c_str(), dom ? "true" : "false",
                criterion->is_correct() ? "yes" : "no",
                criterion->is_sound() ? "yes" : "no");
  }

  // A harder scene where the sound-but-loose criteria give up: Sq is large,
  // so the farthest point of Sa from some q differs a lot from the nearest
  // point of Sb — MinMax-style bounds cross even though dominance holds.
  const Hypersphere sq_wide({0.0, 6.0}, 4.0);
  std::printf("\nWith a wide query region Sq' = %s:\n",
              sq_wide.ToString().c_str());
  for (CriterionKind kind : PaperCriteria()) {
    const auto criterion = MakeCriterion(kind);
    std::printf("  %-15s -> %s\n", std::string(criterion->name()).c_str(),
                criterion->Dominates(sa, sb, sq_wide) ? "true" : "false");
  }
  std::printf(
      "\nHyperbola is exact: anything it answers 'true' is a safe prune,\n"
      "and it never misses a prune (see DESIGN.md / the paper's Table 1).\n");
  return 0;
}
