// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Domain example: the paper's future-work extensions in action (Section 8 —
// "radii of the hyperspheres change over time and/or ... distance metrics
// other than Euclidean").
//
// Scenario: an air-traffic advisory service. Each aircraft's position
// uncertainty grows linearly since its last radar fix (a GrowingSphere);
// the controller wants to know for how long the guarantee "aircraft A stays
// closer to the incident zone than aircraft B" remains valid, and also
// evaluates dominance under a weighted metric that penalizes vertical
// separation 9x (altitude matters more than lateral distance). A reverse-
// kNN query then finds which aircraft consider the incident zone their
// nearest region.

#include <cstdio>

#include "common/rng.h"
#include "dominance/growing.h"
#include "dominance/metric.h"
#include "query/rknn.h"

int main() {
  using namespace hyperdom;

  // 3-d airspace, kilometers: (x, y, altitude).
  const GrowingSphere aircraft_a{Hypersphere({10.0, 4.0, 9.0}, 0.2), 0.05};
  const GrowingSphere aircraft_b{Hypersphere({26.0, 13.0, 10.0}, 0.3), 0.09};
  const GrowingSphere incident{Hypersphere({2.0, 1.0, 9.5}, 1.0), 0.0};

  std::printf("A: %s growing %.2f km/min\n",
              aircraft_a.at_t0.ToString().c_str(), aircraft_a.growth_rate);
  std::printf("B: %s growing %.2f km/min\n",
              aircraft_b.at_t0.ToString().c_str(), aircraft_b.growth_rate);
  std::printf("incident zone: %s\n\n", incident.at_t0.ToString().c_str());

  // How long does "A certainly closer to the incident than B" stay true?
  const double expiry =
      DominanceExpiry(aircraft_a, aircraft_b, incident, /*horizon=*/240.0);
  std::printf("Dom(A, B, incident) holds now: %s\n",
              DominatesAtTime(aircraft_a, aircraft_b, incident, 0.0)
                  ? "yes"
                  : "no");
  std::printf("guarantee expires after %.1f minutes without a new fix\n\n",
              expiry);

  // Altitude-weighted metric: 1 km of vertical separation counts like 3 km
  // of lateral separation (weight 9 on the squared term).
  const WeightedEuclideanDominance vertical_aware({1.0, 1.0, 9.0});
  std::printf("under the altitude-weighted metric, Dom(A, B, incident) = %s\n",
              vertical_aware.Dominates(aircraft_a.at_t0, aircraft_b.at_t0,
                                       incident.at_t0)
                  ? "true"
                  : "false");

  // Reverse-kNN: which of 500 aircraft consider the incident zone their
  // possible nearest region (k = 1)? Those crews get the advisory first.
  Rng rng(99);
  std::vector<Hypersphere> traffic;
  for (int i = 0; i < 500; ++i) {
    Point p = {rng.Uniform(0.0, 60.0), rng.Uniform(0.0, 60.0),
               rng.Uniform(8.0, 12.0)};
    traffic.emplace_back(std::move(p), rng.Uniform(0.1, 0.6));
  }
  const auto exact = MakeCriterion(CriterionKind::kHyperbola);
  const RknnResult rknn =
      RknnFilter(traffic, incident.at_t0, /*k=*/1, *exact);
  std::printf(
      "\nRkNN(k=1): %zu of %zu aircraft may consider the incident zone "
      "their nearest region\n(%llu dominance checks, %llu candidates "
      "pruned)\n",
      rknn.answers.size(), traffic.size(),
      static_cast<unsigned long long>(rknn.stats.dominance_checks),
      static_cast<unsigned long long>(rknn.stats.candidates_pruned));
  return 0;
}
