// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Ablation: index substrate comparison for the dominance-pruned kNN query.
// The SS-tree line of work ([31], [20], [18], cited in the paper's intro)
// motivates sphere-shaped node regions by their behavior in higher
// dimensions versus rectangle trees; this bench pits the four indexes
// (SS-tree, R*-tree, VP-tree, M-tree) and the linear scan against each
// other on identical workloads, all with the exact Hyperbola criterion, so
// answers are identical and only traversal cost differs.

#include <cstdio>
#include <unordered_set>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "query/index_knn.h"
#include "query/knn.h"

int main() {
  using namespace hyperdom;
  bench::PrintHeader("Ablation: index substrates for dominance-pruned kNN",
                     "N = 50k, mu = 10, k = 10, Hyperbola, best-first");

  for (size_t d : {2, 4, 8, 16}) {
    SyntheticSpec spec;
    spec.n = 50'000;
    spec.dim = d;
    spec.radius_mean = 10.0;
    spec.center_mean = 1000.0;
    spec.center_stddev = 250.0;
    spec.seed = 0xABC0 + d;
    const auto data = GenerateSynthetic(spec);
    const auto queries = MakeKnnQueries(data, 8, 0xABC1);
    const HyperbolaCriterion exact;
    KnnOptions options;
    options.k = 10;

    // Build all four indexes, timing construction.
    Stopwatch watch;
    SsTree ss_tree(d);
    if (Status st = ss_tree.BulkLoad(data); !st.ok()) return 1;
    const double ss_build = watch.ElapsedSeconds();
    watch.Restart();
    RStarTree rstar(d);
    if (Status st = rstar.BulkLoad(data); !st.ok()) return 1;
    const double rstar_build = watch.ElapsedSeconds();
    watch.Restart();
    VpTree vp;
    if (Status st = vp.Build(data); !st.ok()) return 1;
    const double vp_build = watch.ElapsedSeconds();
    watch.Restart();
    MTree mtree(d);
    if (Status st = mtree.BulkLoad(data); !st.ok()) return 1;
    const double mtree_build = watch.ElapsedSeconds();

    const KnnSearcher ss_searcher(&exact, options);
    struct RowResult {
      const char* name;
      double build_s;
      double query_ms = 0.0;
      uint64_t accessed = 0;
      bool answers_match = true;
    };
    RowResult rows[] = {{"SS-tree", ss_build},
                        {"R*-tree", rstar_build},
                        {"VP-tree", vp_build},
                        {"M-tree", mtree_build},
                        {"linear scan", 0.0}};

    for (const auto& sq : queries) {
      const KnnResult truth = KnnLinearScan(data, sq, options.k, exact);
      std::unordered_set<uint64_t> truth_ids;
      for (const auto& e : truth.answers) truth_ids.insert(e.id);

      auto run = [&](RowResult* row, auto&& fn) {
        watch.Restart();
        const KnnResult result = fn();
        row->query_ms +=
            static_cast<double>(watch.ElapsedNs()) * 1e-6;
        row->accessed += result.stats.entries_accessed;
        if (result.answers.size() != truth_ids.size()) {
          row->answers_match = false;
        } else {
          for (const auto& e : result.answers) {
            if (truth_ids.count(e.id) == 0) row->answers_match = false;
          }
        }
      };
      run(&rows[0], [&] { return ss_searcher.Search(ss_tree, sq); });
      run(&rows[1], [&] { return RStarKnnSearch(rstar, sq, exact, options); });
      run(&rows[2], [&] { return VpTreeKnnSearch(vp, sq, exact, options); });
      run(&rows[3], [&] { return MTreeKnnSearch(mtree, sq, exact, options); });
      run(&rows[4], [&] { return KnnLinearScan(data, sq, options.k, exact); });
    }

    std::printf("\n-- d = %zu --\n", d);
    TablePrinter table({"index", "build", "query time", "entries accessed",
                        "answers == exact"});
    for (auto& row : rows) {
      char build_s[32], query_s[32];
      std::snprintf(build_s, sizeof(build_s), "%.2f s", row.build_s);
      std::snprintf(query_s, sizeof(query_s), "%.3f ms",
                    row.query_ms / static_cast<double>(queries.size()));
      table.AddRow({row.name, build_s, query_s,
                    std::to_string(row.accessed / queries.size()),
                    row.answers_match ? "yes" : "NO"});
    }
    table.Print();
  }
  std::printf(
      "\nReading: every index returns the identical exact answer set — the\n"
      "dominance machinery is substrate-agnostic. All hierarchical indexes\n"
      "beat the scan by 10-60x at low d and converge toward it as d grows\n"
      "(fat query/data spheres leave little to prune — the usual curse of\n"
      "dimensionality). The cheap-to-build metric trees (VP, M) are\n"
      "competitive with the box tree throughout, which is the practical\n"
      "point the SS-tree line of work [31] makes.\n");
  return 0;
}
