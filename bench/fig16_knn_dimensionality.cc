// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 16** (a: query time, b: precision): effect of the
// dimensionality d in {2, 4, 6, 8, 10} for kNN queries (synthetic,
// N = 100k, mu = 10, k = 10).

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 16: kNN — effect of dimensionality d",
                     "N = 100k, mu = 10, k = 10, SS-tree");
  bench::Reporter reporter(argc, argv, "fig16_knn_dimensionality");

  for (size_t d : {2, 4, 6, 8, 10}) {
    SyntheticSpec spec;
    spec.n = reporter.Scaled(100'000, 5'000);
    spec.dim = d;
    spec.radius_mean = 10.0;
    // Tenfold coordinate scale; see fig13_knn_radius.cc and EXPERIMENTS.md.
    spec.center_mean = 1000.0;
    spec.center_stddev = 250.0;
    spec.seed = 16'000 + d;
    const auto data = GenerateSynthetic(spec);
    KnnExperimentConfig config;
    config.k = 10;
    config.num_queries = reporter.Scaled(5, 2);
    config.seed = 16'100;
    config.threads = reporter.threads();
    const auto rows = RunKnnExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "d = %zu", d);
    reporter.KnnSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 16): query time grows with d; precision\n"
      "is not significantly affected by d.\n");
  return reporter.Finish();
}
