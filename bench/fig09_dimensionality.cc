// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 9** (a: execution time, b: precision, c: recall):
// effects of the dimensionality d in {2, 4, 6, 8, 10} for the dominance
// problem on synthetic data (paper Table 2 defaults: N = 100k, mu = 10,
// Gaussian centers and radii).

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 9: effect of dimensionality d (synthetic)",
                     "N = 100k, mu = 10; 10,000 triples x 10 runs per d");
  bench::Reporter reporter(argc, argv, "fig09_dimensionality");

  for (size_t d : {2, 4, 6, 8, 10}) {
    SyntheticSpec spec;
    spec.n = reporter.Scaled(100'000, 5'000);
    spec.dim = d;
    spec.radius_mean = 10.0;
    spec.seed = 9000 + d;
    const auto data = GenerateSynthetic(spec);
    DominanceExperimentConfig config;
    config.workload_size = reporter.Scaled(config.workload_size, 200);
    if (reporter.smoke()) config.repeats = 1;
    config.seed = 9900 + d;
    const auto rows = RunDominanceExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "d = %zu", d);
    reporter.DominanceSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 9): every criterion's time grows mildly\n"
      "with d (all are O(d)); Hyperbola slightly slower than MinMax and GP\n"
      "but faster than MBR and Trigonometric; only Hyperbola has both\n"
      "precision and recall pinned at 100%%.\n");
  return reporter.Finish();
}
