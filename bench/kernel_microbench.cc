// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Span-vs-legacy kernel microbenchmark: the layout half of the columnar
// refactor's claim. Both sides execute the SAME span arithmetic (the
// Hypersphere overloads delegate to it), so any gap measured here is pure
// memory layout: a SphereStore lookup is pointer arithmetic into one
// 64-byte-aligned arena, while the legacy AoS side chases one heap
// pointer per sphere into blocks scattered by interleaved allocations —
// exactly the fragmentation an index build produces.
//
// The primary access pattern is SHUFFLED slot order: that is how the
// traversal hot paths touch spheres (BestKnownList refinement, RkNN
// candidate verification, leaf visits driven by the priority queue), and
// it is where the dependent pointer chase hurts most — the AoS side takes
// two serialized cache misses per sphere where the arena takes one. A
// sequential-sweep reference row is included per dimension; at high d a
// linear scan goes bandwidth-bound and the layouts converge, which the
// row makes visible rather than hiding. Sweeps d in {2, 10, 50, 100}
// over MaxDist / MinDist / SquaredDist and emits
// bench/results/BENCH_kernels.json (hyperdom-bench-v1).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "eval/table_printer.h"
#include "geometry/hypersphere.h"
#include "geometry/point.h"
#include "storage/sphere_store.h"

namespace {

using namespace hyperdom;

// Defeats dead-code elimination without adding a branch to the timed loop.
volatile double g_sink = 0.0;

Hypersphere RandomSphereAt(Rng* rng, size_t dim) {
  Point c(dim);
  for (size_t i = 0; i < dim; ++i) c[i] = rng->Uniform(-100.0, 100.0);
  return Hypersphere(std::move(c), rng->Uniform(0.0, 5.0));
}

// The legacy AoS fixture: one heap block per center, deliberately
// interleaved with ballast allocations (kept alive) the way tree nodes and
// routing entries interleave with data spheres during an index build. A
// freshly looped `push_back` of vectors lands suspiciously contiguous on a
// quiet heap; real indexes are never that lucky.
struct LegacySet {
  std::vector<Hypersphere> spheres;
  std::vector<std::vector<double>> ballast;
};

LegacySet BuildLegacy(uint64_t seed, size_t n, size_t dim) {
  LegacySet set;
  set.spheres.reserve(n);
  set.ballast.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    set.spheres.push_back(RandomSphereAt(&rng, dim));
    set.ballast.emplace_back(16 + i % 113, 1.0);
  }
  return set;
}

SphereStore BuildStore(const LegacySet& set, size_t dim) {
  SphereStore store(dim);
  store.Reserve(set.spheres.size());
  for (const Hypersphere& s : set.spheres) store.Add(s);
  return store;
}

// Fisher-Yates with the repo Rng, so the access order is seeded and
// reproducible across runs and machines.
std::vector<uint32_t> ShuffledOrder(uint64_t seed, size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(seed);
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.UniformU64(i + 1)]);
  }
  return order;
}

// Times `body` (one full pass over n spheres) `reps` times and returns the
// best-of nanoseconds per sphere — min, not mean, so a stray scheduling
// hiccup can't masquerade as a layout effect.
template <typename F>
double BestNanosPerOp(size_t reps, size_t n, F&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    g_sink = g_sink + body();
    const auto t1 = std::chrono::steady_clock::now();
    const double nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    best = std::min(best, nanos / static_cast<double>(n));
  }
  return best;
}

struct KernelRow {
  const char* kernel;
  const char* order;
  double legacy_ns = 0.0;
  double span_ns = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Kernel microbench: columnar store vs legacy AoS",
      "same span arithmetic both sides; the gap is memory layout.\n"
      "shuffled = candidate-evaluation order (the traversal-hot pattern),\n"
      "sequential = full linear sweep (bandwidth-bound at high d)");
  bench::Reporter reporter(argc, argv, "kernel_microbench");

  const size_t reps = reporter.Scaled(9, 3);
  bool layout_win_at_high_dim = true;

  for (size_t dim : {size_t{2}, size_t{10}, size_t{50}, size_t{100}}) {
    // ~64 MB of coordinates per side at d >= 10 so the sweep runs out of
    // cache; capped at 1M spheres so the d = 2 AoS build stays sane.
    const size_t full_n = std::min(size_t{1'000'000}, 8'000'000 / dim);
    const size_t n = reporter.Scaled(full_n, full_n / 50);

    const LegacySet legacy = BuildLegacy(9100 + dim, n, dim);
    const SphereStore store = BuildStore(legacy, dim);
    const std::vector<uint32_t> order = ShuffledOrder(9300 + dim, n);
    Rng qrng(9200 + dim);
    const Hypersphere query = RandomSphereAt(&qrng, dim);
    const SphereView qview = query.view();
    const Point& qcenter = query.center();
    const double* qc = qcenter.data();

    KernelRow rows[4] = {{"maxdist", "shuffled"},
                         {"mindist", "shuffled"},
                         {"sqdist", "shuffled"},
                         {"maxdist", "sequential"}};

    rows[0].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MaxDist(legacy.spheres[j], query);
      return acc;
    });
    rows[0].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MaxDist(store.view(j), qview);
      return acc;
    });

    rows[1].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MinDist(legacy.spheres[j], query);
      return acc;
    });
    rows[1].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MinDist(store.view(j), qview);
      return acc;
    });

    rows[2].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) {
        acc += SquaredDist(legacy.spheres[j].center(), qcenter);
      }
      return acc;
    });
    rows[2].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) {
        acc += SquaredDistSpan(store.center(j), qc, dim);
      }
      return acc;
    });

    rows[3].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (const Hypersphere& s : legacy.spheres) acc += MaxDist(s, query);
      return acc;
    });
    rows[3].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      const uint32_t size = static_cast<uint32_t>(store.size());
      for (uint32_t slot = 0; slot < size; ++slot) {
        acc += MaxDist(store.view(slot), qview);
      }
      return acc;
    });

    char label[32];
    std::snprintf(label, sizeof(label), "d=%zu", dim);
    std::printf("\n-- %s (N = %zu spheres/side) --\n", label, n);
    TablePrinter table(
        {"kernel", "order", "legacy ns/op", "span ns/op", "speedup"});
    std::vector<std::string> json_rows;
    for (KernelRow& row : rows) {
      row.speedup =
          row.span_ns > 0.0 ? row.legacy_ns / row.span_ns : 0.0;
      char legacy_s[32], span_s[32], speedup_s[32];
      std::snprintf(legacy_s, sizeof(legacy_s), "%.2f", row.legacy_ns);
      std::snprintf(span_s, sizeof(span_s), "%.2f", row.span_ns);
      std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", row.speedup);
      table.AddRow({row.kernel, row.order, legacy_s, span_s, speedup_s});

      json_rows.push_back(
          std::string("{\"kernel\": \"") + row.kernel + "\", \"order\": \"" +
          row.order + "\", \"dim\": " + std::to_string(dim) +
          ", \"n\": " + std::to_string(n) +
          ", \"legacy_ns_per_op\": " + FormatDouble(row.legacy_ns) +
          ", \"span_ns_per_op\": " + FormatDouble(row.span_ns) +
          ", \"speedup\": " + FormatDouble(row.speedup) + "}");
      // The refactor's contract covers the traversal-order rows.
      if (dim >= 50 && row.order[0] == 's' && row.order[1] == 'h' &&
          row.speedup < 1.3) {
        layout_win_at_high_dim = false;
      }
    }
    table.Print();
    reporter.RawSweep(label, json_rows);
  }

  std::printf(
      "\nExpected shape: in shuffled (traversal) order the legacy side pays\n"
      "two serialized cache misses per sphere — object, then the Point\n"
      "block behind its heap pointer — where the arena pays one; the\n"
      "contract the refactor claims is speedup >= 1.3x at d >= 50 there.\n"
      "Sequential sweeps converge at high d as both sides saturate memory\n"
      "bandwidth.\n");
  if (!layout_win_at_high_dim) {
    std::fprintf(stderr,
                 "warning: shuffled-order span kernels under 1.3x at "
                 "d >= 50 on this machine\n");
  }
  return reporter.Finish();
}
