// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Span-vs-legacy kernel microbenchmark: the layout half of the columnar
// refactor's claim. Both sides execute the SAME span arithmetic (the
// Hypersphere overloads delegate to it), so any gap measured here is pure
// memory layout: a SphereStore lookup is pointer arithmetic into one
// 64-byte-aligned arena, while the legacy AoS side chases one heap
// pointer per sphere into blocks scattered by interleaved allocations —
// exactly the fragmentation an index build produces.
//
// The primary access pattern is SHUFFLED slot order: that is how the
// traversal hot paths touch spheres (BestKnownList refinement, RkNN
// candidate verification, leaf visits driven by the priority queue), and
// it is where the dependent pointer chase hurts most — the AoS side takes
// two serialized cache misses per sphere where the arena takes one. A
// sequential-sweep reference row is included per dimension; at high d a
// linear scan goes bandwidth-bound and the layouts converge, which the
// row makes visible rather than hiding. Sweeps d in {2, 10, 50, 100}
// over MaxDist / MinDist / SquaredDist and emits
// bench/results/BENCH_kernels.json (hyperdom-bench-v1); pass
// --headline-out=FILE to regenerate the repo-root copy in the same run.
//
// A second sweep family ("batched d=..") measures the SIMD + batching
// tentpole on leaf-scan-shaped work: a ~L2-resident pool of contiguous
// rows visited as shuffled 64-row blocks (the fan-out of a tree leaf).
// Three comparisons per dimension, all computing bit-identical values:
//   * scalar-batched vs dispatched-batched (pure instruction-set effect;
//     the scalar side is geometry/scalar_kernels.cc, compiled with
//     vectorization off even under -march=native),
//   * serial one-at-a-time view kernels vs the fused dispatched batch
//     (call-scheduling effect: one distance per row instead of two, plus
//     amortized per-call overhead),
//   * serial Hyperbola DecideVerdict loop vs DecideVerdictBatch (tier-1
//     batching: the query-to-focus distance hoisted per block).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "dominance/hyperbola.h"
#include "eval/table_printer.h"
#include "geometry/hypersphere.h"
#include "geometry/point.h"
#include "storage/sphere_store.h"

namespace {

using namespace hyperdom;

// Defeats dead-code elimination without adding a branch to the timed loop.
volatile double g_sink = 0.0;

Hypersphere RandomSphereAt(Rng* rng, size_t dim) {
  Point c(dim);
  for (size_t i = 0; i < dim; ++i) c[i] = rng->Uniform(-100.0, 100.0);
  return Hypersphere(std::move(c), rng->Uniform(0.0, 5.0));
}

// The legacy AoS fixture: one heap block per center, deliberately
// interleaved with ballast allocations (kept alive) the way tree nodes and
// routing entries interleave with data spheres during an index build. A
// freshly looped `push_back` of vectors lands suspiciously contiguous on a
// quiet heap; real indexes are never that lucky.
struct LegacySet {
  std::vector<Hypersphere> spheres;
  std::vector<std::vector<double>> ballast;
};

LegacySet BuildLegacy(uint64_t seed, size_t n, size_t dim) {
  LegacySet set;
  set.spheres.reserve(n);
  set.ballast.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    set.spheres.push_back(RandomSphereAt(&rng, dim));
    set.ballast.emplace_back(16 + i % 113, 1.0);
  }
  return set;
}

SphereStore BuildStore(const LegacySet& set, size_t dim) {
  SphereStore store(dim);
  store.Reserve(set.spheres.size());
  for (const Hypersphere& s : set.spheres) store.Add(s);
  return store;
}

// Fisher-Yates with the repo Rng, so the access order is seeded and
// reproducible across runs and machines.
std::vector<uint32_t> ShuffledOrder(uint64_t seed, size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(seed);
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.UniformU64(i + 1)]);
  }
  return order;
}

// Times `body` (one full pass over n spheres) `reps` times and returns the
// best-of nanoseconds per sphere — min, not mean, so a stray scheduling
// hiccup can't masquerade as a layout effect.
template <typename F>
double BestNanosPerOp(size_t reps, size_t n, F&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    g_sink = g_sink + body();
    const auto t1 = std::chrono::steady_clock::now();
    const double nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    best = std::min(best, nanos / static_cast<double>(n));
  }
  return best;
}

struct KernelRow {
  const char* kernel;
  const char* order;
  double legacy_ns = 0.0;
  double span_ns = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Kernel microbench: columnar store vs legacy AoS",
      "same span arithmetic both sides; the gap is memory layout.\n"
      "shuffled = candidate-evaluation order (the traversal-hot pattern),\n"
      "sequential = full linear sweep (bandwidth-bound at high d)");
  bench::Reporter reporter(argc, argv, "kernel_microbench");

  const size_t reps = reporter.Scaled(9, 3);
  bool layout_win_at_high_dim = true;

  for (size_t dim : {size_t{2}, size_t{10}, size_t{50}, size_t{100}}) {
    // ~64 MB of coordinates per side at d >= 10 so the sweep runs out of
    // cache; capped at 1M spheres so the d = 2 AoS build stays sane.
    const size_t full_n = std::min(size_t{1'000'000}, 8'000'000 / dim);
    const size_t n = reporter.Scaled(full_n, full_n / 50);

    const LegacySet legacy = BuildLegacy(9100 + dim, n, dim);
    const SphereStore store = BuildStore(legacy, dim);
    const std::vector<uint32_t> order = ShuffledOrder(9300 + dim, n);
    Rng qrng(9200 + dim);
    const Hypersphere query = RandomSphereAt(&qrng, dim);
    const SphereView qview = query.view();
    const Point& qcenter = query.center();
    const double* qc = qcenter.data();

    KernelRow rows[4] = {{"maxdist", "shuffled"},
                         {"mindist", "shuffled"},
                         {"sqdist", "shuffled"},
                         {"maxdist", "sequential"}};

    rows[0].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MaxDist(legacy.spheres[j], query);
      return acc;
    });
    rows[0].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MaxDist(store.view(j), qview);
      return acc;
    });

    rows[1].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MinDist(legacy.spheres[j], query);
      return acc;
    });
    rows[1].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) acc += MinDist(store.view(j), qview);
      return acc;
    });

    rows[2].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) {
        acc += SquaredDist(legacy.spheres[j].center(), qcenter);
      }
      return acc;
    });
    rows[2].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t j : order) {
        acc += SquaredDistSpan(store.center(j), qc, dim);
      }
      return acc;
    });

    rows[3].legacy_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (const Hypersphere& s : legacy.spheres) acc += MaxDist(s, query);
      return acc;
    });
    rows[3].span_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      const uint32_t size = static_cast<uint32_t>(store.size());
      for (uint32_t slot = 0; slot < size; ++slot) {
        acc += MaxDist(store.view(slot), qview);
      }
      return acc;
    });

    char label[32];
    std::snprintf(label, sizeof(label), "d=%zu", dim);
    std::printf("\n-- %s (N = %zu spheres/side) --\n", label, n);
    TablePrinter table(
        {"kernel", "order", "legacy ns/op", "span ns/op", "speedup"});
    std::vector<std::string> json_rows;
    for (KernelRow& row : rows) {
      row.speedup =
          row.span_ns > 0.0 ? row.legacy_ns / row.span_ns : 0.0;
      char legacy_s[32], span_s[32], speedup_s[32];
      std::snprintf(legacy_s, sizeof(legacy_s), "%.2f", row.legacy_ns);
      std::snprintf(span_s, sizeof(span_s), "%.2f", row.span_ns);
      std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", row.speedup);
      table.AddRow({row.kernel, row.order, legacy_s, span_s, speedup_s});

      json_rows.push_back(
          std::string("{\"kernel\": \"") + row.kernel + "\", \"order\": \"" +
          row.order + "\", \"dim\": " + std::to_string(dim) +
          ", \"n\": " + std::to_string(n) +
          ", \"legacy_ns_per_op\": " + FormatDouble(row.legacy_ns) +
          ", \"span_ns_per_op\": " + FormatDouble(row.span_ns) +
          ", \"speedup\": " + FormatDouble(row.speedup) + "}");
      // The refactor's contract covers the traversal-order rows.
      if (dim >= 50 && row.order[0] == 's' && row.order[1] == 'h' &&
          row.speedup < 1.3) {
        layout_win_at_high_dim = false;
      }
    }
    table.Print();
    reporter.RawSweep(label, json_rows);
  }

  // -- Batched / SIMD sweep family ----------------------------------------
  // Leaf-scan shape: contiguous 64-row blocks (a tree leaf's fan-out)
  // visited in shuffled block order, pool sized ~1.5 MB of coordinates so
  // it lives in L2 — the regime where the kernels are compute-bound and
  // an instruction-set speedup is honestly attributable to SIMD rather
  // than hidden behind memory stalls.
  constexpr size_t kBlock = 64;
  bool simd_win_at_high_dim = true;
  const bool avx2 = std::string(KernelDispatchName()) == "avx2";

  for (size_t dim : {size_t{2}, size_t{10}, size_t{50}, size_t{100}}) {
    const size_t full_blocks =
        std::max(size_t{8}, (196'608 / dim) / kBlock);  // ~1.5 MB of rows
    const size_t n_blocks =
        reporter.Scaled(full_blocks, std::max(size_t{4}, full_blocks / 32));
    const size_t n = n_blocks * kBlock;

    const LegacySet pool_src = BuildLegacy(9500 + dim, n, dim);
    const SphereStore store = BuildStore(pool_src, dim);
    const std::vector<uint32_t> block_order = ShuffledOrder(9600 + dim,
                                                            n_blocks);
    Rng qrng(9700 + dim);
    const Hypersphere query = RandomSphereAt(&qrng, dim);
    const SphereView qview = query.view();
    const double* qc = query.center().data();
    const double qr = query.radius();
    const double* radii = store.radii_data();

    std::vector<double> min_out(kBlock), max_out(kBlock);

    // Serial one-at-a-time baseline: the pre-batching leaf-scan cost — a
    // MaxDist call and a MinDist call per row, two center distances.
    const double serial_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t b : block_order) {
        for (uint32_t j = b * kBlock; j < (b + 1) * kBlock; ++j) {
          const SphereView v = store.view(j);
          acc += MaxDist(v, qview) + MinDist(v, qview);
        }
      }
      return acc;
    });
    // Always-scalar batched (vectorization compiled out of its TU).
    const double scalar_batched_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t b : block_order) {
        scalar_ref::BatchedMinMaxDistSpan(store.center(b * kBlock),
                                          radii + b * kBlock, dim, kBlock, qc,
                                          qr, min_out.data(), max_out.data());
        acc += min_out[0] + max_out[kBlock - 1];
      }
      return acc;
    });
    // Dispatched batched: AVX2 under HYPERDOM_NATIVE, scalar otherwise.
    const double simd_batched_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t b : block_order) {
        BatchedMinMaxDistSpan(store.center(b * kBlock), radii + b * kBlock,
                              dim, kBlock, qc, qr, min_out.data(),
                              max_out.data());
        acc += min_out[0] + max_out[kBlock - 1];
      }
      return acc;
    });

    // Hyperbola tier-1: serial DecideVerdict loop vs DecideVerdictBatch,
    // one (Sa, Sq) pair per block of candidates.
    const HyperbolaCriterion hyperbola;
    const Hypersphere sa = RandomSphereAt(&qrng, dim);
    const SphereView sa_view = sa.view();
    std::vector<SphereView> cand(kBlock);
    std::vector<Verdict> verdicts(kBlock);
    const double hyp_serial_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t b : block_order) {
        for (uint32_t j = b * kBlock; j < (b + 1) * kBlock; ++j) {
          acc += hyperbola.DecideVerdict(sa_view, store.view(j), qview) ==
                         Verdict::kDominates
                     ? 1.0
                     : 0.0;
        }
      }
      return acc;
    });
    const double hyp_batched_ns = BestNanosPerOp(reps, n, [&] {
      double acc = 0.0;
      for (uint32_t b : block_order) {
        for (uint32_t j = 0; j < kBlock; ++j) {
          cand[j] = store.view(b * kBlock + j);
        }
        hyperbola.DecideVerdictBatch(sa_view, cand.data(), kBlock, qview,
                                     verdicts.data());
        acc += verdicts[0] == Verdict::kDominates ? 1.0 : 0.0;
      }
      return acc;
    });

    const double simd_speedup =
        simd_batched_ns > 0.0 ? scalar_batched_ns / simd_batched_ns : 0.0;
    const double batch_speedup =
        simd_batched_ns > 0.0 ? serial_ns / simd_batched_ns : 0.0;
    const double hyp_speedup =
        hyp_batched_ns > 0.0 ? hyp_serial_ns / hyp_batched_ns : 0.0;
    if (avx2 && dim >= 50 && simd_speedup < 2.0) {
      simd_win_at_high_dim = false;
    }

    char label[32];
    std::snprintf(label, sizeof(label), "batched d=%zu", dim);
    std::printf("\n-- %s (N = %zu rows, blocks of %zu, dispatch = %s) --\n",
                label, n, kBlock, KernelDispatchName());
    TablePrinter table({"kernel", "serial ns", "scalar batch ns",
                        "simd batch ns", "simd x", "batch x"});
    char s0[32], s1[32], s2[32], s3[32], s4[32];
    std::snprintf(s0, sizeof(s0), "%.2f", serial_ns);
    std::snprintf(s1, sizeof(s1), "%.2f", scalar_batched_ns);
    std::snprintf(s2, sizeof(s2), "%.2f", simd_batched_ns);
    std::snprintf(s3, sizeof(s3), "%.2fx", simd_speedup);
    std::snprintf(s4, sizeof(s4), "%.2fx", batch_speedup);
    table.AddRow({"minmax", s0, s1, s2, s3, s4});
    std::snprintf(s0, sizeof(s0), "%.2f", hyp_serial_ns);
    std::snprintf(s2, sizeof(s2), "%.2f", hyp_batched_ns);
    std::snprintf(s3, sizeof(s3), "%.2fx", hyp_speedup);
    table.AddRow({"hyperbola_tier1", s0, "-", s2, "-", s3});
    table.Print();

    std::vector<std::string> json_rows;
    json_rows.push_back(
        std::string("{\"kernel\": \"minmax\", \"order\": \"shuffled_blocks\""
                    ", \"dim\": ") +
        std::to_string(dim) + ", \"n\": " + std::to_string(n) +
        ", \"block\": " + std::to_string(kBlock) +
        ", \"serial_ns_per_op\": " + FormatDouble(serial_ns) +
        ", \"scalar_batched_ns_per_op\": " + FormatDouble(scalar_batched_ns) +
        ", \"simd_batched_ns_per_op\": " + FormatDouble(simd_batched_ns) +
        ", \"simd_speedup\": " + FormatDouble(simd_speedup) +
        ", \"batch_speedup\": " + FormatDouble(batch_speedup) +
        ", \"dispatch\": \"" + KernelDispatchName() + "\"}");
    json_rows.push_back(
        std::string("{\"kernel\": \"hyperbola_tier1\", \"order\": "
                    "\"shuffled_blocks\", \"dim\": ") +
        std::to_string(dim) + ", \"n\": " + std::to_string(n) +
        ", \"block\": " + std::to_string(kBlock) +
        ", \"serial_ns_per_op\": " + FormatDouble(hyp_serial_ns) +
        ", \"batched_ns_per_op\": " + FormatDouble(hyp_batched_ns) +
        ", \"batch_speedup\": " + FormatDouble(hyp_speedup) +
        ", \"dispatch\": \"" + KernelDispatchName() + "\"}");
    reporter.RawSweep(label, json_rows);
  }

  std::printf(
      "\nExpected shape: in shuffled (traversal) order the legacy side pays\n"
      "two serialized cache misses per sphere — object, then the Point\n"
      "block behind its heap pointer — where the arena pays one; the\n"
      "contract the refactor claims is speedup >= 1.3x at d >= 50 there.\n"
      "Sequential sweeps converge at high d as both sides saturate memory\n"
      "bandwidth.\n");
  if (!layout_win_at_high_dim) {
    std::fprintf(stderr,
                 "warning: shuffled-order span kernels under 1.3x at "
                 "d >= 50 on this machine\n");
  }
  if (!simd_win_at_high_dim) {
    std::fprintf(stderr,
                 "warning: batched AVX2 kernels under 2x over the scalar "
                 "baseline at d >= 50 on this machine\n");
  }
  return reporter.Finish();
}
