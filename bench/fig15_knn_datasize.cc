// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 15** (a: query time, b: precision): effect of the
// data size N in {20k, 60k, 100k, 140k, 180k} for kNN queries (synthetic,
// d = 4, mu = 10, k = 10).

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 15: kNN — effect of data size N",
                     "d = 4, mu = 10, k = 10, SS-tree");
  bench::Reporter reporter(argc, argv, "fig15_knn_datasize");

  for (size_t n : {20'000, 60'000, 100'000, 140'000, 180'000}) {
    SyntheticSpec spec;
    spec.n = reporter.Scaled(n, n / 20);
    spec.dim = 4;
    spec.radius_mean = 10.0;
    // Tenfold coordinate scale; see fig13_knn_radius.cc and EXPERIMENTS.md.
    spec.center_mean = 1000.0;
    spec.center_stddev = 250.0;
    spec.seed = 15'000;
    const auto data = GenerateSynthetic(spec);
    KnnExperimentConfig config;
    config.k = 10;
    config.num_queries = reporter.Scaled(5, 2);
    config.seed = 15'100;
    config.threads = reporter.threads();
    const auto rows = RunKnnExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "N = %zuk", n / 1000);
    reporter.KnnSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 15): query time grows with N; precision\n"
      "is not significantly affected by N.\n");
  return reporter.Finish();
}
