// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Ablation: SS-tree split policy — White & Jain's variance cut vs the
// SS+-style 2-means split ([20], cited by the paper as outperforming the
// original on high-dimensional similarity search). Measures build time,
// bounding tightness (root-normalized sum of squared node radii) and
// dominance-pruned kNN query time; answers are identical by construction.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "query/knn.h"

namespace hyperdom {
namespace {

double RadiusMass(const SsTree& tree) {
  double total = 0.0;
  std::vector<const SsTreeNode*> stack = {tree.root()};
  while (!stack.empty()) {
    const SsTreeNode* node = stack.back();
    stack.pop_back();
    const double r = node->bounding_sphere().radius();
    total += r * r;
    if (!node->is_leaf()) {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  return total;
}

}  // namespace
}  // namespace hyperdom

int main() {
  using namespace hyperdom;
  bench::PrintHeader("Ablation: SS-tree split policy",
                     "variance cut (SS-tree) vs 2-means (SS+-style)");

  for (size_t d : {2, 8, 16}) {
    SyntheticSpec spec;
    spec.n = 50'000;
    spec.dim = d;
    spec.radius_mean = 10.0;
    spec.center_mean = 1000.0;
    spec.center_stddev = 250.0;
    spec.seed = 0x5B117 + d;
    const auto data = GenerateSynthetic(spec);
    const auto queries = MakeKnnQueries(data, 8, 0x5B18);
    const HyperbolaCriterion exact;
    KnnOptions options;
    options.k = 10;

    std::printf("\n-- d = %zu --\n", d);
    TablePrinter table({"policy", "build", "sum r^2 (norm.)", "query time",
                        "entries accessed"});
    double baseline_mass = 0.0;
    for (SsTreeSplitPolicy policy :
         {SsTreeSplitPolicy::kVarianceCut, SsTreeSplitPolicy::kTwoMeans}) {
      SsTreeOptions tree_options;
      tree_options.split_policy = policy;
      Stopwatch watch;
      SsTree tree(d, tree_options);
      if (Status st = tree.BulkLoad(data); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      const double build_s = watch.ElapsedSeconds();
      const double mass = RadiusMass(tree);
      if (policy == SsTreeSplitPolicy::kVarianceCut) baseline_mass = mass;

      KnnSearcher searcher(&exact, options);
      double query_ns = 0.0;
      uint64_t accessed = 0;
      for (const auto& sq : queries) {
        watch.Restart();
        const KnnResult result = searcher.Search(tree, sq);
        query_ns += static_cast<double>(watch.ElapsedNs());
        accessed += result.stats.entries_accessed;
      }
      char build_str[32], mass_str[32], query_str[32];
      std::snprintf(build_str, sizeof(build_str), "%.2f s", build_s);
      std::snprintf(mass_str, sizeof(mass_str), "%.2f",
                    mass / baseline_mass);
      std::snprintf(query_str, sizeof(query_str), "%.3f ms",
                    query_ns * 1e-6 / static_cast<double>(queries.size()));
      table.AddRow({policy == SsTreeSplitPolicy::kVarianceCut ? "variance"
                                                              : "2-means",
                    build_str, mass_str, query_str,
                    std::to_string(accessed / queries.size())});
    }
    table.Print();
  }
  // Second ablation: bounding policy (centroid vs Welzl min-ball) and
  // build path (repeated insertion vs STR packing), d = 8.
  {
    SyntheticSpec spec;
    spec.n = 50'000;
    spec.dim = 8;
    spec.radius_mean = 10.0;
    spec.center_mean = 1000.0;
    spec.center_stddev = 250.0;
    spec.seed = 0x5B119;
    const auto data = GenerateSynthetic(spec);
    const auto queries = MakeKnnQueries(data, 8, 0x5B1A);
    const HyperbolaCriterion exact;
    KnnOptions options;
    options.k = 10;

    std::printf("\n-- bounding policy and build path (d = 8) --\n");
    TablePrinter table({"configuration", "build", "query time",
                        "entries accessed"});
    struct Config {
      const char* label;
      SsTreeBoundingPolicy bounding;
      bool str;
    };
    const Config configs[] = {
        {"centroid, insert", SsTreeBoundingPolicy::kCentroid, false},
        {"min-ball, insert", SsTreeBoundingPolicy::kMinBall, false},
        {"centroid, STR", SsTreeBoundingPolicy::kCentroid, true},
        {"min-ball, STR", SsTreeBoundingPolicy::kMinBall, true},
    };
    for (const Config& config : configs) {
      SsTreeOptions tree_options;
      tree_options.bounding_policy = config.bounding;
      Stopwatch watch;
      SsTree tree(spec.dim, tree_options);
      const Status st =
          config.str ? tree.BulkLoadStr(data) : tree.BulkLoad(data);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      const double build_s = watch.ElapsedSeconds();
      KnnSearcher searcher(&exact, options);
      double query_ns = 0.0;
      uint64_t accessed = 0;
      for (const auto& sq : queries) {
        watch.Restart();
        const KnnResult result = searcher.Search(tree, sq);
        query_ns += static_cast<double>(watch.ElapsedNs());
        accessed += result.stats.entries_accessed;
      }
      char build_str[32], query_str[32];
      std::snprintf(build_str, sizeof(build_str), "%.2f s", build_s);
      std::snprintf(query_str, sizeof(query_str), "%.3f ms",
                    query_ns * 1e-6 / static_cast<double>(queries.size()));
      table.AddRow({config.label, build_str, query_str,
                    std::to_string(accessed / queries.size())});
    }
    table.Print();
  }

  std::printf(
      "\nReading: at comparable build cost the 2-means split yields\n"
      "modestly tighter node spheres (lower normalized r^2 mass) and\n"
      "slightly fewer accessed entries per query. STR packing builds an\n"
      "order of magnitude faster than repeated insertion; the Welzl\n"
      "min-ball bound trades build time for tighter regions.\n");
  return 0;
}
