// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 12**: execution time under the four center/radius
// distribution combinations G-G, G-U, U-G, U-U (paper Section 7.1,
// "Additional Experiments"): first letter = coordinate distribution,
// second = radius distribution; Gaussian(100, 25) vs Uniform[0, 200].

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 12: center/radius distribution combinations",
                     "N = 100k, d = 4, mu = 10 (Gaussian radii)");
  bench::Reporter reporter(argc, argv, "fig12_distributions");

  const struct {
    const char* label;
    Distribution centers;
    Distribution radii;
  } combos[] = {
      {"G-G", Distribution::kGaussian, Distribution::kGaussian},
      {"G-U", Distribution::kGaussian, Distribution::kUniform},
      {"U-G", Distribution::kUniform, Distribution::kGaussian},
      {"U-U", Distribution::kUniform, Distribution::kUniform},
  };

  for (const auto& combo : combos) {
    SyntheticSpec spec;
    spec.n = reporter.Scaled(100'000, 5'000);
    spec.dim = 4;
    spec.radius_mean = 10.0;
    spec.center_distribution = combo.centers;
    spec.radius_distribution = combo.radii;
    spec.seed = 12'000;
    const auto data = GenerateSynthetic(spec);
    DominanceExperimentConfig config;
    config.workload_size = reporter.Scaled(config.workload_size, 200);
    if (reporter.smoke()) config.repeats = 1;
    config.seed = 12'100;
    const auto rows = RunDominanceExperiment(data, config);
    reporter.DominanceSweep(combo.label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 12): the distribution mix barely moves\n"
      "any criterion; Hyperbola and Trigonometric mildly favor Gaussian\n"
      "data, the rest are flat.\n");
  return reporter.Finish();
}
