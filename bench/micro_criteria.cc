// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// google-benchmark microbenchmarks: per-call cost of each dominance
// criterion as a function of the dimensionality, plus the geometric
// kernels (distance, quartic, frame reduction) that Hyperbola is built on.

#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "dominance/criterion.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "geometry/focal_frame.h"
#include "geometry/polynomial.h"

namespace hyperdom {
namespace {

std::vector<DominanceQuery> WorkloadForDim(size_t dim) {
  SyntheticSpec spec;
  spec.n = 2048;
  spec.dim = dim;
  spec.radius_mean = 10.0;
  spec.seed = 0xBE7C4 + dim;
  return MakeDominanceWorkload(GenerateSynthetic(spec), 1024, 0xF00D + dim);
}

void BM_Criterion(benchmark::State& state, CriterionKind kind) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto workload = WorkloadForDim(dim);
  const auto criterion = MakeCriterion(kind);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = workload[i++ & 1023];
    benchmark::DoNotOptimize(criterion->Dominates(q.sa, q.sb, q.sq));
  }
  state.SetLabel("d=" + std::to_string(dim));
}

void BM_Dist(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto workload = WorkloadForDim(dim);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = workload[i++ & 1023];
    benchmark::DoNotOptimize(Dist(q.sa.center(), q.sb.center()));
  }
}

void BM_FocalFrame(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto workload = WorkloadForDim(dim);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = workload[i++ & 1023];
    benchmark::DoNotOptimize(
        BuildFocalFrame(q.sa.center(), q.sb.center(), q.sq.center()));
  }
}

void BM_SolveQuartic(benchmark::State& state) {
  // A representative dominance quartic (from a real Figure-9 query).
  size_t i = 0;
  for (auto _ : state) {
    const double jitter = static_cast<double>(i++ & 15);
    benchmark::DoNotOptimize(SolveQuartic(
        -3.1e9, -8.2e8, 2.4e8 + jitter, 9.1e6, -4.2e4));
  }
}

BENCHMARK_CAPTURE(BM_Criterion, MinMax, CriterionKind::kMinMax)
    ->Arg(2)->Arg(4)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK_CAPTURE(BM_Criterion, MBR, CriterionKind::kMbr)
    ->Arg(2)->Arg(4)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK_CAPTURE(BM_Criterion, GP, CriterionKind::kGp)
    ->Arg(2)->Arg(4)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK_CAPTURE(BM_Criterion, Trigonometric, CriterionKind::kTrigonometric)
    ->Arg(2)->Arg(4)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK_CAPTURE(BM_Criterion, Hyperbola, CriterionKind::kHyperbola)
    ->Arg(2)->Arg(4)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK(BM_Dist)->Arg(4)->Arg(100);
BENCHMARK(BM_FocalFrame)->Arg(4)->Arg(100);
BENCHMARK(BM_SolveQuartic);

}  // namespace
}  // namespace hyperdom

BENCHMARK_MAIN();
