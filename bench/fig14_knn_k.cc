// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 14** (a: query time, b: precision): effect of k in
// {1, 10, 20, 30} for kNN queries (synthetic, N = 100k, d = 4, mu = 10).

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 14: kNN — effect of k",
                     "N = 100k, d = 4, mu = 10, SS-tree");
  bench::Reporter reporter(argc, argv, "fig14_knn_k");

  SyntheticSpec spec;
  spec.n = reporter.Scaled(100'000, 5'000);
  spec.dim = 4;
  spec.radius_mean = 10.0;
  // Tenfold coordinate scale; see fig13_knn_radius.cc and EXPERIMENTS.md.
  spec.center_mean = 1000.0;
  spec.center_stddev = 250.0;
  spec.seed = 14'000;
  const auto data = GenerateSynthetic(spec);

  for (size_t k : {1, 10, 20, 30}) {
    KnnExperimentConfig config;
    config.k = k;
    config.num_queries = reporter.Scaled(5, 2);
    config.seed = 14'100;
    config.threads = reporter.threads();
    const auto rows = RunKnnExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "k = %zu", k);
    reporter.KnnSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 14): query time grows with k (a longer\n"
      "best-known list is maintained); k has no clear effect on precision.\n");
  return reporter.Finish();
}
