// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 8** (a: execution time, b: precision, c: recall):
// effects of the average radius mu in {5, 10, 50, 100} for the dominance
// problem on the NBA dataset (17,265 x 17; stand-in per DESIGN.md).
// Protocol: 10,000 random triples, averaged over 10 runs, Hyperbola as
// ground truth.

#include "bench_util.h"
#include "data/datasets.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 8: effect of average radius mu (NBA)",
                     "10,000 random triples x 10 runs per mu");
  bench::Reporter reporter(argc, argv, "fig08_radius_nba");

  const auto points = LoadRealStandIn(RealDataset::kNba);
  for (double mu : {5.0, 10.0, 50.0, 100.0}) {
    const auto data =
        MakeUncertain(points, mu, /*sigma_ratio=*/0.25, /*seed=*/8001);
    DominanceExperimentConfig config;
    config.workload_size = reporter.Scaled(config.workload_size, 200);
    if (reporter.smoke()) config.repeats = 1;
    config.seed = 8801;
    const auto rows = RunDominanceExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "mu = %.0f", mu);
    reporter.DominanceSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 8): MinMax fastest, then GP, Hyperbola,\n"
      "MBR, Trigonometric; precision 100%% for all but Trigonometric (which\n"
      "degrades as mu grows); recall 100%% only for Hyperbola and\n"
      "Trigonometric, degrading with mu for the rest.\n");
  return reporter.Finish();
}
