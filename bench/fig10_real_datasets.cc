// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 10** (a: execution time, b: precision, c: recall):
// the dominance problem on the four real datasets — NBA (17,265 x 17),
// Forest (82,012 x 10), Color (68,040 x 9), Texture (68,040 x 16) — with
// the default radius mu = 10 (stand-ins per DESIGN.md).

#include "bench_util.h"
#include "data/datasets.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 10: real datasets",
                     "mu = 10; 10,000 random triples x 10 runs per dataset");
  bench::Reporter reporter(argc, argv, "fig10_real_datasets");

  for (RealDataset dataset : AllRealDatasets()) {
    const RealDatasetInfo info = GetRealDatasetInfo(dataset);
    const auto points = LoadRealStandIn(dataset);
    const auto data =
        MakeUncertain(points, /*radius_mean=*/10.0, /*sigma_ratio=*/0.25,
                      /*seed=*/10'000 + info.dim);
    DominanceExperimentConfig config;
    config.workload_size = reporter.Scaled(config.workload_size, 200);
    if (reporter.smoke()) config.repeats = 1;
    config.seed = 10'100 + info.dim;
    const auto rows = RunDominanceExperiment(data, config);
    char label[96];
    std::snprintf(label, sizeof(label), "%s (N=%zu, d=%zu)",
                  info.name.c_str(), info.n, info.dim);
    reporter.DominanceSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 10): the synthetic-data pattern holds on\n"
      "all real datasets — MinMax fastest, then GP, Hyperbola, MBR,\n"
      "Trigonometric; Hyperbola alone has 100%% precision and recall.\n");
  return reporter.Finish();
}
