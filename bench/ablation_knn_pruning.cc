// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Ablation: kNN pruning-mode semantics (DESIGN.md Section 3b).
// The paper's Section-6 pseudocode discards case-2 entries against the
// *interim* Sk (kEager); Definition 2 filters by the *final* Sk. This bench
// quantifies the recall the verbatim pseudocode loses and the cost of the
// deferred re-check that restores exactness.

#include <cstdio>
#include <unordered_set>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "query/knn.h"

int main() {
  using namespace hyperdom;
  bench::PrintHeader("Ablation: kNN pruning mode (deferred vs eager)",
                     "N = 50k, d = 4, mu = 10, Hyperbola criterion");

  SyntheticSpec spec;
  spec.n = 50'000;
  spec.dim = 4;
  spec.radius_mean = 10.0;
  spec.seed = 0xAB99;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(spec.dim);
  if (Status st = tree.BulkLoad(data); !st.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const auto queries = MakeKnnQueries(data, 10, 0xABAA);
  const HyperbolaCriterion hyperbola;

  TablePrinter table({"strategy", "k", "mode", "query time", "recall",
                      "precision", "dominance checks"});
  for (SearchStrategy strategy :
       {SearchStrategy::kBestFirst, SearchStrategy::kDepthFirst}) {
    for (size_t k : {1, 10, 30}) {
      // Exact ground truth (Definition 2).
      std::vector<std::unordered_set<uint64_t>> truth;
      for (const auto& sq : queries) {
        std::unordered_set<uint64_t> ids;
        for (const auto& e : KnnLinearScan(data, sq, k, hyperbola).answers) {
          ids.insert(e.id);
        }
        truth.push_back(std::move(ids));
      }
      for (KnnPruningMode mode :
           {KnnPruningMode::kDeferred, KnnPruningMode::kEager}) {
        KnnOptions options;
        options.k = k;
        options.strategy = strategy;
        options.pruning_mode = mode;
        KnnSearcher searcher(&hyperbola, options);

        uint64_t returned = 0, correct = 0, expected = 0, checks = 0;
        Stopwatch watch;
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const KnnResult result = searcher.Search(tree, queries[qi]);
          returned += result.answers.size();
          expected += truth[qi].size();
          checks += result.stats.dominance_checks;
          for (const auto& e : result.answers) {
            if (truth[qi].count(e.id) > 0) ++correct;
          }
        }
        const double ms = static_cast<double>(watch.ElapsedNs()) * 1e-6 /
                          static_cast<double>(queries.size());
        char time_s[32], recall_s[32], precision_s[32];
        std::snprintf(time_s, sizeof(time_s), "%.3f ms", ms);
        std::snprintf(recall_s, sizeof(recall_s), "%.2f%%",
                      100.0 * static_cast<double>(correct) /
                          static_cast<double>(expected));
        std::snprintf(precision_s, sizeof(precision_s), "%.2f%%",
                      returned == 0 ? 100.0
                                    : 100.0 * static_cast<double>(correct) /
                                          static_cast<double>(returned));
        table.AddRow({strategy == SearchStrategy::kBestFirst ? "HS" : "DF",
                      std::to_string(k),
                      mode == KnnPruningMode::kDeferred ? "deferred" : "eager",
                      time_s, recall_s, precision_s,
                      std::to_string(checks / queries.size())});
      }
    }
  }
  table.Print();
  std::printf(
      "\nReading: eager mode (the paper's pseudocode verbatim) loses recall\n"
      "because interim-Sk dominance does not imply final-Sk dominance;\n"
      "deferred mode restores the exact Definition-2 answer for a modest\n"
      "number of extra dominance checks.\n");
  return 0;
}
