// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Table 1** of the paper: the correct / sound / efficient
// matrix of the five decision criteria, verified *empirically*:
//   * correctness is refuted by any false positive against the numeric
//     oracle over a large randomized + adversarial workload;
//   * soundness is refuted by any false negative;
//   * efficiency is checked by confirming near-linear growth of the
//     measured time with the dimensionality.
// Borderline queries (|MDD margin| < 1e-6) are skipped so floating-point
// ties cannot masquerade as semantic violations.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/generator.h"
#include "dominance/numeric_oracle.h"
#include "eval/measures.h"
#include "eval/workload.h"

namespace hyperdom {
namespace {

// Random triples plus adversarial families that historically break weak
// criteria: the Lemma-3 family (big query sphere on the ca side of the
// bisector), the Lemma-5 diagonal family (MBR corners touch), and the
// Lemma-11 counterexample neighborhood (Trigonometric false positives).
std::vector<DominanceQuery> BuildWorkload() {
  std::vector<DominanceQuery> workload;
  for (size_t dim : {2u, 4u, 8u}) {
    SyntheticSpec spec;
    spec.n = 4000;
    spec.dim = dim;
    spec.seed = 77 + dim;
    for (double mu : {5.0, 10.0, 50.0}) {
      spec.radius_mean = mu;
      const auto data = GenerateSynthetic(spec);
      auto part = MakeDominanceWorkload(data, 4000, 1000 + dim);
      workload.insert(workload.end(), part.begin(), part.end());
    }
  }
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    // Lemma-3 family: point objects, fat query sphere near the bisector.
    const double offset = rng.Uniform(1.0, 10.0);
    Point ca = {0.0, offset};
    Point cb = {0.0, -offset};
    Point cq = {rng.Uniform(-40.0, 40.0), rng.Uniform(0.5, 30.0)};
    workload.push_back(DominanceQuery{Hypersphere(ca, 0.0),
                                      Hypersphere(cb, 0.0),
                                      Hypersphere(cq, rng.Uniform(0.0, 20.0))});
  }
  for (int i = 0; i < 3000; ++i) {
    // Lemma-5 family: equal radii along a diagonal, MBRs touching.
    const double r = rng.Uniform(0.5, 5.0);
    const double delta = rng.Uniform(0.001, 0.5);
    Point cq = {0.0, 0.0};
    Point ca = {4.0 * r / std::sqrt(2.0), 4.0 * r / std::sqrt(2.0)};
    Point cb = {(6.0 * r + delta) / std::sqrt(2.0),
                (6.0 * r + delta) / std::sqrt(2.0)};
    workload.push_back(DominanceQuery{Hypersphere(ca, r), Hypersphere(cb, r),
                                      Hypersphere(cq, r)});
  }
  for (int i = 0; i < 3000; ++i) {
    // Lemma-11 neighborhood.
    auto jit = [&](double v) { return v + rng.Uniform(-1.0, 1.0); };
    Point ca = {jit(20.0), jit(8.0)};
    Point cb = {jit(8.0), jit(10.0)};
    Point cq = {jit(16.0), jit(16.0)};
    workload.push_back(DominanceQuery{Hypersphere(ca, 0.4),
                                      Hypersphere(cb, 0.3),
                                      Hypersphere(cq, 0.3)});
  }
  return workload;
}

}  // namespace
}  // namespace hyperdom

int main() {
  using namespace hyperdom;
  bench::PrintHeader("Table 1: summary of decision criteria",
                     "empirical correct/sound verdicts vs the numeric "
                     "oracle; efficiency vs dimensionality scaling");

  const std::vector<DominanceQuery> workload = BuildWorkload();
  std::vector<bool> truth(workload.size());
  std::vector<double> margins(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const auto& q = workload[i];
    const double rab = q.sa.radius() + q.sb.radius();
    margins[i] = MinDistanceDifference(q.sa, q.sb, q.sq) - rab;
    truth[i] = !Overlaps(q.sa, q.sb) && margins[i] > 0.0;
  }

  TablePrinter table(
      {"criterion", "correct?", "sound?", "efficient?", "fp", "fn",
       "time d=4", "time d=64"});

  // Efficiency probe: time per query at d=4 vs d=64 (an O(d) criterion
  // should grow ~linearly, i.e. well under the 2^d blowup of corner-based
  // methods).
  SyntheticSpec spec4;
  spec4.n = 4000;
  spec4.dim = 4;
  spec4.seed = 11;
  SyntheticSpec spec64 = spec4;
  spec64.dim = 64;
  spec64.seed = 12;
  const auto data4 = GenerateSynthetic(spec4);
  const auto data64 = GenerateSynthetic(spec64);
  const auto wl4 = MakeDominanceWorkload(data4, 4000, 21);
  const auto wl64 = MakeDominanceWorkload(data64, 4000, 22);

  for (CriterionKind kind : PaperCriteria()) {
    const auto criterion = MakeCriterion(kind);
    uint64_t fp = 0, fn = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      if (std::fabs(margins[i]) < 1e-6) continue;  // borderline: skip
      const bool predicted = criterion->Dominates(
          workload[i].sa, workload[i].sb, workload[i].sq);
      if (predicted && !truth[i]) ++fp;
      if (!predicted && truth[i]) ++fn;
    }
    const double t4 = TimeCriterionNanos(*criterion, wl4, 3);
    const double t64 = TimeCriterionNanos(*criterion, wl64, 3);
    // O(d) check: 16x the dimensions should cost well under 100x the time.
    const bool efficient = t64 < 100.0 * t4;
    table.AddRow({std::string(criterion->name()), fp == 0 ? "Yes" : "No",
                  fn == 0 ? "Yes" : "No", efficient ? "Yes" : "No",
                  std::to_string(fp), std::to_string(fn),
                  FormatDuration(t4), FormatDuration(t64)});
  }
  table.Print();
  std::printf(
      "\nExpected (paper Table 1): MinMax/MBR/GP correct but not sound;\n"
      "Trigonometric sound but not correct; Hyperbola correct AND sound;\n"
      "all five efficient.\n");
  return 0;
}
