// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shard-count sweep of the scatter-gather engine (src/shard/): the same
// seeded kNN workload (N = 100k, d = 4, k = 10, Hyperbola) run against a
// ShardedStore at K = 1/2/4/8 hash shards, each scattered over a pool of
// K worker threads, versus the single unsharded SS-tree it partitions.
// Besides throughput the bench re-checks the engine's core contract on
// every query: the merged answer must be bit-identical (ids, order,
// coordinate bits) to the unsharded searcher's, whatever K is. The
// sweep exits non-zero on any divergence, so CI catches a broken merge
// even when nobody reads the numbers.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/generator.h"
#include "eval/table_printer.h"
#include "eval/workload.h"
#include "exec/thread_pool.h"
#include "query/knn.h"
#include "shard/sharded_query.h"

namespace {

using namespace hyperdom;

bool SameBits(const Hypersphere& a, const Hypersphere& b) {
  if (a.dim() != b.dim()) return false;
  const double ra = a.radius();
  const double rb = b.radius();
  if (std::memcmp(&ra, &rb, sizeof(double)) != 0) return false;
  return std::memcmp(a.center().data(), b.center().data(),
                     a.dim() * sizeof(double)) == 0;
}

bool IdenticalAnswers(const KnnResult& a, const KnnResult& b) {
  if (a.completeness != b.completeness) return false;
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].id != b.answers[i].id) return false;
    if (!SameBits(a.answers[i].sphere, b.answers[i].sphere)) return false;
  }
  return true;
}

double NowMs() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Sharded kNN shard-count scaling",
      "N = 100k, d = 4, k = 10, Hyperbola, 2k queries, K hash shards of "
      "SS-trees vs one unsharded SS-tree");
  bench::Reporter reporter(argc, argv, "shard_knn_scaling");

  SyntheticSpec spec;
  spec.n = reporter.Scaled(100'000, 5'000);
  spec.dim = 4;
  spec.radius_mean = 10.0;
  spec.center_mean = 1000.0;
  spec.center_stddev = 250.0;
  spec.seed = 19'000;
  const auto data = GenerateSynthetic(spec);

  SsTree tree(spec.dim);
  const Status st = tree.BulkLoadStr(data);
  (void)st;  // generated data is well-formed

  const std::vector<Hypersphere> queries =
      MakeKnnQueries(data, reporter.Scaled(2'000, 100), 19'100);
  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);
  KnnOptions options;
  options.k = 10;

  // Unsharded baseline: one searcher over the whole tree.
  const KnnSearcher searcher(criterion.get(), options);
  std::vector<KnnResult> expected;
  expected.reserve(queries.size());
  const double baseline_start = NowMs();
  for (const Hypersphere& sq : queries) {
    expected.push_back(searcher.Search(tree, sq));
  }
  const double baseline_ms = NowMs() - baseline_start;

  std::printf("\n-- shard-count scaling (%zu queries, %u cores) --\n",
              queries.size(), std::thread::hardware_concurrency());
  TablePrinter table({"shards", "build time", "total time", "time/query",
                      "speedup vs unsharded", "identical"});
  std::vector<std::string> rows;
  int divergences = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    shard::ShardingOptions sharding;
    sharding.shards = shards;

    const double build_start = NowMs();
    shard::ShardedStore store;
    const Status build = shard::ShardedStore::Build(data, sharding, &store);
    const double build_ms = NowMs() - build_start;
    if (!build.ok()) {
      std::fprintf(stderr, "error: shard build failed at K=%zu: %s\n",
                   shards, build.ToString().c_str());
      return 1;
    }

    ThreadPool pool(shards);
    ThreadPool* pool_ptr = shards > 1 ? &pool : nullptr;
    bool identical = true;
    const double start = NowMs();
    for (size_t q = 0; q < queries.size(); ++q) {
      Result<KnnResult> got =
          shard::ShardedKnn(store, queries[q], *criterion, options, pool_ptr);
      if (!got.ok() || !IdenticalAnswers(*got, expected[q])) {
        identical = false;
      }
    }
    const double total_ms = NowMs() - start;
    const double per_query_ms =
        total_ms / static_cast<double>(queries.size());
    const double speedup = total_ms > 0.0 ? baseline_ms / total_ms : 0.0;
    if (!identical) ++divergences;

    char build_s[32], total[32], per_query[32], speedup_s[32];
    std::snprintf(build_s, sizeof(build_s), "%.1f ms", build_ms);
    std::snprintf(total, sizeof(total), "%.1f ms", total_ms);
    std::snprintf(per_query, sizeof(per_query), "%.4f ms", per_query_ms);
    std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", speedup);
    table.AddRow({std::to_string(shards), build_s, total, per_query,
                  speedup_s, identical ? "yes" : "NO"});

    rows.push_back(
        "{\"shards\": " + std::to_string(shards) +
        ", \"build_ms\": " + FormatDouble(build_ms) +
        ", \"millis_total\": " + FormatDouble(total_ms) +
        ", \"millis_per_query\": " + FormatDouble(per_query_ms) +
        ", \"speedup_vs_unsharded\": " + FormatDouble(speedup) +
        ", \"identical_to_unsharded\": " + (identical ? "true" : "false") +
        "}");
  }
  table.Print();
  reporter.RawSweep("shard-count scaling", rows);

  if (divergences > 0) {
    std::fprintf(stderr,
                 "error: %d shard count(s) diverged from the unsharded "
                 "answers — the merge invariant is broken\n",
                 divergences);
    return 1;
  }

  std::printf(
      "\nExpected shape: K = 1 tracks the unsharded baseline (one extra\n"
      "merge per query); speedup grows with K up to the physical core\n"
      "count (this container reports %u) as shards traverse in parallel,\n"
      "while per-shard trees are smaller but collectively visit more\n"
      "nodes than one global tree. The 'identical' column must read yes\n"
      "everywhere — the scatter-gather merge contract.\n",
      std::thread::hardware_concurrency());
  return reporter.Finish();
}
