// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Mutation-path benchmark for the mutable SS-tree: pure insert
// throughput, then closed-loop mixed workloads at 0% / 10% / 50% write
// ratios — reader threads pin epoch-protected views for every kNN while
// writers insert/remove through the serialized mutation path. Reports
// mutation and query QPS, query p50/p99, and the worst epoch lag
// observed (how far the slowest pinned reader trailed the writer).
//
// Emits bench/results/BENCH_mutation.json via --json-out; --smoke
// shrinks the workload for the tier-1 smoke test.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "data/generator.h"
#include "dominance/criterion.h"
#include "eval/table_printer.h"
#include "eval/workload.h"
#include "index/mutable_ss_tree.h"
#include "query/mut_query.h"
#include "storage/epoch.h"

namespace {

using namespace hyperdom;

struct WorkerTally {
  std::vector<double> query_micros;
  uint64_t mutations = 0;
  uint64_t queries = 0;
  uint64_t mutation_errors = 0;
};

struct MixResult {
  double write_ratio = 0.0;
  uint64_t mutations = 0;
  uint64_t queries = 0;
  double mutation_qps = 0.0;
  double query_qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  uint64_t epoch_lag_max = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

// One closed-loop worker: per op, a mutation with probability
// `write_ratio` (alternating insert-heavy with occasional removes of its
// own rows), otherwise a kNN through a pinned view.
void WorkerLoop(MutableSsTree* tree, const DominanceCriterion* criterion,
                const std::vector<Hypersphere>& queries, size_t ops,
                double write_ratio, uint64_t seed, uint64_t id_base,
                std::atomic<uint64_t>* lag_max, WorkerTally* tally) {
  Rng rng(seed);
  KnnOptions options;
  options.k = 10;
  std::vector<uint64_t> mine;  // ids this worker inserted and still owns
  uint64_t next_id = id_base;
  for (size_t i = 0; i < ops; ++i) {
    const bool write =
        write_ratio > 0.0 &&
        rng.UniformU64(1'000'000) <
            static_cast<uint64_t>(write_ratio * 1'000'000.0);
    if (write) {
      Status applied;
      if (!mine.empty() && rng.UniformU64(4) == 0) {
        applied = tree->Remove(mine.back());
        if (applied.ok()) mine.pop_back();
      } else {
        applied = tree->Insert(
            Hypersphere({rng.Gaussian(1000.0, 250.0),
                         rng.Gaussian(1000.0, 250.0),
                         rng.Gaussian(1000.0, 250.0)},
                        10.0),
            next_id);
        if (applied.ok()) mine.push_back(next_id);
        ++next_id;
      }
      if (applied.ok()) {
        ++tally->mutations;
      } else {
        ++tally->mutation_errors;  // kConflict during a compaction build
      }
      uint64_t lag = EpochManager::Global().EpochLag();
      uint64_t seen = lag_max->load(std::memory_order_relaxed);
      while (lag > seen &&
             !lag_max->compare_exchange_weak(seen, lag,
                                             std::memory_order_relaxed)) {
      }
    } else {
      const auto start = std::chrono::steady_clock::now();
      const auto answer = MutableKnn(*tree, *criterion, options,
                                     queries[(seed + i) % queries.size()]);
      const auto stop = std::chrono::steady_clock::now();
      (void)answer;
      tally->query_micros.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
      ++tally->queries;
    }
  }
}

MixResult RunMix(MutableSsTree* tree, const DominanceCriterion* criterion,
                 const std::vector<Hypersphere>& queries, size_t threads,
                 size_t ops_per_thread, double write_ratio,
                 uint64_t id_base) {
  std::vector<WorkerTally> tallies(threads);
  std::atomic<uint64_t> lag_max{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(WorkerLoop, tree, criterion, std::cref(queries),
                      ops_per_thread, write_ratio, 0xB0B0 + 131 * t,
                      id_base + (t << 32), &lag_max, &tallies[t]);
  }
  for (auto& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  MixResult r;
  r.write_ratio = write_ratio;
  std::vector<double> latencies;
  for (auto& tally : tallies) {
    r.mutations += tally.mutations;
    r.queries += tally.queries;
    latencies.insert(latencies.end(), tally.query_micros.begin(),
                     tally.query_micros.end());
  }
  std::sort(latencies.begin(), latencies.end());
  r.p50_micros = Percentile(latencies, 0.50);
  r.p99_micros = Percentile(latencies, 0.99);
  r.mutation_qps =
      wall > 0.0 ? static_cast<double>(r.mutations) / wall : 0.0;
  r.query_qps = wall > 0.0 ? static_cast<double>(r.queries) / wall : 0.0;
  r.epoch_lag_max = lag_max.load();
  return r;
}

std::string ResultRow(const MixResult& r) {
  return "{\"write_ratio\": " + FormatDouble(r.write_ratio, 2) +
         ", \"mutations\": " + std::to_string(r.mutations) +
         ", \"queries\": " + std::to_string(r.queries) +
         ", \"mutation_qps\": " + FormatDouble(r.mutation_qps) +
         ", \"query_qps\": " + FormatDouble(r.query_qps) +
         ", \"query_p50_micros\": " + FormatDouble(r.p50_micros) +
         ", \"query_p99_micros\": " + FormatDouble(r.p99_micros) +
         ", \"epoch_lag_max\": " + std::to_string(r.epoch_lag_max) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Mutable store throughput",
      "live inserts/removes vs epoch-pinned kNN, d = 3, k = 10, Hyperbola");
  bench::Reporter reporter(argc, argv, "mutation");

  SyntheticSpec spec;
  spec.n = reporter.Scaled(50'000, 2'000);
  spec.dim = 3;
  spec.radius_mean = 10.0;
  spec.center_mean = 1000.0;
  spec.center_stddev = 250.0;
  spec.seed = 21'000;
  const auto data = GenerateSynthetic(spec);
  const auto queries =
      MakeKnnQueries(data, reporter.Scaled(1'000, 100), 21'100);
  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);

  // Sweep 1: pure insert throughput into an empty store (auto-compaction
  // on, so the figure includes periodic rewrites).
  const size_t insert_count = reporter.Scaled(50'000, 2'000);
  double insert_qps = 0.0;
  {
    MutableSsTree store(spec.dim);
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < insert_count; ++i) {
      const Status st = store.Insert(data[i % data.size()], i);
      (void)st;  // unique ids over well-formed data
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    insert_qps =
        wall > 0.0 ? static_cast<double>(insert_count) / wall : 0.0;
    std::printf("\n-- pure insert: %zu rows, %.0f inserts/s --\n",
                insert_count, insert_qps);
  }
  reporter.RawSweep(
      "pure insert",
      {std::string("{\"inserts\": ") + std::to_string(insert_count) +
       ", \"insert_qps\": " + FormatDouble(insert_qps) + "}"});

  // Sweep 2: mixed read/write at 0% / 10% / 50% writes over a seeded
  // store, all threads closed-loop.
  const size_t threads = reporter.Scaled(4, 2);
  const size_t ops_per_thread = reporter.Scaled(10'000, 500);
  std::vector<std::string> rows;
  TablePrinter table({"write ratio", "mutations", "queries", "mut qps",
                      "query qps", "p50", "p99", "max epoch lag"});
  for (const double ratio : {0.0, 0.1, 0.5}) {
    MutableSsTree store(spec.dim);
    std::vector<uint64_t> ids(data.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    const Status built = store.Build(data, ids);
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.ToString().c_str());
      return 1;
    }
    const MixResult r = RunMix(&store, criterion.get(), queries, threads,
                               ops_per_thread, ratio,
                               /*id_base=*/1'000'000'000ull);
    rows.push_back(ResultRow(r));
    char p50[32], p99[32], mq[32], qq[32];
    std::snprintf(p50, sizeof(p50), "%.1f us", r.p50_micros);
    std::snprintf(p99, sizeof(p99), "%.1f us", r.p99_micros);
    std::snprintf(mq, sizeof(mq), "%.0f", r.mutation_qps);
    std::snprintf(qq, sizeof(qq), "%.0f", r.query_qps);
    table.AddRow({FormatDouble(ratio, 2), std::to_string(r.mutations),
                  std::to_string(r.queries), mq, qq, p50, p99,
                  std::to_string(r.epoch_lag_max)});
  }
  std::printf("\n-- mixed read/write (%zu closed-loop threads) --\n",
              threads);
  table.Print();
  reporter.RawSweep("mixed read/write", rows);

  std::printf(
      "\nExpected shape: query p50 moves only modestly from 0%% to 50%%\n"
      "writes (readers never block on the writer; they pin a version and\n"
      "traverse immutable state), and the max epoch lag stays small —\n"
      "retired versions are reclaimed as soon as pinned readers drain.\n");
  return reporter.Finish();
}
