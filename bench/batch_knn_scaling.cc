// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Thread-scaling curve of the batch kNN engine (src/exec/batch.h): a
// seeded 10k-query workload over an SS-tree (N = 100k, d = 4, k = 10,
// Hyperbola) run at 1/2/4/8 worker threads. Besides throughput the bench
// re-checks the engine's core contract on every point: the answer vector
// must be bit-identical to the single-threaded run regardless of thread
// count. Speedup is bounded by the machine's core count — the curve is
// honest, not normalized.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/generator.h"
#include "eval/table_printer.h"
#include "eval/workload.h"
#include "exec/batch.h"

namespace {

using namespace hyperdom;

// Bit-level equality of two batch runs: same answers (id, order), same
// completeness flags, same traversal counters.
bool IdenticalRuns(const BatchKnnResult& a, const BatchKnnResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const KnnResult& x = a.results[i];
    const KnnResult& y = b.results[i];
    if (x.completeness != y.completeness) return false;
    if (x.answers.size() != y.answers.size()) return false;
    for (size_t j = 0; j < x.answers.size(); ++j) {
      if (x.answers[j].id != y.answers[j].id) return false;
    }
    if (x.stats.nodes_visited != y.stats.nodes_visited ||
        x.stats.nodes_pruned != y.stats.nodes_pruned ||
        x.stats.entries_accessed != y.stats.entries_accessed ||
        x.stats.dominance_checks != y.stats.dominance_checks) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Batch kNN thread scaling",
      "N = 100k, d = 4, k = 10, Hyperbola, 10k queries, SS-tree");
  bench::Reporter reporter(argc, argv, "batch_knn_scaling");

  SyntheticSpec spec;
  spec.n = reporter.Scaled(100'000, 5'000);
  spec.dim = 4;
  spec.radius_mean = 10.0;
  spec.center_mean = 1000.0;
  spec.center_stddev = 250.0;
  spec.seed = 17'000;
  const auto data = GenerateSynthetic(spec);

  SsTree tree(spec.dim);
  const Status st = tree.BulkLoad(data);
  (void)st;  // generated data is well-formed

  const std::vector<Hypersphere> queries =
      MakeKnnQueries(data, reporter.Scaled(10'000, 200), 17'100);
  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);
  KnnOptions options;
  options.k = 10;

  BatchOptions serial_exec;
  serial_exec.threads = 1;
  const BatchKnnResult serial =
      BatchKnn(tree, queries, *criterion, options, serial_exec);
  const double serial_ms =
      static_cast<double>(serial.stats.wall_nanos) * 1e-6;

  std::printf("\n-- thread scaling (%zu queries, %u cores) --\n",
              queries.size(), std::thread::hardware_concurrency());
  TablePrinter table({"threads", "total time", "time/query", "speedup",
                      "identical to serial"});
  std::vector<std::string> rows;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    BatchOptions exec;
    exec.threads = threads;
    const BatchKnnResult batch =
        BatchKnn(tree, queries, *criterion, options, exec);
    const double total_ms =
        static_cast<double>(batch.stats.wall_nanos) * 1e-6;
    const double per_query_ms =
        total_ms / static_cast<double>(queries.size());
    const double speedup = total_ms > 0.0 ? serial_ms / total_ms : 0.0;
    const bool identical = IdenticalRuns(serial, batch);

    char total[32], per_query[32], speedup_s[32];
    std::snprintf(total, sizeof(total), "%.1f ms", total_ms);
    std::snprintf(per_query, sizeof(per_query), "%.4f ms", per_query_ms);
    std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", speedup);
    table.AddRow({std::to_string(threads), total, per_query, speedup_s,
                  identical ? "yes" : "NO"});

    rows.push_back(
        "{\"threads\": " + std::to_string(threads) +
        ", \"millis_total\": " + FormatDouble(total_ms) +
        ", \"millis_per_query\": " + FormatDouble(per_query_ms) +
        ", \"speedup_vs_1\": " + FormatDouble(speedup) +
        ", \"identical_to_serial\": " + (identical ? "true" : "false") +
        "}");
    if (!identical) {
      std::fprintf(stderr,
                   "error: %zu-thread batch diverged from the serial run\n",
                   threads);
      return 1;
    }
  }
  table.Print();
  reporter.RawSweep("thread scaling", rows);

  std::printf(
      "\nExpected shape: near-linear speedup up to the physical core count\n"
      "(this container reports %u), flat beyond it; the 'identical' column\n"
      "must read yes everywhere — the engine's determinism contract.\n",
      std::thread::hardware_concurrency());
  return reporter.Finish();
}
