// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 13** (a: query time, b: precision): effect of the
// average radius mu in {5, 10, 50, 100} for kNN queries over an SS-tree on
// synthetic data (N = 100k, d = 4, k = 10). Eight algorithms: {HS, DF} x
// {Hyper, MinMax, MBR, GP} (Trigonometric is excluded, as in the paper: an
// incorrect criterion may drop true answers).

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 13: kNN — effect of average radius mu",
                     "N = 100k, d = 4, k = 10, SS-tree");
  bench::Reporter reporter(argc, argv, "fig13_knn_radius");

  for (double mu : {5.0, 10.0, 50.0, 100.0}) {
    SyntheticSpec spec;
    spec.n = reporter.Scaled(100'000, 5'000);
    spec.dim = 4;
    spec.radius_mean = mu;
    // Wider coordinate scale than the dominance benches: in the paper's
    // Gaussian(100, 25) space every sphere pair overlaps once mu >= 50, no
    // dominance exists and all algorithms degenerate to returning the whole
    // dataset. The tenfold scale keeps the sweep inside the partially-
    // prunable regime the paper's kNN figures display (see EXPERIMENTS.md).
    spec.center_mean = 1000.0;
    spec.center_stddev = 250.0;
    spec.seed = 13'000;
    const auto data = GenerateSynthetic(spec);
    KnnExperimentConfig config;
    config.k = 10;
    config.num_queries = reporter.Scaled(5, 2);
    config.seed = 13'100;
    config.threads = reporter.threads();
    const auto rows = RunKnnExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "mu = %.0f", mu);
    reporter.KnnSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 13): MinMax-based algorithms have the\n"
      "smallest query time, the rest are comparable; Hyperbola-based\n"
      "algorithms keep precision at 100%% while the others fall with mu\n"
      "(down to ~40%%).\n");
  return reporter.Finish();
}
