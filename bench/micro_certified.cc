// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// google-benchmark microbenchmarks for the certified verdict layer:
// the per-call overhead of CertifiedDominance versus the plain Hyperbola
// bool on random (far-from-boundary) workloads, the cost of each escalation
// tier on boundary-pinned scenes, and the error-bounded kernels themselves
// (running-error Horner, certified quartic roots, certified min-distance).

#include <benchmark/benchmark.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "dominance/certified.h"
#include "dominance/criterion.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "geometry/focal_frame.h"
#include "geometry/polynomial.h"

namespace hyperdom {
namespace {

std::vector<DominanceQuery> WorkloadForDim(size_t dim) {
  SyntheticSpec spec;
  spec.n = 2048;
  spec.dim = dim;
  spec.radius_mean = 10.0;
  spec.seed = 0xBE7C4 + dim;
  return MakeDominanceWorkload(GenerateSynthetic(spec), 1024, 0xF00D + dim);
}

// Boundary-pinned variant: rq is moved onto the certified boundary
// (dmin in long double) so every call exercises the escalation chain.
std::vector<DominanceQuery> BoundaryWorkloadForDim(size_t dim) {
  auto workload = WorkloadForDim(dim);
  std::vector<DominanceQuery> pinned;
  for (auto& q : workload) {
    // Recover the boundary radius from the unified long double margin at
    // rq = 0 (see the fuzz harness); skip scenes where another margin binds.
    const long double m0 = DominanceMarginLongDouble(
        q.sa, q.sb, Hypersphere(q.sq.center(), 0.0));
    if (!(m0 > 0.1L && m0 < 1.0e6L)) continue;
    const double probe = 2.0 * static_cast<double>(m0);
    const long double m_hi = DominanceMarginLongDouble(
        q.sa, q.sb, Hypersphere(q.sq.center(), probe));
    const long double dmin = m_hi + static_cast<long double>(probe);
    // The recovery dmin = m_hi + probe is valid only when the boundary
    // margin (dmin - probe), not a distance margin, was the binding one.
    if (!(m_hi < m0 - 1e-9L) || !(dmin > 0.0L)) continue;
    pinned.push_back(DominanceQuery{
        q.sa, q.sb, Hypersphere(q.sq.center(), static_cast<double>(dmin))});
    if (pinned.size() == 256) break;
  }
  return pinned;
}

void BM_CertifiedDecide(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto workload = WorkloadForDim(dim);
  const CertifiedDominance engine;
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = workload[i++ & 1023];
    benchmark::DoNotOptimize(engine.Decide(q.sa, q.sb, q.sq));
  }
  const CertifiedStats stats = engine.stats();
  state.SetLabel("d=" + std::to_string(dim) + " uncertain=" +
                 std::to_string(stats.uncertain));
}

void BM_CertifiedDecideBoundary(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto workload = BoundaryWorkloadForDim(dim);
  if (workload.empty()) {
    state.SkipWithError("no boundary scenes survived pinning");
    return;
  }
  const CertifiedDominance engine;
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = workload[i++ % workload.size()];
    benchmark::DoNotOptimize(engine.Decide(q.sa, q.sb, q.sq));
  }
  const CertifiedStats stats = engine.stats();
  state.SetLabel("d=" + std::to_string(dim) +
                 " t1=" + std::to_string(stats.resolved_quartic) +
                 " t2=" + std::to_string(stats.resolved_parametric) +
                 " t3=" + std::to_string(stats.resolved_long_double) +
                 " unc=" + std::to_string(stats.uncertain));
}

void BM_HyperbolaBool(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto workload = WorkloadForDim(dim);
  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = workload[i++ & 1023];
    benchmark::DoNotOptimize(criterion->Dominates(q.sa, q.sb, q.sq));
  }
  state.SetLabel("d=" + std::to_string(dim));
}

void BM_EvaluateWithError(benchmark::State& state) {
  const std::vector<double> coeffs = {-3.1e9, -8.2e8, 2.4e8, 9.1e6, -4.2e4};
  size_t i = 0;
  for (auto _ : state) {
    const double x = 0.001 * static_cast<double>(i++ & 255);
    benchmark::DoNotOptimize(EvaluatePolynomialWithError(coeffs, x));
  }
}

void BM_SolveQuarticWithBounds(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    const double jitter = static_cast<double>(i++ & 15);
    benchmark::DoNotOptimize(SolveQuarticWithBounds(
        -3.1e9, -8.2e8, 2.4e8 + jitter, 9.1e6, -4.2e4));
  }
}

void BM_HyperbolaMinDistCertified(benchmark::State& state) {
  Rng rng(0xCE2B);
  std::vector<std::array<double, 3>> cases(256);
  for (auto& c : cases) {
    c = {rng.Uniform(0.1, 1.8), rng.Uniform(-8.0, 8.0),
         rng.Uniform(0.01, 8.0)};
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& c = cases[i++ & 255];
    benchmark::DoNotOptimize(HyperbolaMinDistCertified(1.0, c[0], c[1], c[2]));
  }
}

BENCHMARK(BM_HyperbolaBool)->Arg(2)->Arg(4)->Arg(10)->Arg(50);
BENCHMARK(BM_CertifiedDecide)->Arg(2)->Arg(4)->Arg(10)->Arg(50);
BENCHMARK(BM_CertifiedDecideBoundary)->Arg(2)->Arg(4)->Arg(10);
BENCHMARK(BM_EvaluateWithError);
BENCHMARK(BM_SolveQuarticWithBounds);
BENCHMARK(BM_HyperbolaMinDistCertified);

}  // namespace
}  // namespace hyperdom

BENCHMARK_MAIN();
