// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shared output helpers for the per-figure benchmark binaries. Each binary
// regenerates one table/figure of the paper's Section 7 and prints the same
// rows/series the paper plots.

#ifndef HYPERDOM_BENCH_BENCH_UTIL_H_
#define HYPERDOM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "obs/metrics.h"

namespace hyperdom {
namespace bench {

/// Prints a figure banner.
inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

/// Prints dominance-experiment rows for one sweep point (one x-axis value
/// of a Section 7.1 figure).
inline void PrintDominanceTable(
    const std::string& sweep_label,
    const std::vector<DominanceExperimentRow>& rows) {
  std::printf("\n-- %s --\n", sweep_label.c_str());
  TablePrinter table({"criterion", "time/query", "precision", "recall"});
  for (const auto& row : rows) {
    char precision[32], recall[32];
    std::snprintf(precision, sizeof(precision), "%.2f%%", row.precision_pct);
    std::snprintf(recall, sizeof(recall), "%.2f%%", row.recall_pct);
    table.AddRow({row.criterion, FormatDuration(row.nanos_per_query),
                  precision, recall});
  }
  table.Print();
}

/// Prints kNN-experiment rows for one sweep point (one x-axis value of a
/// Section 7.2 figure).
inline void PrintKnnTable(const std::string& sweep_label,
                          const std::vector<KnnExperimentRow>& rows) {
  std::printf("\n-- %s --\n", sweep_label.c_str());
  TablePrinter table({"algorithm", "query time", "precision", "recall"});
  for (const auto& row : rows) {
    char time_ms[32], precision[32], recall[32];
    std::snprintf(time_ms, sizeof(time_ms), "%.3f ms", row.millis_per_query);
    std::snprintf(precision, sizeof(precision), "%.2f%%", row.precision_pct);
    std::snprintf(recall, sizeof(recall), "%.2f%%", row.recall_pct);
    table.AddRow({row.algorithm, time_ms, precision, recall});
  }
  table.Print();
}

namespace internal {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline bool WriteFile(const std::string& path, const std::string& body) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << body;
  file.flush();
  return static_cast<bool>(file);
}

}  // namespace internal

/// \brief Flag parsing plus machine-readable output for the figure
/// binaries.
///
/// Accumulates the sweeps a binary prints and, when asked, emits them as a
/// `BENCH_<name>.json` artifact so CI can diff benchmark results across
/// commits instead of scraping stdout. Flags (all optional):
///
///   --smoke             shrink the workload; binaries pick the reduced
///                       sizes via Scaled(full, smoke)
///   --json-out=FILE     write the accumulated rows as
///                       `hyperdom-bench-v1` JSON
///   --headline-out=FILE write the SAME JSON body to a second path in the
///                       same run (the repo-root headline copy of a
///                       results file, kept in sync by construction)
///   --metrics-out=FILE  dump the process metrics registry after the run
///                       (`.json` extension selects the JSON export,
///                       anything else Prometheus text)
///   --threads=N         worker threads for query workloads (0 = all
///                       cores); results are bit-identical at any value
///
/// Usage: construct from (argc, argv), replace Print*Table calls with
/// KnnSweep/DominanceSweep, and `return reporter.Finish();` from main.
class Reporter {
 public:
  Reporter(int argc, char** argv, std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        smoke_ = true;
      } else if (StartsWith(arg, "--json-out=")) {
        json_out_ = arg.substr(11);
      } else if (StartsWith(arg, "--headline-out=")) {
        headline_out_ = arg.substr(15);
      } else if (StartsWith(arg, "--metrics-out=")) {
        metrics_out_ = arg.substr(14);
      } else if (StartsWith(arg, "--threads=")) {
        threads_ = static_cast<size_t>(
            std::strtoull(arg.c_str() + 10, nullptr, 10));
      } else {
        std::fprintf(stderr,
                     "error: unknown flag '%s'\n"
                     "usage: %s [--smoke] [--json-out=FILE] "
                     "[--headline-out=FILE] [--metrics-out=FILE] "
                     "[--threads=N]\n",
                     arg.c_str(), argv[0]);
        bad_flags_ = true;
      }
    }
  }

  /// True when --smoke was given: the binary should run a shrunk workload
  /// that exercises every code path but finishes in seconds.
  bool smoke() const { return smoke_; }

  /// Workload size selector: `full` normally, `smoke` under --smoke.
  size_t Scaled(size_t full, size_t smoke) const {
    return smoke_ ? smoke : full;
  }

  /// Worker threads for query workloads (from --threads; default 1,
  /// 0 = hardware concurrency). Feeds KnnExperimentConfig::threads.
  size_t threads() const { return threads_; }

  /// Prints and records one dominance sweep point.
  void DominanceSweep(const std::string& label,
                      const std::vector<DominanceExperimentRow>& rows) {
    PrintDominanceTable(label, rows);
    std::string sweep = SweepPrefix(label);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) sweep += ",\n";
      sweep += "        {\"criterion\": \"" +
               internal::JsonEscape(rows[i].criterion) +
               "\", \"nanos_per_query\": " +
               FormatDouble(rows[i].nanos_per_query) +
               ", \"precision_pct\": " + FormatDouble(rows[i].precision_pct) +
               ", \"recall_pct\": " + FormatDouble(rows[i].recall_pct) + "}";
    }
    sweeps_.push_back(sweep + "\n      ]\n    }");
  }

  /// Prints and records one kNN sweep point.
  void KnnSweep(const std::string& label,
                const std::vector<KnnExperimentRow>& rows) {
    PrintKnnTable(label, rows);
    std::string sweep = SweepPrefix(label);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) sweep += ",\n";
      sweep += "        {\"algorithm\": \"" +
               internal::JsonEscape(rows[i].algorithm) +
               "\", \"millis_per_query\": " +
               FormatDouble(rows[i].millis_per_query) +
               ", \"precision_pct\": " + FormatDouble(rows[i].precision_pct) +
               ", \"recall_pct\": " + FormatDouble(rows[i].recall_pct) + "}";
    }
    sweeps_.push_back(sweep + "\n      ]\n    }");
  }

  /// Records one sweep point with caller-formatted rows (each element a
  /// complete JSON object). For benches whose rows don't fit the
  /// dominance/kNN shapes, e.g. the thread-scaling curve; the caller owns
  /// the human-readable table printing.
  void RawSweep(const std::string& label,
                const std::vector<std::string>& rows) {
    std::string sweep = SweepPrefix(label);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) sweep += ",\n";
      sweep += "        " + rows[i];
    }
    sweeps_.push_back(sweep + "\n      ]\n    }");
  }

  /// Writes the requested artifacts; the binary's exit code.
  int Finish() const {
    if (bad_flags_) return 2;
    if (!json_out_.empty() || !headline_out_.empty()) {
      std::string body;
      body += "{\n  \"schema\": \"hyperdom-bench-v1\",\n";
      body += "  \"bench\": \"" + internal::JsonEscape(bench_name_) + "\",\n";
      body += std::string("  \"smoke\": ") + (smoke_ ? "true" : "false") +
              ",\n  \"sweeps\": [\n";
      for (size_t i = 0; i < sweeps_.size(); ++i) {
        if (i > 0) body += ",\n";
        body += sweeps_[i];
      }
      body += "\n  ]\n}\n";
      if (!json_out_.empty() && !internal::WriteFile(json_out_, body)) {
        std::fprintf(stderr, "error: cannot write %s\n", json_out_.c_str());
        return 1;
      }
      // Byte-identical second copy: the headline file can never drift
      // from the results file it mirrors, because both come from this
      // one `body`.
      if (!headline_out_.empty() &&
          !internal::WriteFile(headline_out_, body)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     headline_out_.c_str());
        return 1;
      }
    }
    if (!metrics_out_.empty()) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
      auto& registry = obs::MetricsRegistry::Instance();
      const std::string body = EndsWith(metrics_out_, ".json")
                                   ? registry.RenderJson()
                                   : registry.RenderPrometheus();
      if (!internal::WriteFile(metrics_out_, body)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_out_.c_str());
        return 1;
      }
#else
      std::fprintf(stderr,
                   "error: --metrics-out: observability was compiled out "
                   "(HYPERDOM_OBSERVABILITY=OFF)\n");
      return 1;
#endif  // HYPERDOM_OBSERVABILITY_ENABLED
    }
    return 0;
  }

 private:
  static std::string SweepPrefix(const std::string& label) {
    return "    {\n      \"label\": \"" + internal::JsonEscape(label) +
           "\",\n      \"rows\": [\n";
  }

  std::string bench_name_;
  std::string json_out_;
  std::string headline_out_;
  std::string metrics_out_;
  size_t threads_ = 1;
  bool smoke_ = false;
  bool bad_flags_ = false;
  std::vector<std::string> sweeps_;
};

}  // namespace bench
}  // namespace hyperdom

#endif  // HYPERDOM_BENCH_BENCH_UTIL_H_
