// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shared output helpers for the per-figure benchmark binaries. Each binary
// regenerates one table/figure of the paper's Section 7 and prints the same
// rows/series the paper plots.

#ifndef HYPERDOM_BENCH_BENCH_UTIL_H_
#define HYPERDOM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace hyperdom {
namespace bench {

/// Prints a figure banner.
inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

/// Prints dominance-experiment rows for one sweep point (one x-axis value
/// of a Section 7.1 figure).
inline void PrintDominanceTable(
    const std::string& sweep_label,
    const std::vector<DominanceExperimentRow>& rows) {
  std::printf("\n-- %s --\n", sweep_label.c_str());
  TablePrinter table({"criterion", "time/query", "precision", "recall"});
  for (const auto& row : rows) {
    char precision[32], recall[32];
    std::snprintf(precision, sizeof(precision), "%.2f%%", row.precision_pct);
    std::snprintf(recall, sizeof(recall), "%.2f%%", row.recall_pct);
    table.AddRow({row.criterion, FormatDuration(row.nanos_per_query),
                  precision, recall});
  }
  table.Print();
}

/// Prints kNN-experiment rows for one sweep point (one x-axis value of a
/// Section 7.2 figure).
inline void PrintKnnTable(const std::string& sweep_label,
                          const std::vector<KnnExperimentRow>& rows) {
  std::printf("\n-- %s --\n", sweep_label.c_str());
  TablePrinter table({"algorithm", "query time", "precision", "recall"});
  for (const auto& row : rows) {
    char time_ms[32], precision[32], recall[32];
    std::snprintf(time_ms, sizeof(time_ms), "%.3f ms", row.millis_per_query);
    std::snprintf(precision, sizeof(precision), "%.2f%%", row.precision_pct);
    std::snprintf(recall, sizeof(recall), "%.2f%%", row.recall_pct);
    table.AddRow({row.algorithm, time_ms, precision, recall});
  }
  table.Print();
}

}  // namespace bench
}  // namespace hyperdom

#endif  // HYPERDOM_BENCH_BENCH_UTIL_H_
