// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Ablation: the design choices inside Hyperbola (DESIGN.md Section 3).
//   1. Inner minimum-distance engine: the paper's O(1) quartic vs a dense
//      parametric scan — same answers, two-plus orders of magnitude apart in
//      cost, which is what makes the criterion usable inside query loops.
//   2. The O(d) focal 2-plane reduction vs recomputing distances naively
//      per candidate: shows the reduction's share of total cost per d.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/measures.h"
#include "eval/workload.h"
#include "geometry/focal_frame.h"

int main() {
  using namespace hyperdom;
  bench::PrintHeader("Ablation: Hyperbola inner machinery",
                     "quartic (paper Eq. 14) vs parametric-scan fallback");

  TablePrinter table({"d", "quartic/query", "parametric/query", "speedup",
                      "decisions agree"});
  for (size_t d : {2, 4, 10, 50}) {
    SyntheticSpec spec;
    spec.n = 20'000;
    spec.dim = d;
    spec.radius_mean = 10.0;
    spec.seed = 0xAB1A + d;
    const auto data = GenerateSynthetic(spec);
    const auto workload = MakeDominanceWorkload(data, 2000, 0xAB2B + d);

    const HyperbolaCriterion quartic(HyperbolaInnerMethod::kQuartic);
    const HyperbolaCriterion parametric(HyperbolaInnerMethod::kParametric);
    const double t_quartic = TimeCriterionNanos(quartic, workload, 3);
    const double t_param = TimeCriterionNanos(parametric, workload, 1);

    size_t agree = 0;
    for (const auto& q : workload) {
      if (quartic.Dominates(q.sa, q.sb, q.sq) ==
          parametric.Dominates(q.sa, q.sb, q.sq)) {
        ++agree;
      }
    }
    char speedup[32], agreement[32];
    std::snprintf(speedup, sizeof(speedup), "%.0fx", t_param / t_quartic);
    std::snprintf(agreement, sizeof(agreement), "%zu/%zu", agree,
                  workload.size());
    table.AddRow({std::to_string(d), FormatDuration(t_quartic),
                  FormatDuration(t_param), speedup, agreement});
  }
  table.Print();

  std::printf("\n-- share of Hyperbola cost spent in the O(d) reduction --\n");
  TablePrinter share({"d", "frame+checks only", "full Hyperbola", "share"});
  for (size_t d : {4, 20, 100}) {
    SyntheticSpec spec;
    spec.n = 20'000;
    spec.dim = d;
    spec.radius_mean = 10.0;
    spec.seed = 0xAB3C + d;
    const auto data = GenerateSynthetic(spec);
    const auto workload = MakeDominanceWorkload(data, 2000, 0xAB4D + d);

    // O(d) part alone: overlap test + cq-in-Ra test + frame build.
    Stopwatch watch;
    uint64_t sink = 0;
    for (int rep = 0; rep < 3; ++rep) {
      for (const auto& q : workload) {
        if (Overlaps(q.sa, q.sb)) {
          ++sink;
          continue;
        }
        const double da = Dist(q.sq.center(), q.sa.center());
        const double db = Dist(q.sq.center(), q.sb.center());
        if (db - da <= q.sa.radius() + q.sb.radius()) {
          ++sink;
          continue;
        }
        const FocalFrame frame =
            BuildFocalFrame(q.sa.center(), q.sb.center(), q.sq.center());
        sink += frame.y2 > 0.0 ? 1 : 0;
      }
    }
    const double t_reduction = static_cast<double>(watch.ElapsedNs()) /
                               (3.0 * static_cast<double>(workload.size()));
    DoNotOptimizeAway(sink);
    const HyperbolaCriterion quartic;
    const double t_full = TimeCriterionNanos(quartic, workload, 3);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.0f%%", 100.0 * t_reduction / t_full);
    share.AddRow({std::to_string(d), FormatDuration(t_reduction),
                  FormatDuration(t_full), pct});
  }
  share.Print();
  std::printf(
      "\nReading: the quartic engine gives identical decisions at a tiny\n"
      "fraction of the parametric cost, and as d grows the O(d) reduction\n"
      "dominates total time — i.e. the O(1) root solving is not the\n"
      "bottleneck, exactly the property the paper's complexity claim needs.\n");
  return 0;
}
