// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Regenerates **Figure 11**: execution time in high-dimensional space,
// d in {25, 50, 75, 100}, synthetic data with the Table-2 defaults. (The
// paper plots time only for this figure; precision/recall are printed too
// since the harness computes them anyway.)

#include "bench_util.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  using namespace hyperdom;
  bench::PrintHeader("Figure 11: high-dimensional execution time",
                     "N = 100k, mu = 10; d in {25, 50, 75, 100}");
  bench::Reporter reporter(argc, argv, "fig11_high_dimensional");

  for (size_t d : {25, 50, 75, 100}) {
    SyntheticSpec spec;
    spec.n = reporter.Scaled(100'000, 5'000);
    spec.dim = d;
    spec.radius_mean = 10.0;
    spec.seed = 11'000 + d;
    const auto data = GenerateSynthetic(spec);
    DominanceExperimentConfig config;
    config.workload_size = reporter.Scaled(config.workload_size, 200);
    if (reporter.smoke()) config.repeats = 1;
    config.seed = 11'100 + d;
    const auto rows = RunDominanceExperiment(data, config);
    char label[64];
    std::snprintf(label, sizeof(label), "d = %zu", d);
    reporter.DominanceSweep(label, rows);
  }
  std::printf(
      "\nExpected shape (paper Fig. 11): all criteria stay usable at d=100\n"
      "with time growing roughly linearly in d (every method is O(d)); the\n"
      "relative ordering of the criteria is unchanged.\n");
  return reporter.Finish();
}
