// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Closed-loop load generator for the hyperdom query server: an in-process
// Server on a loopback ephemeral port, driven by C closed-loop client
// threads (each sends the next request the moment the previous response
// lands). Two sweeps:
//
//   * throughput/latency at C = 1/2/4/8 clients against a generously
//     provisioned server — p50/p99 client-observed latency and QPS, with
//     every tenth request carrying a ~1 ms budget so deadline-expiry
//     best-effort responses flow through the full wire path;
//   * an overload point — 8 clients against 1 worker with a queue bound of
//     1 — demonstrating load shedding: requests are refused with
//     kOverloaded immediately (no hang, no crash) and the shed rate is
//     reported.
//
// Emits bench/results/BENCH_server.json via --json-out; --smoke shrinks
// the workload so the whole binary finishes in a couple of seconds (the
// tier-1 smoke test runs it that way).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/generator.h"
#include "dominance/criterion.h"
#include "eval/table_printer.h"
#include "eval/workload.h"
#include "index/ss_tree.h"
#include "server/admin.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace hyperdom;

struct ClientTally {
  std::vector<double> latency_micros;
  uint64_t exact = 0;
  uint64_t best_effort = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
};

struct SweepResult {
  size_t concurrency = 0;
  uint64_t requests = 0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double p999_micros = 0.0;
  double max_micros = 0.0;
  double shed_rate = 0.0;
  double best_effort_rate = 0.0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

// One closed-loop client: `requests` back-to-back kNN calls, every tenth
// with a 50 us budget — well under one query's service time, so the
// deadline (started at ADMISSION) expires mid-traversal and the server
// degrades to a proven-subset best-effort response over the wire.
void ClientLoop(uint16_t port, const std::vector<Hypersphere>& queries,
                size_t requests, size_t offset, bool allow_retry,
                ClientTally* tally) {
  server::ClientOptions options;
  options.port = port;
  options.max_attempts = allow_retry ? 4 : 1;
  options.jitter_seed = 0x5EEDu + offset;
  server::Client client(options);
  for (size_t i = 0; i < requests; ++i) {
    server::KnnRequest request;
    request.query = queries[(offset + i) % queries.size()];
    request.k = 10;
    if (i % 10 == 9) request.budget_micros = 50;
    const auto start = std::chrono::steady_clock::now();
    Result<server::KnnResponse> response = client.Knn(request);
    const auto stop = std::chrono::steady_clock::now();
    if (response.ok()) {
      tally->latency_micros.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
      if (response->completeness == Completeness::kExact) {
        ++tally->exact;
      } else {
        ++tally->best_effort;
      }
    } else if (response.status().code() == StatusCode::kOverloaded) {
      ++tally->shed;
    } else {
      ++tally->errors;
    }
  }
}

// Runs one sweep point: `concurrency` closed-loop clients against the
// server at `port`, `requests_per_client` calls each.
SweepResult RunSweep(uint16_t port, const std::vector<Hypersphere>& queries,
                     size_t concurrency, size_t requests_per_client,
                     bool allow_retry) {
  std::vector<ClientTally> tallies(concurrency);
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < concurrency; ++c) {
    threads.emplace_back(ClientLoop, port, std::cref(queries),
                         requests_per_client, c * 7919, allow_retry,
                         &tallies[c]);
  }
  for (auto& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepResult result;
  result.concurrency = concurrency;
  std::vector<double> latencies;
  uint64_t answered = 0, shed = 0, best_effort = 0, errors = 0;
  for (const auto& tally : tallies) {
    latencies.insert(latencies.end(), tally.latency_micros.begin(),
                     tally.latency_micros.end());
    answered += tally.exact + tally.best_effort;
    best_effort += tally.best_effort;
    shed += tally.shed;
    errors += tally.errors;
  }
  result.requests = answered + shed + errors;
  std::sort(latencies.begin(), latencies.end());
  result.p50_micros = Percentile(latencies, 0.50);
  result.p99_micros = Percentile(latencies, 0.99);
  result.p999_micros = Percentile(latencies, 0.999);
  result.max_micros = latencies.empty() ? 0.0 : latencies.back();
  result.qps = wall_seconds > 0.0
                   ? static_cast<double>(answered) / wall_seconds
                   : 0.0;
  const double total = static_cast<double>(result.requests);
  result.shed_rate = total > 0.0 ? static_cast<double>(shed) / total : 0.0;
  result.best_effort_rate =
      total > 0.0 ? static_cast<double>(best_effort) / total : 0.0;
  if (errors > 0) {
    std::fprintf(stderr, "warning: %llu unexpected client errors at C=%zu\n",
                 static_cast<unsigned long long>(errors), concurrency);
  }
  return result;
}

std::string ResultRow(const SweepResult& r) {
  return "{\"concurrency\": " + std::to_string(r.concurrency) +
         ", \"requests\": " + std::to_string(r.requests) +
         ", \"qps\": " + FormatDouble(r.qps) +
         ", \"p50_micros\": " + FormatDouble(r.p50_micros) +
         ", \"p99_micros\": " + FormatDouble(r.p99_micros) +
         ", \"p999_micros\": " + FormatDouble(r.p999_micros) +
         ", \"max_micros\": " + FormatDouble(r.max_micros) +
         ", \"shed_rate\": " + FormatDouble(r.shed_rate, 4) +
         ", \"best_effort_rate\": " + FormatDouble(r.best_effort_rate, 4) +
         "}";
}

void AddTableRow(TablePrinter& table, const SweepResult& r) {
  char qps[32], p50[32], p99[32], p999[32], maxl[32], shed[32], be[32];
  std::snprintf(qps, sizeof(qps), "%.0f", r.qps);
  std::snprintf(p50, sizeof(p50), "%.1f us", r.p50_micros);
  std::snprintf(p99, sizeof(p99), "%.1f us", r.p99_micros);
  std::snprintf(p999, sizeof(p999), "%.1f us", r.p999_micros);
  std::snprintf(maxl, sizeof(maxl), "%.1f us", r.max_micros);
  std::snprintf(shed, sizeof(shed), "%.2f%%", 100.0 * r.shed_rate);
  std::snprintf(be, sizeof(be), "%.2f%%", 100.0 * r.best_effort_rate);
  table.AddRow({std::to_string(r.concurrency), std::to_string(r.requests),
                qps, p50, p99, p999, maxl, shed, be});
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Server closed-loop load",
      "N = 100k, d = 4, k = 10, Hyperbola; in-process server on loopback");
  bench::Reporter reporter(argc, argv, "server_load");

  SyntheticSpec spec;
  spec.n = reporter.Scaled(100'000, 5'000);
  spec.dim = 4;
  spec.radius_mean = 10.0;
  spec.center_mean = 1000.0;
  spec.center_stddev = 250.0;
  spec.seed = 18'000;
  const auto data = GenerateSynthetic(spec);

  SsTree tree(spec.dim);
  const Status st = tree.BulkLoad(data);
  (void)st;  // generated data is well-formed
  const std::vector<Hypersphere> queries =
      MakeKnnQueries(data, reporter.Scaled(1'000, 100), 18'100);
  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);

  const size_t requests_per_client = reporter.Scaled(2'000, 50);
  const std::vector<size_t> concurrencies =
      reporter.smoke() ? std::vector<size_t>{1, 2}
                       : std::vector<size_t>{1, 2, 4, 8};

  // Sweep 1: throughput/latency against a generously provisioned server.
  std::vector<std::string> rows;
  TablePrinter table({"clients", "requests", "qps", "p50", "p99", "p99.9",
                      "max", "shed", "best-effort"});
  {
    server::ServerOptions options;
    options.worker_threads = 0;  // all cores
    options.queue_capacity = 1024;
    server::Server server(&tree, criterion.get(), options);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return 1;
    }
    for (size_t concurrency : concurrencies) {
      const SweepResult r =
          RunSweep(server.port(), queries, concurrency, requests_per_client,
                   /*allow_retry=*/true);
      AddTableRow(table, r);
      rows.push_back(ResultRow(r));
    }
    server.Stop();
  }
  std::printf("\n-- closed-loop throughput (workers = all cores) --\n");
  table.Print();
  reporter.RawSweep("throughput", rows);

  // Sweep 2: overload — 8 closed-loop clients vs 1 worker and a queue
  // bound of 1. Clients do NOT retry here, so every refusal is counted;
  // the interesting outcome is a nonzero shed rate with zero errors.
  std::vector<std::string> shed_rows;
  TablePrinter shed_table({"clients", "requests", "qps", "p50", "p99",
                           "p99.9", "max", "shed", "best-effort"});
  {
    server::ServerOptions options;
    options.worker_threads = 1;
    options.queue_capacity = 1;
    server::Server server(&tree, criterion.get(), options);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return 1;
    }
    const SweepResult r = RunSweep(
        server.port(), queries, reporter.Scaled(8, 4),
        requests_per_client, /*allow_retry=*/false);
    AddTableRow(shed_table, r);
    shed_rows.push_back(ResultRow(r));
    server.Stop();
  }
  std::printf("\n-- overload shedding (1 worker, queue bound 1) --\n");
  shed_table.Print();
  reporter.RawSweep("overload shedding", shed_rows);

  // Sweep 3: admin-plane cost. The top-concurrency throughput point runs
  // twice against fresh servers — once bare, once with a live admin plane
  // being scraped (/metrics) every 100 ms plus its 100 ms gauge tick —
  // and the QPS delta is recorded. The claim under test: the admin plane
  // costs at most ~1% QPS.
  std::vector<std::string> admin_rows;
  double baseline_qps = 0.0, admin_qps = 0.0;
  uint64_t scrape_count = 0, scrape_bytes_total = 0;
  {
    const size_t top = concurrencies.back();
    server::ServerOptions options;
    options.worker_threads = 0;
    options.queue_capacity = 1024;
    {
      server::Server server(&tree, criterion.get(), options);
      const Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
      }
      baseline_qps = RunSweep(server.port(), queries, top,
                              requests_per_client, /*allow_retry=*/true)
                         .qps;
      server.Stop();
    }
    {
      server::Server server(&tree, criterion.get(), options);
      const Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
      }
      server::AdminOptions admin_options;
      admin_options.tick_interval_ms = 100;
      server::AdminServer::Sources sources;
      sources.queue_depth = [&server] { return server.QueueDepth(); };
      sources.requests_served = [&server] {
        return server.counters().requests_served.load();
      };
      server::AdminServer admin(std::move(admin_options), std::move(sources));
      const Status admin_started = admin.Start();
      if (!admin_started.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     admin_started.ToString().c_str());
        return 1;
      }
      std::atomic<bool> stop_scraper{false};
      std::atomic<uint64_t> scrapes{0};
      std::atomic<uint64_t> scrape_bytes{0};
      std::thread scraper([&] {
        while (!stop_scraper.load()) {
          Result<server::HttpResponse> scraped = server::AdminHttpGet(
              "127.0.0.1", admin.port(), "/metrics", /*timeout_ms=*/2000);
          if (scraped.ok() && scraped->status_code == 200) {
            scrapes.fetch_add(1);
            scrape_bytes.fetch_add(scraped->body.size());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
      admin_qps = RunSweep(server.port(), queries, top, requests_per_client,
                           /*allow_retry=*/true)
                      .qps;
      stop_scraper.store(true);
      scraper.join();
      scrape_count = scrapes.load();
      scrape_bytes_total = scrape_bytes.load();
      admin.Stop();
      server.Stop();
    }
    const double overhead_pct =
        baseline_qps > 0.0 ? 100.0 * (baseline_qps - admin_qps) / baseline_qps
                           : 0.0;
    admin_rows.push_back(
        "{\"concurrency\": " + std::to_string(top) +
        ", \"baseline_qps\": " + FormatDouble(baseline_qps) +
        ", \"admin_qps\": " + FormatDouble(admin_qps) +
        ", \"overhead_pct\": " + FormatDouble(overhead_pct, 3) +
        ", \"scrapes\": " + std::to_string(scrape_count) +
        ", \"scrape_bytes\": " + std::to_string(scrape_bytes_total) + "}");
    std::printf(
        "\n-- admin plane overhead (C=%zu, /metrics scraped every 100 ms) "
        "--\nbaseline %.0f qps -> with admin %.0f qps (%.2f%% delta, %llu "
        "scrapes, %llu bytes)\n",
        top, baseline_qps, admin_qps, overhead_pct,
        static_cast<unsigned long long>(scrape_count),
        static_cast<unsigned long long>(scrape_bytes_total));
  }
  reporter.RawSweep("admin overhead", admin_rows);

  std::printf(
      "\nExpected shape: QPS grows with client count until the cores\n"
      "saturate; p99 stays bounded (slow-client/IO waits are poll-capped);\n"
      "the overload row sheds a visible fraction with zero hard errors —\n"
      "admission control refuses work instead of queueing unboundedly.\n");
  return reporter.Finish();
}
