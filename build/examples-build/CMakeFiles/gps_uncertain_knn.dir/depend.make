# Empty dependencies file for gps_uncertain_knn.
# This may be replaced when dependencies are built.
