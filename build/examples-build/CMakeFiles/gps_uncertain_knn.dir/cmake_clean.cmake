file(REMOVE_RECURSE
  "../examples/gps_uncertain_knn"
  "../examples/gps_uncertain_knn.pdb"
  "CMakeFiles/gps_uncertain_knn.dir/gps_uncertain_knn.cpp.o"
  "CMakeFiles/gps_uncertain_knn.dir/gps_uncertain_knn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps_uncertain_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
