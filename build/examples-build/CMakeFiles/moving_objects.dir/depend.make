# Empty dependencies file for moving_objects.
# This may be replaced when dependencies are built.
