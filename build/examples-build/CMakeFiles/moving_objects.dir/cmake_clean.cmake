file(REMOVE_RECURSE
  "../examples/moving_objects"
  "../examples/moving_objects.pdb"
  "CMakeFiles/moving_objects.dir/moving_objects.cpp.o"
  "CMakeFiles/moving_objects.dir/moving_objects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
