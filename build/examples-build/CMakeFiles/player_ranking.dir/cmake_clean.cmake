file(REMOVE_RECURSE
  "../examples/player_ranking"
  "../examples/player_ranking.pdb"
  "CMakeFiles/player_ranking.dir/player_ranking.cpp.o"
  "CMakeFiles/player_ranking.dir/player_ranking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
