# Empty compiler generated dependencies file for player_ranking.
# This may be replaced when dependencies are built.
