file(REMOVE_RECURSE
  "../examples/image_feature_search"
  "../examples/image_feature_search.pdb"
  "CMakeFiles/image_feature_search.dir/image_feature_search.cpp.o"
  "CMakeFiles/image_feature_search.dir/image_feature_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_feature_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
