# Empty dependencies file for image_feature_search.
# This may be replaced when dependencies are built.
