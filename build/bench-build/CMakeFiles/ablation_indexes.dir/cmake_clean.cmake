file(REMOVE_RECURSE
  "../bench/ablation_indexes"
  "../bench/ablation_indexes.pdb"
  "CMakeFiles/ablation_indexes.dir/ablation_indexes.cc.o"
  "CMakeFiles/ablation_indexes.dir/ablation_indexes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
