file(REMOVE_RECURSE
  "../bench/fig08_radius_nba"
  "../bench/fig08_radius_nba.pdb"
  "CMakeFiles/fig08_radius_nba.dir/fig08_radius_nba.cc.o"
  "CMakeFiles/fig08_radius_nba.dir/fig08_radius_nba.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_radius_nba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
