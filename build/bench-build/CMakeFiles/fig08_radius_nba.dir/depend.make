# Empty dependencies file for fig08_radius_nba.
# This may be replaced when dependencies are built.
