file(REMOVE_RECURSE
  "../bench/fig15_knn_datasize"
  "../bench/fig15_knn_datasize.pdb"
  "CMakeFiles/fig15_knn_datasize.dir/fig15_knn_datasize.cc.o"
  "CMakeFiles/fig15_knn_datasize.dir/fig15_knn_datasize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_knn_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
