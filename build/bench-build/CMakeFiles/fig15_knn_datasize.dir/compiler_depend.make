# Empty compiler generated dependencies file for fig15_knn_datasize.
# This may be replaced when dependencies are built.
