file(REMOVE_RECURSE
  "../bench/micro_criteria"
  "../bench/micro_criteria.pdb"
  "CMakeFiles/micro_criteria.dir/micro_criteria.cc.o"
  "CMakeFiles/micro_criteria.dir/micro_criteria.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
