# Empty dependencies file for micro_criteria.
# This may be replaced when dependencies are built.
