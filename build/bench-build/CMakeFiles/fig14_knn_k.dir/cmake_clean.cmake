file(REMOVE_RECURSE
  "../bench/fig14_knn_k"
  "../bench/fig14_knn_k.pdb"
  "CMakeFiles/fig14_knn_k.dir/fig14_knn_k.cc.o"
  "CMakeFiles/fig14_knn_k.dir/fig14_knn_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_knn_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
