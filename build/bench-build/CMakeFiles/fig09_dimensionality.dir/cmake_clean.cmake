file(REMOVE_RECURSE
  "../bench/fig09_dimensionality"
  "../bench/fig09_dimensionality.pdb"
  "CMakeFiles/fig09_dimensionality.dir/fig09_dimensionality.cc.o"
  "CMakeFiles/fig09_dimensionality.dir/fig09_dimensionality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
