# Empty dependencies file for fig09_dimensionality.
# This may be replaced when dependencies are built.
