file(REMOVE_RECURSE
  "../bench/fig11_high_dimensional"
  "../bench/fig11_high_dimensional.pdb"
  "CMakeFiles/fig11_high_dimensional.dir/fig11_high_dimensional.cc.o"
  "CMakeFiles/fig11_high_dimensional.dir/fig11_high_dimensional.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_high_dimensional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
