# Empty dependencies file for fig11_high_dimensional.
# This may be replaced when dependencies are built.
