# Empty dependencies file for fig10_real_datasets.
# This may be replaced when dependencies are built.
