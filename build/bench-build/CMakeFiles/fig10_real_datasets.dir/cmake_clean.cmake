file(REMOVE_RECURSE
  "../bench/fig10_real_datasets"
  "../bench/fig10_real_datasets.pdb"
  "CMakeFiles/fig10_real_datasets.dir/fig10_real_datasets.cc.o"
  "CMakeFiles/fig10_real_datasets.dir/fig10_real_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_real_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
