file(REMOVE_RECURSE
  "../bench/ablation_hyperbola"
  "../bench/ablation_hyperbola.pdb"
  "CMakeFiles/ablation_hyperbola.dir/ablation_hyperbola.cc.o"
  "CMakeFiles/ablation_hyperbola.dir/ablation_hyperbola.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hyperbola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
