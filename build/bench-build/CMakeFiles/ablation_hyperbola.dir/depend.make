# Empty dependencies file for ablation_hyperbola.
# This may be replaced when dependencies are built.
