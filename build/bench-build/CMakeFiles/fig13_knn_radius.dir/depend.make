# Empty dependencies file for fig13_knn_radius.
# This may be replaced when dependencies are built.
