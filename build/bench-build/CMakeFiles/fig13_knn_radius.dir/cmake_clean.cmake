file(REMOVE_RECURSE
  "../bench/fig13_knn_radius"
  "../bench/fig13_knn_radius.pdb"
  "CMakeFiles/fig13_knn_radius.dir/fig13_knn_radius.cc.o"
  "CMakeFiles/fig13_knn_radius.dir/fig13_knn_radius.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_knn_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
