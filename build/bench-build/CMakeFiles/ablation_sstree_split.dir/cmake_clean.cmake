file(REMOVE_RECURSE
  "../bench/ablation_sstree_split"
  "../bench/ablation_sstree_split.pdb"
  "CMakeFiles/ablation_sstree_split.dir/ablation_sstree_split.cc.o"
  "CMakeFiles/ablation_sstree_split.dir/ablation_sstree_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sstree_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
