# Empty dependencies file for ablation_sstree_split.
# This may be replaced when dependencies are built.
