file(REMOVE_RECURSE
  "../bench/fig12_distributions"
  "../bench/fig12_distributions.pdb"
  "CMakeFiles/fig12_distributions.dir/fig12_distributions.cc.o"
  "CMakeFiles/fig12_distributions.dir/fig12_distributions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
