# Empty compiler generated dependencies file for fig12_distributions.
# This may be replaced when dependencies are built.
