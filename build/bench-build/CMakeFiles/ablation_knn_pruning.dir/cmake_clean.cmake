file(REMOVE_RECURSE
  "../bench/ablation_knn_pruning"
  "../bench/ablation_knn_pruning.pdb"
  "CMakeFiles/ablation_knn_pruning.dir/ablation_knn_pruning.cc.o"
  "CMakeFiles/ablation_knn_pruning.dir/ablation_knn_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_knn_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
