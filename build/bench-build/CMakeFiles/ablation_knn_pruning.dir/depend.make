# Empty dependencies file for ablation_knn_pruning.
# This may be replaced when dependencies are built.
