# Empty dependencies file for fig16_knn_dimensionality.
# This may be replaced when dependencies are built.
