file(REMOVE_RECURSE
  "../bench/fig16_knn_dimensionality"
  "../bench/fig16_knn_dimensionality.pdb"
  "CMakeFiles/fig16_knn_dimensionality.dir/fig16_knn_dimensionality.cc.o"
  "CMakeFiles/fig16_knn_dimensionality.dir/fig16_knn_dimensionality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_knn_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
