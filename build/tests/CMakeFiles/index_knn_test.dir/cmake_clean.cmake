file(REMOVE_RECURSE
  "CMakeFiles/index_knn_test.dir/index_knn_test.cc.o"
  "CMakeFiles/index_knn_test.dir/index_knn_test.cc.o.d"
  "index_knn_test"
  "index_knn_test.pdb"
  "index_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
