file(REMOVE_RECURSE
  "CMakeFiles/dominating_test.dir/dominating_test.cc.o"
  "CMakeFiles/dominating_test.dir/dominating_test.cc.o.d"
  "dominating_test"
  "dominating_test.pdb"
  "dominating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
