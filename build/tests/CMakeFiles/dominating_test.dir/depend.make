# Empty dependencies file for dominating_test.
# This may be replaced when dependencies are built.
