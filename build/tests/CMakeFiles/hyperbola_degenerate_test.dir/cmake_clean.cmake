file(REMOVE_RECURSE
  "CMakeFiles/hyperbola_degenerate_test.dir/hyperbola_degenerate_test.cc.o"
  "CMakeFiles/hyperbola_degenerate_test.dir/hyperbola_degenerate_test.cc.o.d"
  "hyperbola_degenerate_test"
  "hyperbola_degenerate_test.pdb"
  "hyperbola_degenerate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperbola_degenerate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
