# Empty dependencies file for hyperbola_degenerate_test.
# This may be replaced when dependencies are built.
