file(REMOVE_RECURSE
  "CMakeFiles/metric_minmax_test.dir/metric_minmax_test.cc.o"
  "CMakeFiles/metric_minmax_test.dir/metric_minmax_test.cc.o.d"
  "metric_minmax_test"
  "metric_minmax_test.pdb"
  "metric_minmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_minmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
