# Empty dependencies file for criteria_property_test.
# This may be replaced when dependencies are built.
