file(REMOVE_RECURSE
  "CMakeFiles/mbr_metrics_test.dir/mbr_metrics_test.cc.o"
  "CMakeFiles/mbr_metrics_test.dir/mbr_metrics_test.cc.o.d"
  "mbr_metrics_test"
  "mbr_metrics_test.pdb"
  "mbr_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
