# Empty dependencies file for mbr_metrics_test.
# This may be replaced when dependencies are built.
