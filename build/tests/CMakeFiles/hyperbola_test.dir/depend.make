# Empty dependencies file for hyperbola_test.
# This may be replaced when dependencies are built.
