file(REMOVE_RECURSE
  "CMakeFiles/hyperbola_test.dir/hyperbola_test.cc.o"
  "CMakeFiles/hyperbola_test.dir/hyperbola_test.cc.o.d"
  "hyperbola_test"
  "hyperbola_test.pdb"
  "hyperbola_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperbola_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
