# Empty compiler generated dependencies file for focal_frame_test.
# This may be replaced when dependencies are built.
