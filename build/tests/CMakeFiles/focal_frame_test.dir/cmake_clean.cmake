file(REMOVE_RECURSE
  "CMakeFiles/focal_frame_test.dir/focal_frame_test.cc.o"
  "CMakeFiles/focal_frame_test.dir/focal_frame_test.cc.o.d"
  "focal_frame_test"
  "focal_frame_test.pdb"
  "focal_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focal_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
