# Empty compiler generated dependencies file for trigonometric_test.
# This may be replaced when dependencies are built.
