file(REMOVE_RECURSE
  "CMakeFiles/trigonometric_test.dir/trigonometric_test.cc.o"
  "CMakeFiles/trigonometric_test.dir/trigonometric_test.cc.o.d"
  "trigonometric_test"
  "trigonometric_test.pdb"
  "trigonometric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigonometric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
