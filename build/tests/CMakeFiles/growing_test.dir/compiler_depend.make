# Empty compiler generated dependencies file for growing_test.
# This may be replaced when dependencies are built.
