file(REMOVE_RECURSE
  "CMakeFiles/rknn_test.dir/rknn_test.cc.o"
  "CMakeFiles/rknn_test.dir/rknn_test.cc.o.d"
  "rknn_test"
  "rknn_test.pdb"
  "rknn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rknn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
