# Empty dependencies file for rknn_test.
# This may be replaced when dependencies are built.
