# Empty dependencies file for ss_tree_mutation_test.
# This may be replaced when dependencies are built.
