file(REMOVE_RECURSE
  "CMakeFiles/ss_tree_mutation_test.dir/ss_tree_mutation_test.cc.o"
  "CMakeFiles/ss_tree_mutation_test.dir/ss_tree_mutation_test.cc.o.d"
  "ss_tree_mutation_test"
  "ss_tree_mutation_test.pdb"
  "ss_tree_mutation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_tree_mutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
