file(REMOVE_RECURSE
  "CMakeFiles/best_known_list_test.dir/best_known_list_test.cc.o"
  "CMakeFiles/best_known_list_test.dir/best_known_list_test.cc.o.d"
  "best_known_list_test"
  "best_known_list_test.pdb"
  "best_known_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_known_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
