# Empty dependencies file for best_known_list_test.
# This may be replaced when dependencies are built.
