# Empty compiler generated dependencies file for min_ball_test.
# This may be replaced when dependencies are built.
