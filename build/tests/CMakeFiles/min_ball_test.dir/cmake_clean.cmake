file(REMOVE_RECURSE
  "CMakeFiles/min_ball_test.dir/min_ball_test.cc.o"
  "CMakeFiles/min_ball_test.dir/min_ball_test.cc.o.d"
  "min_ball_test"
  "min_ball_test.pdb"
  "min_ball_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_ball_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
