file(REMOVE_RECURSE
  "CMakeFiles/mbr_criterion_test.dir/mbr_criterion_test.cc.o"
  "CMakeFiles/mbr_criterion_test.dir/mbr_criterion_test.cc.o.d"
  "mbr_criterion_test"
  "mbr_criterion_test.pdb"
  "mbr_criterion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_criterion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
