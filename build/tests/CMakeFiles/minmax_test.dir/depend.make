# Empty dependencies file for minmax_test.
# This may be replaced when dependencies are built.
