file(REMOVE_RECURSE
  "CMakeFiles/numeric_oracle_test.dir/numeric_oracle_test.cc.o"
  "CMakeFiles/numeric_oracle_test.dir/numeric_oracle_test.cc.o.d"
  "numeric_oracle_test"
  "numeric_oracle_test.pdb"
  "numeric_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
