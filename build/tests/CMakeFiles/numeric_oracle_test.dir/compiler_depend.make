# Empty compiler generated dependencies file for numeric_oracle_test.
# This may be replaced when dependencies are built.
