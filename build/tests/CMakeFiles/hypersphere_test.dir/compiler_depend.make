# Empty compiler generated dependencies file for hypersphere_test.
# This may be replaced when dependencies are built.
