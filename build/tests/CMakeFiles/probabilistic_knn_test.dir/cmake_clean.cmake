file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_knn_test.dir/probabilistic_knn_test.cc.o"
  "CMakeFiles/probabilistic_knn_test.dir/probabilistic_knn_test.cc.o.d"
  "probabilistic_knn_test"
  "probabilistic_knn_test.pdb"
  "probabilistic_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
