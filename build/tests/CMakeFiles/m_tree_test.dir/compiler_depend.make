# Empty compiler generated dependencies file for m_tree_test.
# This may be replaced when dependencies are built.
