file(REMOVE_RECURSE
  "CMakeFiles/m_tree_test.dir/m_tree_test.cc.o"
  "CMakeFiles/m_tree_test.dir/m_tree_test.cc.o.d"
  "m_tree_test"
  "m_tree_test.pdb"
  "m_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
