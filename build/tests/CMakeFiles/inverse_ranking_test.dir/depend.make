# Empty dependencies file for inverse_ranking_test.
# This may be replaced when dependencies are built.
