file(REMOVE_RECURSE
  "CMakeFiles/inverse_ranking_test.dir/inverse_ranking_test.cc.o"
  "CMakeFiles/inverse_ranking_test.dir/inverse_ranking_test.cc.o.d"
  "inverse_ranking_test"
  "inverse_ranking_test.pdb"
  "inverse_ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
