# Empty dependencies file for hyperdom_cli.
# This may be replaced when dependencies are built.
