file(REMOVE_RECURSE
  "../tools/hyperdom_cli"
  "../tools/hyperdom_cli.pdb"
  "CMakeFiles/hyperdom_cli.dir/hyperdom_cli_main.cc.o"
  "CMakeFiles/hyperdom_cli.dir/hyperdom_cli_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
