# Empty compiler generated dependencies file for hyperdom_cli_lib.
# This may be replaced when dependencies are built.
