file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_cli_lib.dir/cli.cc.o"
  "CMakeFiles/hyperdom_cli_lib.dir/cli.cc.o.d"
  "libhyperdom_cli_lib.a"
  "libhyperdom_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
