file(REMOVE_RECURSE
  "libhyperdom_cli_lib.a"
)
