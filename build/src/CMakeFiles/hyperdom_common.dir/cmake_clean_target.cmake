file(REMOVE_RECURSE
  "libhyperdom_common.a"
)
