file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_common.dir/common/rng.cc.o"
  "CMakeFiles/hyperdom_common.dir/common/rng.cc.o.d"
  "CMakeFiles/hyperdom_common.dir/common/status.cc.o"
  "CMakeFiles/hyperdom_common.dir/common/status.cc.o.d"
  "CMakeFiles/hyperdom_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/hyperdom_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/hyperdom_common.dir/common/str_util.cc.o"
  "CMakeFiles/hyperdom_common.dir/common/str_util.cc.o.d"
  "libhyperdom_common.a"
  "libhyperdom_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
