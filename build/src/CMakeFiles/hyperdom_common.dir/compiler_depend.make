# Empty compiler generated dependencies file for hyperdom_common.
# This may be replaced when dependencies are built.
