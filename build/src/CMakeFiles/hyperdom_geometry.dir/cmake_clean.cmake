file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_geometry.dir/geometry/focal_frame.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/focal_frame.cc.o.d"
  "CMakeFiles/hyperdom_geometry.dir/geometry/hypersphere.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/hypersphere.cc.o.d"
  "CMakeFiles/hyperdom_geometry.dir/geometry/mbr.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/mbr.cc.o.d"
  "CMakeFiles/hyperdom_geometry.dir/geometry/min_ball.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/min_ball.cc.o.d"
  "CMakeFiles/hyperdom_geometry.dir/geometry/point.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/point.cc.o.d"
  "CMakeFiles/hyperdom_geometry.dir/geometry/polynomial.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/polynomial.cc.o.d"
  "CMakeFiles/hyperdom_geometry.dir/geometry/sampling.cc.o"
  "CMakeFiles/hyperdom_geometry.dir/geometry/sampling.cc.o.d"
  "libhyperdom_geometry.a"
  "libhyperdom_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
