# Empty compiler generated dependencies file for hyperdom_geometry.
# This may be replaced when dependencies are built.
