file(REMOVE_RECURSE
  "libhyperdom_geometry.a"
)
