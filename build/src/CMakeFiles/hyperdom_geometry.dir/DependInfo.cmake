
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/focal_frame.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/focal_frame.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/focal_frame.cc.o.d"
  "/root/repo/src/geometry/hypersphere.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/hypersphere.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/hypersphere.cc.o.d"
  "/root/repo/src/geometry/mbr.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/mbr.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/mbr.cc.o.d"
  "/root/repo/src/geometry/min_ball.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/min_ball.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/min_ball.cc.o.d"
  "/root/repo/src/geometry/point.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/point.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/point.cc.o.d"
  "/root/repo/src/geometry/polynomial.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/polynomial.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/polynomial.cc.o.d"
  "/root/repo/src/geometry/sampling.cc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/sampling.cc.o" "gcc" "src/CMakeFiles/hyperdom_geometry.dir/geometry/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperdom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
