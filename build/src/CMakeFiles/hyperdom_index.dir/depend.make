# Empty dependencies file for hyperdom_index.
# This may be replaced when dependencies are built.
