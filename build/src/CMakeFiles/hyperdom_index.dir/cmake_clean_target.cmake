file(REMOVE_RECURSE
  "libhyperdom_index.a"
)
