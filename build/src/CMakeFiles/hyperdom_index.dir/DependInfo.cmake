
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/m_tree.cc" "src/CMakeFiles/hyperdom_index.dir/index/m_tree.cc.o" "gcc" "src/CMakeFiles/hyperdom_index.dir/index/m_tree.cc.o.d"
  "/root/repo/src/index/rstar_tree.cc" "src/CMakeFiles/hyperdom_index.dir/index/rstar_tree.cc.o" "gcc" "src/CMakeFiles/hyperdom_index.dir/index/rstar_tree.cc.o.d"
  "/root/repo/src/index/ss_tree.cc" "src/CMakeFiles/hyperdom_index.dir/index/ss_tree.cc.o" "gcc" "src/CMakeFiles/hyperdom_index.dir/index/ss_tree.cc.o.d"
  "/root/repo/src/index/vp_tree.cc" "src/CMakeFiles/hyperdom_index.dir/index/vp_tree.cc.o" "gcc" "src/CMakeFiles/hyperdom_index.dir/index/vp_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperdom_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperdom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
