file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_index.dir/index/m_tree.cc.o"
  "CMakeFiles/hyperdom_index.dir/index/m_tree.cc.o.d"
  "CMakeFiles/hyperdom_index.dir/index/rstar_tree.cc.o"
  "CMakeFiles/hyperdom_index.dir/index/rstar_tree.cc.o.d"
  "CMakeFiles/hyperdom_index.dir/index/ss_tree.cc.o"
  "CMakeFiles/hyperdom_index.dir/index/ss_tree.cc.o.d"
  "CMakeFiles/hyperdom_index.dir/index/vp_tree.cc.o"
  "CMakeFiles/hyperdom_index.dir/index/vp_tree.cc.o.d"
  "libhyperdom_index.a"
  "libhyperdom_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
