file(REMOVE_RECURSE
  "libhyperdom_data.a"
)
