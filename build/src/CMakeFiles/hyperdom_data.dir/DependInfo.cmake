
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/hyperdom_data.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/hyperdom_data.dir/data/csv.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/hyperdom_data.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/hyperdom_data.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/hyperdom_data.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/hyperdom_data.dir/data/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperdom_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperdom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
