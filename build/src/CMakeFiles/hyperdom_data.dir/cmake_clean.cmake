file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_data.dir/data/csv.cc.o"
  "CMakeFiles/hyperdom_data.dir/data/csv.cc.o.d"
  "CMakeFiles/hyperdom_data.dir/data/datasets.cc.o"
  "CMakeFiles/hyperdom_data.dir/data/datasets.cc.o.d"
  "CMakeFiles/hyperdom_data.dir/data/generator.cc.o"
  "CMakeFiles/hyperdom_data.dir/data/generator.cc.o.d"
  "libhyperdom_data.a"
  "libhyperdom_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
