# Empty dependencies file for hyperdom_data.
# This may be replaced when dependencies are built.
