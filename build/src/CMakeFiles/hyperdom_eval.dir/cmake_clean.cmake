file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/hyperdom_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/hyperdom_eval.dir/eval/measures.cc.o"
  "CMakeFiles/hyperdom_eval.dir/eval/measures.cc.o.d"
  "CMakeFiles/hyperdom_eval.dir/eval/table_printer.cc.o"
  "CMakeFiles/hyperdom_eval.dir/eval/table_printer.cc.o.d"
  "CMakeFiles/hyperdom_eval.dir/eval/workload.cc.o"
  "CMakeFiles/hyperdom_eval.dir/eval/workload.cc.o.d"
  "libhyperdom_eval.a"
  "libhyperdom_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
