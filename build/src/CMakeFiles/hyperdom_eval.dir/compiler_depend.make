# Empty compiler generated dependencies file for hyperdom_eval.
# This may be replaced when dependencies are built.
