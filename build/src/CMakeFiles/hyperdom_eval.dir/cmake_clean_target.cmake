file(REMOVE_RECURSE
  "libhyperdom_eval.a"
)
