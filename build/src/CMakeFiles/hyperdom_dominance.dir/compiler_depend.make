# Empty compiler generated dependencies file for hyperdom_dominance.
# This may be replaced when dependencies are built.
