file(REMOVE_RECURSE
  "libhyperdom_dominance.a"
)
