
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dominance/criterion.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/criterion.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/criterion.cc.o.d"
  "/root/repo/src/dominance/gp.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/gp.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/gp.cc.o.d"
  "/root/repo/src/dominance/growing.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/growing.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/growing.cc.o.d"
  "/root/repo/src/dominance/hyperbola.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/hyperbola.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/hyperbola.cc.o.d"
  "/root/repo/src/dominance/mbr_criterion.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/mbr_criterion.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/mbr_criterion.cc.o.d"
  "/root/repo/src/dominance/metric.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/metric.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/metric.cc.o.d"
  "/root/repo/src/dominance/metric_minmax.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/metric_minmax.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/metric_minmax.cc.o.d"
  "/root/repo/src/dominance/minmax.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/minmax.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/minmax.cc.o.d"
  "/root/repo/src/dominance/numeric_oracle.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/numeric_oracle.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/numeric_oracle.cc.o.d"
  "/root/repo/src/dominance/probability.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/probability.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/probability.cc.o.d"
  "/root/repo/src/dominance/trigonometric.cc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/trigonometric.cc.o" "gcc" "src/CMakeFiles/hyperdom_dominance.dir/dominance/trigonometric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperdom_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperdom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
