file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_dominance.dir/dominance/criterion.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/criterion.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/gp.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/gp.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/growing.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/growing.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/hyperbola.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/hyperbola.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/mbr_criterion.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/mbr_criterion.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/metric.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/metric.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/metric_minmax.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/metric_minmax.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/minmax.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/minmax.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/numeric_oracle.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/numeric_oracle.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/probability.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/probability.cc.o.d"
  "CMakeFiles/hyperdom_dominance.dir/dominance/trigonometric.cc.o"
  "CMakeFiles/hyperdom_dominance.dir/dominance/trigonometric.cc.o.d"
  "libhyperdom_dominance.a"
  "libhyperdom_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
