
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/best_known_list.cc" "src/CMakeFiles/hyperdom_query.dir/query/best_known_list.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/best_known_list.cc.o.d"
  "/root/repo/src/query/dominating.cc" "src/CMakeFiles/hyperdom_query.dir/query/dominating.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/dominating.cc.o.d"
  "/root/repo/src/query/index_knn.cc" "src/CMakeFiles/hyperdom_query.dir/query/index_knn.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/index_knn.cc.o.d"
  "/root/repo/src/query/inverse_ranking.cc" "src/CMakeFiles/hyperdom_query.dir/query/inverse_ranking.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/inverse_ranking.cc.o.d"
  "/root/repo/src/query/knn.cc" "src/CMakeFiles/hyperdom_query.dir/query/knn.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/knn.cc.o.d"
  "/root/repo/src/query/nn_iterator.cc" "src/CMakeFiles/hyperdom_query.dir/query/nn_iterator.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/nn_iterator.cc.o.d"
  "/root/repo/src/query/probabilistic_knn.cc" "src/CMakeFiles/hyperdom_query.dir/query/probabilistic_knn.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/probabilistic_knn.cc.o.d"
  "/root/repo/src/query/range.cc" "src/CMakeFiles/hyperdom_query.dir/query/range.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/range.cc.o.d"
  "/root/repo/src/query/rknn.cc" "src/CMakeFiles/hyperdom_query.dir/query/rknn.cc.o" "gcc" "src/CMakeFiles/hyperdom_query.dir/query/rknn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hyperdom_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperdom_dominance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperdom_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hyperdom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
