file(REMOVE_RECURSE
  "CMakeFiles/hyperdom_query.dir/query/best_known_list.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/best_known_list.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/dominating.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/dominating.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/index_knn.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/index_knn.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/inverse_ranking.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/inverse_ranking.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/knn.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/knn.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/nn_iterator.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/nn_iterator.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/probabilistic_knn.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/probabilistic_knn.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/range.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/range.cc.o.d"
  "CMakeFiles/hyperdom_query.dir/query/rknn.cc.o"
  "CMakeFiles/hyperdom_query.dir/query/rknn.cc.o.d"
  "libhyperdom_query.a"
  "libhyperdom_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperdom_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
