# Empty dependencies file for hyperdom_query.
# This may be replaced when dependencies are built.
