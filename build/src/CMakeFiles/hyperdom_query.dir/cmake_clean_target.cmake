file(REMOVE_RECURSE
  "libhyperdom_query.a"
)
